//! Shared experiment harness for the Octant reproduction.
//!
//! The binaries in `src/bin/` regenerate the paper's figures; this library
//! holds the pieces they share: building the PlanetLab-like measurement
//! campaign, running a set of geolocalization techniques over it, and
//! printing the comparison tables. `EXPERIMENTS.md` at the workspace root
//! records the numbers these harnesses produce next to the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use octant::eval::{self, ErrorCdf, TargetOutcome};
use octant::framework::Geolocator;
use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
use octant_netsim::latency::LatencyModel;
use octant_netsim::probe::Prober;
use octant_netsim::topology::NodeId;
use octant_netsim::{MeasurementDataset, ObservationProvider};

/// A recorded measurement campaign plus the list of hosts participating in
/// the evaluation.
pub struct Campaign {
    /// The captured dataset (every technique sees exactly these bytes).
    pub dataset: MeasurementDataset,
    /// The hosts, in site order.
    pub hosts: Vec<NodeId>,
}

/// Builds the paper-equivalent campaign: the 51 PlanetLab-like sites, the
/// default latency model, 10 probes per ping, and a full pairwise capture.
pub fn planetlab_campaign(seed: u64) -> Campaign {
    campaign_with_sites(octant_geo::sites::planetlab_51().len(), seed)
}

/// Builds a campaign over the first `n` built-in sites (useful for fast test
/// and benchmark runs).
pub fn campaign_with_sites(n: usize, seed: u64) -> Campaign {
    let sites = octant_geo::sites::all_sites();
    let n = n.min(sites.len());
    let mut builder = NetworkBuilder::new(NetworkConfig {
        seed,
        ..NetworkConfig::default()
    });
    for site in &sites[..n] {
        builder = builder.add_host(HostSpec::from_site(site));
    }
    let network = builder.build();
    let prober = Prober::with_options(network, LatencyModel::default(), 0.15, 10, seed);
    let dataset = MeasurementDataset::capture(&prober);
    let hosts = dataset.host_ids();
    Campaign { dataset, hosts }
}

/// A campaign purpose-built for batch-throughput experiments: a fixed
/// landmark deployment plus a (possibly much larger) population of target
/// hosts, captured into one replay-stable dataset.
pub struct BatchCampaign {
    /// The captured dataset (replay-stable, so batched and sequential
    /// localization see byte-identical measurements).
    pub dataset: MeasurementDataset,
    /// The landmark hosts (placed at the built-in sites).
    pub landmarks: Vec<NodeId>,
    /// The target hosts to localize.
    pub targets: Vec<NodeId>,
}

/// Builds a batch campaign: `landmark_count` hosts at the built-in sites
/// plus `target_count` extra hosts cycled over the sites with small
/// deterministic position offsets (so co-sited targets are distinct hosts a
/// few kilometres apart, like multiple customers behind one metro).
pub fn batch_campaign(landmark_count: usize, target_count: usize, seed: u64) -> BatchCampaign {
    let sites = octant_geo::sites::all_sites();
    let landmark_count = landmark_count.min(sites.len());
    let mut builder = NetworkBuilder::new(NetworkConfig {
        seed,
        ..NetworkConfig::default()
    });
    for site in &sites[..landmark_count] {
        builder = builder.add_host(HostSpec::from_site(site));
    }
    for i in 0..target_count {
        let site = &sites[i % sites.len()];
        // Deterministic scatter: each wave of targets around a site moves a
        // little farther out (0.02° ≈ 2 km), alternating quadrants.
        let wave = (i / sites.len() + 1) as f64;
        let dlat = 0.021 * wave * if i % 2 == 0 { 1.0 } else { -1.0 };
        let dlon = 0.017 * wave * if i % 3 == 0 { 1.0 } else { -1.0 };
        builder = builder.add_host(HostSpec {
            hostname: format!("target{i}.{}", site.hostname),
            location: octant_geo::GeoPoint::new(site.lat + dlat, site.lon + dlon),
            city_code: site.city_code.to_string(),
        });
    }
    let prober = Prober::with_options(builder.build(), LatencyModel::default(), 0.15, 10, seed);
    let dataset = MeasurementDataset::capture(&prober);
    let hosts = dataset.host_ids();
    BatchCampaign {
        landmarks: hosts[..landmark_count].to_vec(),
        targets: hosts[landmark_count..].to_vec(),
        dataset,
    }
}

/// The outcome of running one technique over a campaign.
pub struct TechniqueResult {
    /// The technique's display name.
    pub name: String,
    /// Per-target outcomes.
    pub outcomes: Vec<TargetOutcome>,
    /// The error CDF (miles).
    pub cdf: ErrorCdf,
}

impl TechniqueResult {
    /// Median error in miles.
    pub fn median_miles(&self) -> f64 {
        self.cdf.median().unwrap_or(f64::NAN)
    }

    /// Worst-case error in miles.
    pub fn worst_miles(&self) -> f64 {
        self.cdf.max().unwrap_or(f64::NAN)
    }

    /// Fraction of targets whose true position is inside the estimated
    /// region (only meaningful for region-based techniques).
    pub fn hit_rate(&self) -> f64 {
        eval::region_hit_rate(&self.outcomes)
    }
}

/// Runs the full leave-one-out evaluation of one technique over a campaign.
pub fn run_technique(campaign: &Campaign, technique: &dyn Geolocator) -> TechniqueResult {
    let outcomes = eval::leave_one_out(&campaign.dataset, technique, &campaign.hosts);
    let cdf = ErrorCdf::from_outcomes(&outcomes);
    TechniqueResult {
        name: technique.name().to_string(),
        outcomes,
        cdf,
    }
}

/// Runs the leave-one-out evaluation with a fixed number of landmarks per
/// target (the Figure 4 sweep).
pub fn run_technique_with_landmarks(
    campaign: &Campaign,
    technique: &dyn Geolocator,
    landmark_count: usize,
    seed: u64,
) -> TechniqueResult {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let outcomes = eval::leave_one_out_with_landmark_count(
        &campaign.dataset,
        technique,
        &campaign.hosts,
        landmark_count,
        &mut rng,
    );
    let cdf = ErrorCdf::from_outcomes(&outcomes);
    TechniqueResult {
        name: technique.name().to_string(),
        outcomes,
        cdf,
    }
}

/// Prints the standard summary table (median / 90th percentile / worst error
/// and region hit rate) for a set of technique results.
pub fn print_summary_table(results: &[TechniqueResult]) {
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "technique", "median (mi)", "p90 (mi)", "worst (mi)", "hit rate"
    );
    for r in results {
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>12.1} {:>9.0}%",
            r.name,
            r.median_miles(),
            r.cdf.percentile(0.9).unwrap_or(f64::NAN),
            r.worst_miles(),
            r.hit_rate() * 100.0
        );
    }
}

/// Prints CDF curves (one column of cumulative fractions per technique) at
/// the given error values in miles — the series Figure 3 plots.
pub fn print_cdf_series(results: &[TechniqueResult], error_grid_miles: &[f64]) {
    print!("{:>12}", "error (mi)");
    for r in results {
        print!(" {:>12}", r.name);
    }
    println!();
    for &e in error_grid_miles {
        print!("{:>12.0}", e);
        for r in results {
            print!(" {:>12.3}", r.cdf.fraction_within(e));
        }
        println!();
    }
}

/// Convenience: the dataset's ground-truth location for a host (panics for
/// unknown hosts — evaluation hosts always have one).
pub fn truth_of(campaign: &Campaign, host: NodeId) -> octant_geo::GeoPoint {
    campaign
        .dataset
        .advertised_location(host)
        .expect("campaign hosts have ground truth")
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant::{Octant, OctantConfig};

    #[test]
    fn small_campaign_builds_and_evaluates() {
        let campaign = campaign_with_sites(8, 3);
        assert_eq!(campaign.hosts.len(), 8);
        let octant = Octant::new(OctantConfig::minimal());
        let result = run_technique(&campaign, &octant);
        assert_eq!(result.outcomes.len(), 8);
        assert!(result.median_miles().is_finite());
        assert!(result.worst_miles() >= result.median_miles());
    }

    #[test]
    fn landmark_limited_run_is_reproducible() {
        let campaign = campaign_with_sites(8, 3);
        let octant = Octant::new(OctantConfig::minimal());
        let a = run_technique_with_landmarks(&campaign, &octant, 4, 7);
        let b = run_technique_with_landmarks(&campaign, &octant, 4, 7);
        assert_eq!(a.cdf.points(), b.cdf.points());
    }
}
