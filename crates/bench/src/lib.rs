//! Shared experiment harness for the Octant reproduction.
//!
//! The binaries in `src/bin/` regenerate the paper's figures; this library
//! holds the pieces they share: building the PlanetLab-like measurement
//! campaign, running a set of geolocalization techniques over it, and
//! printing the comparison tables. `EXPERIMENTS.md` at the workspace root
//! records the numbers these harnesses produce next to the paper's.
//!
//! ## Machine-readable bench summaries (`BENCH_*.json`)
//!
//! The throughput binaries (`batch`, `service`) accept `--json <path>` and
//! write a [`BenchSummary`] there, so CI and the perf-trajectory tooling can
//! consume the numbers without scraping stdout. The format is one flat JSON
//! object; fields whose value is unavailable for a run are **omitted**, not
//! null:
//!
//! ```json
//! {
//!   "bench": "service",            // binary name
//!   "scenario": "smoke",           // workload variant ("smoke" or "full")
//!   "landmarks": 10,               // landmark deployment size
//!   "targets": 48,                 // targets served by the measured run
//!   "elapsed_s": 1.52,             // wall-clock of the measured run
//!   "targets_per_sec": 31.5,       // targets / elapsed_s
//!   "baseline_elapsed_s": 11.8,    // (optional) uncached/sequential run
//!   "baseline_targets_per_sec": 4.1,
//!   "speedup": 7.7,                // baseline_elapsed_s / elapsed_s
//!   "cache_hits": 410,             // (optional) router-cache counters
//!   "cache_misses": 14,
//!   "cache_hit_rate": 0.967,      // hits / (hits + misses)
//!   "sub_localizations": 14,       // router sub-solves actually performed
//!   "shards": 4,                   // (optional) serving-tier sections: data-
//!   "requests": 100000,            // plane shard count, Zipf-stream targets
//!   "shed": 0,                     // submitted, targets shed (queue-full +
//!   "shed_rate": 0.000000,         // deadline-expired), shed / finished,
//!   "latency_p50_ms": 1.9,         // and enqueue → completion latency
//!   "latency_p99_ms": 6.2,         // quantiles from the service's merged
//!   "latency_p999_ms": 8.0,        // per-shard histograms
//!   "stage_breakdown": [           // (optional) per-stage wall-time rows
//!     {"name": "queue_wait", "count": 2000, "total_ms": 510.2,
//!      "p50_ms": 0.21, "p99_ms": 1.8},
//!     {"name": "solve", "count": 510, "total_ms": 890.0, ...}
//!   ],
//!   "telemetry_overhead_pct": 1.4, // (optional) profiled-rerun wall-clock
//!                                  // delta vs the measured run, in percent
//!   "recursive_ms_per_target": 21.4,          // Recursive serving stage:
//!   "recursive_baseline_ms_per_target": 67.0, // default-config service vs
//!   "recursive_speedup": 3.1,                 // uncached inline batch
//!   "dilation_default_median_shift_km": 0.0,  // point-estimate shift of the
//!   "dilation_default_p90_shift_km": 0.1,     // default dilation step vs
//!                                             // the exact step-0 solve
//!   "dilation_step25_median_shift_km": 0.0,   // step-sweep envelope rows
//!   "dilation_step25_p90_shift_km": 0.1,      // (one triple per swept
//!   "dilation_step25_max_shift_km": 0.4       // class width)
//! }
//! ```
//!
//! For the `service` bench, `elapsed_s`/`targets_per_sec` measure the
//! sustained Zipf-distributed request stream against the sharded service,
//! and `baseline_elapsed_s`/`speedup` are the same stream against a
//! single-shard service — so `speedup` reports **shard scaling** (expect
//! ≈1× on one core; ≥2× needs a ≥4-core runner). The `recursive_*` fields
//! come from stage 1's Recursive campaign (the §3 hot path): ms/target of
//! the default-config service next to the uncached inline batch engine,
//! plus the dilation radius-class accuracy envelope behind the default
//! cache step ([`BenchSummary::metrics`] carries them).
//!
//! The conventional file name is `BENCH_<bench>.json` (e.g.
//! `BENCH_service.json`); the flag takes an explicit path so campaigns can
//! collect several variants side by side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use octant::eval::{self, ErrorCdf, TargetOutcome};
use octant::framework::Geolocator;
use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
use octant_netsim::latency::LatencyModel;
use octant_netsim::probe::Prober;
use octant_netsim::topology::NodeId;
use octant_netsim::{MeasurementDataset, ObservationProvider};

/// A recorded measurement campaign plus the list of hosts participating in
/// the evaluation.
pub struct Campaign {
    /// The captured dataset (every technique sees exactly these bytes).
    pub dataset: MeasurementDataset,
    /// The hosts, in site order.
    pub hosts: Vec<NodeId>,
}

/// Builds the paper-equivalent campaign: the 51 PlanetLab-like sites, the
/// default latency model, 10 probes per ping, and a full pairwise capture.
pub fn planetlab_campaign(seed: u64) -> Campaign {
    campaign_with_sites(octant_geo::sites::planetlab_51().len(), seed)
}

/// Builds a campaign over the first `n` built-in sites (useful for fast test
/// and benchmark runs).
pub fn campaign_with_sites(n: usize, seed: u64) -> Campaign {
    campaign_from_network_config(
        n,
        seed,
        NetworkConfig {
            seed,
            ..NetworkConfig::default()
        },
    )
}

/// The shared campaign recipe: the first `n` built-in sites on `config`'s
/// topology, the default latency model, 10 probes per ping, full pairwise
/// capture. Every site-table campaign goes through here so the recipe
/// cannot silently diverge between variants.
fn campaign_from_network_config(n: usize, seed: u64, config: NetworkConfig) -> Campaign {
    let sites = octant_geo::sites::all_sites();
    let n = n.min(sites.len());
    let mut builder = NetworkBuilder::new(config);
    for site in &sites[..n] {
        builder = builder.add_host(HostSpec::from_site(site));
    }
    let network = builder.build();
    let prober = Prober::with_options(network, LatencyModel::default(), 0.15, 10, seed);
    let dataset = MeasurementDataset::capture(&prober);
    let hosts = dataset.host_ids();
    Campaign { dataset, hosts }
}

/// Builds the campaign the evidence-pipeline mix experiments run on: the
/// first `n` built-in sites with every host renamed to an
/// ISP-customer-style hostname embedding its city code
/// (`host_dns_city_rate: 1.0`), so the `DnsNameSource` has §2.5 naming
/// hints to mine. Everything else matches [`campaign_with_sites`].
pub fn pipeline_campaign(n: usize, seed: u64) -> Campaign {
    campaign_from_network_config(
        n,
        seed,
        NetworkConfig {
            seed,
            host_dns_city_rate: 1.0,
            ..NetworkConfig::default()
        },
    )
}

/// A campaign purpose-built for batch-throughput experiments: a fixed
/// landmark deployment plus a (possibly much larger) population of target
/// hosts, captured into one replay-stable dataset.
pub struct BatchCampaign {
    /// The captured dataset (replay-stable, so batched and sequential
    /// localization see byte-identical measurements).
    pub dataset: MeasurementDataset,
    /// The landmark hosts (placed at the built-in sites).
    pub landmarks: Vec<NodeId>,
    /// The target hosts to localize.
    pub targets: Vec<NodeId>,
}

/// Builds a batch campaign: `landmark_count` hosts at the built-in sites
/// plus `target_count` extra hosts cycled over the sites with small
/// deterministic position offsets (so co-sited targets are distinct hosts a
/// few kilometres apart, like multiple customers behind one metro).
pub fn batch_campaign(landmark_count: usize, target_count: usize, seed: u64) -> BatchCampaign {
    let sites = octant_geo::sites::all_sites();
    let landmark_count = landmark_count.min(sites.len());
    let mut builder = NetworkBuilder::new(NetworkConfig {
        seed,
        ..NetworkConfig::default()
    });
    for site in &sites[..landmark_count] {
        builder = builder.add_host(HostSpec::from_site(site));
    }
    for i in 0..target_count {
        let site = &sites[i % sites.len()];
        // Deterministic scatter: each wave of targets around a site moves a
        // little farther out (0.02° ≈ 2 km), alternating quadrants.
        let wave = (i / sites.len() + 1) as f64;
        let dlat = 0.021 * wave * if i % 2 == 0 { 1.0 } else { -1.0 };
        let dlon = 0.017 * wave * if i % 3 == 0 { 1.0 } else { -1.0 };
        builder = builder.add_host(HostSpec {
            hostname: format!("target{i}.{}", site.hostname),
            location: octant_geo::GeoPoint::new(site.lat + dlat, site.lon + dlon),
            city_code: site.city_code.to_string(),
        });
    }
    let prober = Prober::with_options(builder.build(), LatencyModel::default(), 0.15, 10, seed);
    let dataset = MeasurementDataset::capture(&prober);
    let hosts = dataset.host_ids();
    BatchCampaign {
        landmarks: hosts[..landmark_count].to_vec(),
        targets: hosts[landmark_count..].to_vec(),
        dataset,
    }
}

/// Builds a serving campaign: `landmark_count` hosts at the built-in sites
/// plus `target_sites * targets_per_site` target hosts **concentrated
/// behind a handful of sites** (with small deterministic position offsets),
/// so co-sited targets reach the network through the same access
/// infrastructure and their traceroutes share last-hop routers.
///
/// This is the workload shape the `octant-service` router cache exists for:
/// co-sited targets share their metro's access router (the builder's
/// `access_share_radius_km` knob), so `N = target_sites * targets_per_site`
/// targets sit behind `R ≈ target_sites` shared last-hop routers and
/// recursive router localization does `R` sub-solves instead of `O(N)` —
/// the `N ≫ R` axis of the service bench. Target sites start right after
/// the landmark sites, so targets are never co-located with a landmark.
pub fn service_campaign(
    landmark_count: usize,
    target_sites: usize,
    targets_per_site: usize,
    seed: u64,
) -> BatchCampaign {
    let sites = octant_geo::sites::all_sites();
    let landmark_count = landmark_count.min(sites.len().saturating_sub(1));
    let target_sites = target_sites.max(1).min(sites.len() - landmark_count);
    let mut builder = NetworkBuilder::new(NetworkConfig {
        seed,
        // Customers a few km apart in one metro attach through the same
        // aggregation router — the sharing the serving cache amortizes.
        access_share_radius_km: 25.0,
        ..NetworkConfig::default()
    });
    for site in &sites[..landmark_count] {
        builder = builder.add_host(HostSpec::from_site(site));
    }
    let target_count = target_sites * targets_per_site;
    for i in 0..target_count {
        let site = &sites[landmark_count + i % target_sites];
        // Same deterministic scatter scheme as `batch_campaign`: each wave
        // of co-sited targets moves a couple of kilometres farther out.
        let wave = (i / target_sites + 1) as f64;
        let dlat = 0.021 * wave * if i % 2 == 0 { 1.0 } else { -1.0 };
        let dlon = 0.017 * wave * if i % 3 == 0 { 1.0 } else { -1.0 };
        builder = builder.add_host(HostSpec {
            hostname: format!("target{i}.{}", site.hostname),
            location: octant_geo::GeoPoint::new(site.lat + dlat, site.lon + dlon),
            city_code: site.city_code.to_string(),
        });
    }
    let prober = Prober::with_options(builder.build(), LatencyModel::default(), 0.15, 10, seed);
    let dataset = MeasurementDataset::capture(&prober);
    let hosts = dataset.host_ids();
    BatchCampaign {
        landmarks: hosts[..landmark_count].to_vec(),
        targets: hosts[landmark_count..].to_vec(),
        dataset,
    }
}

/// The outcome of running one technique over a campaign.
pub struct TechniqueResult {
    /// The technique's display name.
    pub name: String,
    /// Per-target outcomes.
    pub outcomes: Vec<TargetOutcome>,
    /// The error CDF (miles).
    pub cdf: ErrorCdf,
}

impl TechniqueResult {
    /// Median error in miles.
    pub fn median_miles(&self) -> f64 {
        self.cdf.median().unwrap_or(f64::NAN)
    }

    /// Worst-case error in miles.
    pub fn worst_miles(&self) -> f64 {
        self.cdf.max().unwrap_or(f64::NAN)
    }

    /// Fraction of targets whose true position is inside the estimated
    /// region (only meaningful for region-based techniques).
    pub fn hit_rate(&self) -> f64 {
        eval::region_hit_rate(&self.outcomes)
    }

    /// Fraction of targets that produced no point estimate (unreachable
    /// targets, empty constraint sets) — the robustness harness's "gave up"
    /// rate under degraded scenarios.
    pub fn unknown_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.error.is_none()).count() as f64
            / self.outcomes.len() as f64
    }
}

/// Runs the full leave-one-out evaluation of one technique over a campaign.
pub fn run_technique(campaign: &Campaign, technique: &dyn Geolocator) -> TechniqueResult {
    let outcomes = eval::leave_one_out(&campaign.dataset, technique, &campaign.hosts);
    let cdf = ErrorCdf::from_outcomes(&outcomes);
    TechniqueResult {
        name: technique.name().to_string(),
        outcomes,
        cdf,
    }
}

/// Runs the full leave-one-out evaluation of one technique over an
/// arbitrary provider and host roster — the degraded-world entry point: the
/// robustness harness passes a [`octant_netsim::scenario::ScenarioProvider`]
/// wrapped around a campaign's dataset, so the same hosts are evaluated
/// under scenario degradations.
pub fn run_technique_on(
    provider: &dyn ObservationProvider,
    hosts: &[NodeId],
    technique: &dyn Geolocator,
) -> TechniqueResult {
    let outcomes = eval::leave_one_out(provider, technique, hosts);
    let cdf = ErrorCdf::from_outcomes(&outcomes);
    TechniqueResult {
        name: technique.name().to_string(),
        outcomes,
        cdf,
    }
}

/// Runs the leave-one-out evaluation with a fixed number of landmarks per
/// target (the Figure 4 sweep).
pub fn run_technique_with_landmarks(
    campaign: &Campaign,
    technique: &dyn Geolocator,
    landmark_count: usize,
    seed: u64,
) -> TechniqueResult {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let outcomes = eval::leave_one_out_with_landmark_count(
        &campaign.dataset,
        technique,
        &campaign.hosts,
        landmark_count,
        &mut rng,
    );
    let cdf = ErrorCdf::from_outcomes(&outcomes);
    TechniqueResult {
        name: technique.name().to_string(),
        outcomes,
        cdf,
    }
}

/// Prints the standard summary table (median / 90th percentile / worst error
/// and region hit rate) for a set of technique results.
pub fn print_summary_table(results: &[TechniqueResult]) {
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "technique", "median (mi)", "p90 (mi)", "worst (mi)", "hit rate"
    );
    for r in results {
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>12.1} {:>9.0}%",
            r.name,
            r.median_miles(),
            r.cdf.percentile(0.9).unwrap_or(f64::NAN),
            r.worst_miles(),
            r.hit_rate() * 100.0
        );
    }
}

/// Prints CDF curves (one column of cumulative fractions per technique) at
/// the given error values in miles — the series Figure 3 plots.
pub fn print_cdf_series(results: &[TechniqueResult], error_grid_miles: &[f64]) {
    print!("{:>12}", "error (mi)");
    for r in results {
        print!(" {:>12}", r.name);
    }
    println!();
    for &e in error_grid_miles {
        print!("{:>12.0}", e);
        for r in results {
            print!(" {:>12.3}", r.cdf.fraction_within(e));
        }
        println!();
    }
}

/// One row of a bench summary's `stage_breakdown` array: a named serve
/// stage with its observation count, accumulated wall time, and latency
/// quantiles — pre-rendered in milliseconds so JSON consumers never see a
/// `Duration`.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// The stage name (`queue_wait`, `solve`, `source.latency`, …).
    pub name: String,
    /// Number of observations folded in.
    pub count: u64,
    /// Total wall time across all observations, milliseconds.
    pub total_ms: f64,
    /// Median per-observation wall time, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-observation wall time, milliseconds.
    pub p99_ms: f64,
}

impl StageRow {
    /// Converts one serving-tier stage row (from
    /// `ShardedService::stats_report`) into the bench-summary shape.
    pub fn from_service(stage: &octant_service::StageBreakdown) -> StageRow {
        StageRow {
            name: stage.name.to_string(),
            count: stage.count,
            total_ms: stage.total.as_secs_f64() * 1e3,
            p50_ms: stage.latency.p50.as_secs_f64() * 1e3,
            p99_ms: stage.latency.p99.as_secs_f64() * 1e3,
        }
    }

    /// Aggregates per-request [`octant_telemetry::StageProfile`]s (one per
    /// profiled target, as returned in `LocationEstimate::profile`) into
    /// stage rows, in first-observed stage order. Each profile contributes
    /// one latency sample per stage it recorded.
    pub fn from_profiles<'a>(
        profiles: impl IntoIterator<Item = &'a octant_telemetry::StageProfile>,
    ) -> Vec<StageRow> {
        let mut stages: Vec<(&'static str, u64, octant_telemetry::LatencyHistogram)> = Vec::new();
        for profile in profiles {
            for stage in profile.stages() {
                let slot = match stages.iter_mut().find(|(name, _, _)| *name == stage.name) {
                    Some(slot) => slot,
                    None => {
                        stages.push((stage.name, 0, octant_telemetry::LatencyHistogram::default()));
                        stages.last_mut().expect("just pushed")
                    }
                };
                slot.1 += stage.calls;
                slot.2.record(stage.wall);
            }
        }
        stages
            .into_iter()
            .map(|(name, count, hist)| {
                let summary = hist.summary();
                StageRow {
                    name: name.to_string(),
                    count,
                    total_ms: hist.total().as_secs_f64() * 1e3,
                    p50_ms: summary.p50.as_secs_f64() * 1e3,
                    p99_ms: summary.p99.as_secs_f64() * 1e3,
                }
            })
            .collect()
    }
}

/// Renders a `stage_breakdown` array in the documented JSON shape.
fn stage_rows_json(rows: &[StageRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\": {}, \"count\": {}, \"total_ms\": {}, \"p50_ms\": {}, \"p99_ms\": {}}}",
                json_string(&row.name),
                row.count,
                json_f64(row.total_ms),
                json_f64(row.p50_ms),
                json_f64(row.p99_ms),
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

/// A machine-readable throughput-bench summary — see the crate docs for the
/// on-disk JSON format. `None` fields are omitted from the output.
#[derive(Debug, Clone, Default)]
pub struct BenchSummary {
    /// Binary name (`"batch"`, `"service"`).
    pub bench: String,
    /// Workload variant (`"smoke"`, `"full"`).
    pub scenario: String,
    /// Landmark deployment size.
    pub landmarks: usize,
    /// Targets served by the measured run.
    pub targets: usize,
    /// Wall-clock seconds of the measured run.
    pub elapsed_s: f64,
    /// Wall-clock seconds of the baseline run, when one was measured.
    pub baseline_elapsed_s: Option<f64>,
    /// Router-cache hits, for cache-backed runs.
    pub cache_hits: Option<u64>,
    /// Router-cache misses (== router sub-solves performed).
    pub cache_misses: Option<u64>,
    /// Data-plane shard count of the measured serving run.
    pub shards: Option<usize>,
    /// Targets submitted by the sustained request stream (each target of
    /// each request counts once; ≥ `targets`, which is the population size).
    pub requests: Option<u64>,
    /// Targets shed by the measured run (admission + deadline).
    pub shed: Option<u64>,
    /// Shed fraction of finished targets of the measured run.
    pub shed_rate: Option<f64>,
    /// Median serve latency (enqueue → completion) in milliseconds.
    pub latency_p50_ms: Option<f64>,
    /// 99th-percentile serve latency in milliseconds.
    pub latency_p99_ms: Option<f64>,
    /// 99.9th-percentile serve latency in milliseconds.
    pub latency_p999_ms: Option<f64>,
    /// Per-stage wall-time rows of the profiled rerun (omitted when empty).
    pub stage_breakdown: Vec<StageRow>,
    /// Wall-clock cost of profiling: the profiled rerun's elapsed time vs
    /// the measured run, in percent (negative means the rerun was faster —
    /// i.e. the overhead is below run-to-run noise).
    pub telemetry_overhead_pct: Option<f64>,
    /// Extra named metrics, emitted verbatim in insertion order (the
    /// `service` bench's `recursive_*_ms_per_target` and
    /// `dilation_step*_shift_km` fields live here).
    pub metrics: Vec<(String, f64)>,
}

impl BenchSummary {
    /// Targets per second of the measured run.
    pub fn targets_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.targets as f64 / self.elapsed_s
        } else {
            f64::INFINITY
        }
    }

    /// Cache hit rate, when cache counters were recorded.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        match (self.cache_hits, self.cache_misses) {
            (Some(h), Some(m)) if h + m > 0 => Some(h as f64 / (h + m) as f64),
            _ => None,
        }
    }

    /// Renders the summary as the documented flat JSON object.
    pub fn to_json(&self) -> String {
        // Hand-rolled: the workspace's serde stand-in has no serializer, and
        // the format is a flat object with a handful of fields.
        let mut fields: Vec<String> = vec![
            format!("\"bench\": {}", json_string(&self.bench)),
            format!("\"scenario\": {}", json_string(&self.scenario)),
            format!("\"landmarks\": {}", self.landmarks),
            format!("\"targets\": {}", self.targets),
            format!("\"elapsed_s\": {}", json_f64(self.elapsed_s)),
            format!("\"targets_per_sec\": {}", json_f64(self.targets_per_sec())),
        ];
        if let Some(base) = self.baseline_elapsed_s {
            fields.push(format!("\"baseline_elapsed_s\": {}", json_f64(base)));
            if base > 0.0 && self.elapsed_s > 0.0 {
                fields.push(format!(
                    "\"baseline_targets_per_sec\": {}",
                    json_f64(self.targets as f64 / base)
                ));
                fields.push(format!("\"speedup\": {}", json_f64(base / self.elapsed_s)));
            }
        }
        if let Some(hits) = self.cache_hits {
            fields.push(format!("\"cache_hits\": {hits}"));
        }
        if let Some(misses) = self.cache_misses {
            fields.push(format!("\"cache_misses\": {misses}"));
            fields.push(format!("\"sub_localizations\": {misses}"));
        }
        if let Some(rate) = self.cache_hit_rate() {
            fields.push(format!("\"cache_hit_rate\": {}", json_f64(rate)));
        }
        if let Some(shards) = self.shards {
            fields.push(format!("\"shards\": {shards}"));
        }
        if let Some(requests) = self.requests {
            fields.push(format!("\"requests\": {requests}"));
        }
        if let Some(shed) = self.shed {
            fields.push(format!("\"shed\": {shed}"));
        }
        if let Some(rate) = self.shed_rate {
            fields.push(format!("\"shed_rate\": {}", json_f64(rate)));
        }
        if let Some(ms) = self.latency_p50_ms {
            fields.push(format!("\"latency_p50_ms\": {}", json_f64(ms)));
        }
        if let Some(ms) = self.latency_p99_ms {
            fields.push(format!("\"latency_p99_ms\": {}", json_f64(ms)));
        }
        if let Some(ms) = self.latency_p999_ms {
            fields.push(format!("\"latency_p999_ms\": {}", json_f64(ms)));
        }
        if !self.stage_breakdown.is_empty() {
            fields.push(format!(
                "\"stage_breakdown\": {}",
                stage_rows_json(&self.stage_breakdown)
            ));
        }
        if let Some(pct) = self.telemetry_overhead_pct {
            fields.push(format!("\"telemetry_overhead_pct\": {}", json_f64(pct)));
        }
        for (name, value) in &self.metrics {
            fields.push(format!("{}: {}", json_string(name), json_f64(*value)));
        }
        format!("{{\n  {}\n}}\n", fields.join(",\n  "))
    }

    /// Writes the JSON summary to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// A machine-readable summary for micro-operation benches (the `region`
/// binary): a flat JSON object of named throughput/counter metrics instead
/// of the target-oriented fields of [`BenchSummary`].
///
/// ```json
/// {
///   "bench": "region",
///   "scenario": "smoke",
///   "intersect16_chained_ops_per_sec": 41.2,
///   "intersect16_nary_ops_per_sec": 213.0,
///   "intersect16_banded_ops_per_sec": 260.0,   // banded gate, no stitching
///   "intersect16_speedup": 5.17,
///   "intersect16_chained_band_merges": 2150,
///   "intersect16_nary_band_merges": 310,
///   "parallel_nary_band_merges": 310,          // forced-parallel rerun; the
///                                              // bin asserts == nary merges
///                                              // and a bit-identical area
///   "contour_extract_ops_per_sec": 9500.0,     // BandedRegion -> contours
///   "contour_soup_rings": 37,                  // trapezoid rings going in
///   "contour_rings": 1,                        // merged contours coming out
///   "contour_area_rel_err": 1.2e-12,           // asserted <= 1e-9
///   "dilate_contoured_r300_ops_per_sec": 210.0,
///   "dilate_r60_ops_per_sec": 880.0,
///   "dilate_r60_reference_ops_per_sec": 95.0,
///   "dilate_r60_speedup": 9.3,
///   "crossing_scan_ops_rescan": 39000,         // crossing-enumeration work on
///   "crossing_scan_ops_eventq": 17000,         // the 16-way case: candidate-
///                                              // pair visits per forced mode
///                                              // (the bin asserts eventq <
///                                              // rescan and bit-identical
///                                              // sweep output)
///   "crossing_scan_reduction": 2.3,            // rescan / eventq
///   "sweep_mode_rescan": 210,                  // adaptive-dispatch tallies
///   "sweep_mode_eventq": 12,                   // over the whole bench run
///   "walk_unions": 64,                         // intersection-walk dilation
///   "walk_fallbacks": 2,                       // merges vs sweep fallbacks
///   ...
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct OpsBenchSummary {
    /// Binary name (`"region"`).
    pub bench: String,
    /// Workload variant (`"smoke"`, `"full"`).
    pub scenario: String,
    /// Named metrics, emitted in insertion order.
    pub metrics: Vec<(String, f64)>,
    /// Per-stage wall-time rows of a profiled pass (omitted when empty).
    pub stage_breakdown: Vec<StageRow>,
}

impl OpsBenchSummary {
    /// Appends one named metric.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Renders the summary as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<String> = vec![
            format!("\"bench\": {}", json_string(&self.bench)),
            format!("\"scenario\": {}", json_string(&self.scenario)),
        ];
        for (name, value) in &self.metrics {
            fields.push(format!("{}: {}", json_string(name), json_f64(*value)));
        }
        if !self.stage_breakdown.is_empty() {
            fields.push(format!(
                "\"stage_breakdown\": {}",
                stage_rows_json(&self.stage_breakdown)
            ));
        }
        format!("{{\n  {}\n}}\n", fields.join(",\n  "))
    }

    /// Writes the JSON summary to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Enough digits to round-trip the interesting range; trailing zeros
        // are harmless to every JSON consumer.
        format!("{v:.6}")
    } else {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        "null".to_string()
    }
}

/// A Zipf-distributed index sampler: index 0 is the most popular item,
/// popularity falls off as `1 / rank^s`. Serving benches use it to shape
/// sustained request streams the way real geolocation traffic looks — a
/// few hot targets dominating, a long tail of cold ones — which is the
/// regime that exercises per-shard queues and the shared router cache.
///
/// Sampling is inverse-CDF over precomputed cumulative weights (O(log n)
/// per draw), driven by any [`rand::Rng`], so streams are reproducible
/// from a seed.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` items with exponent `s` (classic Zipf is
    /// `s = 1.0`; larger skews harder). `n` must be nonzero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler over an empty population");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        ZipfSampler { cdf }
    }

    /// Draws one index in `0..n`.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Parses a `--json <path>` flag from a binary's argument list. Returns
/// `None` when the flag is absent; panics with a usage message when the flag
/// is present without a path (a misconfigured CI invocation should fail
/// loudly, not silently skip the artifact).
pub fn json_path_from_args(args: &[String]) -> Option<std::path::PathBuf> {
    let idx = args.iter().position(|a| a == "--json")?;
    match args.get(idx + 1) {
        Some(path) if !path.starts_with("--") => Some(std::path::PathBuf::from(path)),
        _ => panic!("--json requires a path argument (e.g. --json BENCH_batch.json)"),
    }
}

/// Convenience: the dataset's ground-truth location for a host (panics for
/// unknown hosts — evaluation hosts always have one).
pub fn truth_of(campaign: &Campaign, host: NodeId) -> octant_geo::GeoPoint {
    campaign
        .dataset
        .advertised_location(host)
        .expect("campaign hosts have ground truth")
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant::{Octant, OctantConfig};

    #[test]
    fn small_campaign_builds_and_evaluates() {
        let campaign = campaign_with_sites(8, 3);
        assert_eq!(campaign.hosts.len(), 8);
        let octant = Octant::new(OctantConfig::minimal());
        let result = run_technique(&campaign, &octant);
        assert_eq!(result.outcomes.len(), 8);
        assert!(result.median_miles().is_finite());
        assert!(result.worst_miles() >= result.median_miles());
    }

    #[test]
    fn bench_summary_json_includes_and_omits_the_right_fields() {
        let mut summary = BenchSummary {
            bench: "service".into(),
            scenario: "smoke".into(),
            landmarks: 10,
            targets: 48,
            elapsed_s: 2.0,
            ..BenchSummary::default()
        };
        let json = summary.to_json();
        assert!(json.contains("\"bench\": \"service\""));
        assert!(json.contains("\"targets\": 48"));
        assert!(json.contains("\"targets_per_sec\": 24.000000"));
        assert!(!json.contains("baseline"), "absent fields are omitted");
        assert!(!json.contains("cache"), "absent fields are omitted");

        summary.baseline_elapsed_s = Some(8.0);
        summary.cache_hits = Some(30);
        summary.cache_misses = Some(10);
        summary
            .metrics
            .push(("recursive_ms_per_target".into(), 21.5));
        let json = summary.to_json();
        assert!(json.contains("\"speedup\": 4.000000"));
        assert!(json.contains("\"baseline_targets_per_sec\": 6.000000"));
        assert!(json.contains("\"cache_hit_rate\": 0.750000"));
        assert!(json.contains("\"sub_localizations\": 10"));
        assert!(json.contains("\"recursive_ms_per_target\": 21.500000"));
        assert_eq!(summary.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn zipf_sampler_skews_toward_low_ranks() {
        use rand::SeedableRng;
        let zipf = ZipfSampler::new(100, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let i = zipf.sample(&mut rng);
            assert!(i < 100);
            counts[i] += 1;
        }
        // Rank 1 under Zipf(1.0, n=100) carries ~19% of the mass; the tail
        // half carries ~13%. Loose bounds keep the test seed-robust.
        assert!(counts[0] > counts[9] && counts[9] > 0);
        assert!(
            counts[0] as f64 / 20_000.0 > 0.10,
            "head rank too cold: {}",
            counts[0]
        );
        let tail: usize = counts[50..].iter().sum();
        assert!((tail as f64) < 20_000.0 * 0.30, "tail too hot: {tail}");
        // Reproducible from the seed.
        let mut a = rand::rngs::StdRng::seed_from_u64(11);
        let mut b = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn bench_summary_json_serving_fields() {
        let summary = BenchSummary {
            bench: "service".into(),
            scenario: "smoke".into(),
            landmarks: 10,
            targets: 48,
            elapsed_s: 2.0,
            shards: Some(4),
            requests: Some(2000),
            shed: Some(0),
            shed_rate: Some(0.0),
            latency_p50_ms: Some(1.5),
            latency_p99_ms: Some(6.25),
            latency_p999_ms: Some(8.0),
            ..BenchSummary::default()
        };
        let json = summary.to_json();
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"requests\": 2000"));
        assert!(json.contains("\"shed\": 0"));
        assert!(json.contains("\"shed_rate\": 0.000000"));
        assert!(json.contains("\"latency_p99_ms\": 6.250000"));
        // And every serving field is omitted when absent.
        let bare = BenchSummary {
            bench: "service".into(),
            scenario: "smoke".into(),
            ..BenchSummary::default()
        };
        let json = bare.to_json();
        for field in ["shards", "requests", "shed", "latency"] {
            assert!(!json.contains(field), "{field} must be omitted");
        }
    }

    #[test]
    fn stage_breakdown_and_overhead_are_emitted_and_omitted() {
        let mut summary = BenchSummary {
            bench: "service".into(),
            scenario: "smoke".into(),
            elapsed_s: 2.0,
            ..BenchSummary::default()
        };
        let json = summary.to_json();
        assert!(
            !json.contains("stage_breakdown") && !json.contains("telemetry_overhead_pct"),
            "empty/absent observability fields must be omitted"
        );

        summary.stage_breakdown = vec![StageRow {
            name: "queue_wait".into(),
            count: 7,
            total_ms: 1.25,
            p50_ms: 0.125,
            p99_ms: 0.5,
        }];
        summary.telemetry_overhead_pct = Some(1.5);
        let json = summary.to_json();
        assert!(json.contains(
            "\"stage_breakdown\": [{\"name\": \"queue_wait\", \"count\": 7, \
             \"total_ms\": 1.250000, \"p50_ms\": 0.125000, \"p99_ms\": 0.500000}]"
        ));
        assert!(json.contains("\"telemetry_overhead_pct\": 1.500000"));

        let mut ops = OpsBenchSummary {
            bench: "pipeline".into(),
            scenario: "smoke".into(),
            ..OpsBenchSummary::default()
        };
        assert!(!ops.to_json().contains("stage_breakdown"));
        ops.stage_breakdown = summary.stage_breakdown.clone();
        assert!(ops.to_json().contains("\"name\": \"queue_wait\""));
    }

    #[test]
    fn stage_rows_aggregate_profiles_in_first_observed_order() {
        use std::time::Duration;
        let mut a = octant_telemetry::StageProfile::default();
        a.add("solve", Duration::from_millis(4), 1);
        a.add("solver.intersect", Duration::from_millis(3), 2);
        let mut b = octant_telemetry::StageProfile::default();
        b.add("solve", Duration::from_millis(6), 1);
        let rows = StageRow::from_profiles([&a, &b]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "solve");
        assert_eq!(rows[0].count, 2);
        assert!(
            (rows[0].total_ms - 10.0).abs() < 1.0,
            "{}",
            rows[0].total_ms
        );
        assert_eq!(rows[1].name, "solver.intersect");
        assert_eq!(rows[1].count, 2, "calls sum, samples count per profile");
    }

    #[test]
    fn json_path_flag_parses() {
        let args: Vec<String> = vec!["--smoke".into(), "--json".into(), "out.json".into()];
        assert_eq!(
            json_path_from_args(&args),
            Some(std::path::PathBuf::from("out.json"))
        );
        let args: Vec<String> = vec!["--smoke".into()];
        assert_eq!(json_path_from_args(&args), None);
    }

    #[test]
    fn json_strings_are_escaped() {
        let summary = BenchSummary {
            bench: "a\"b\\c".into(),
            scenario: "s".into(),
            ..BenchSummary::default()
        };
        assert!(summary.to_json().contains("\"a\\\"b\\\\c\""));
    }

    #[test]
    fn landmark_limited_run_is_reproducible() {
        let campaign = campaign_with_sites(8, 3);
        let octant = Octant::new(OctantConfig::minimal());
        let a = run_technique_with_landmarks(&campaign, &octant, 4, 7);
        let b = run_technique_with_landmarks(&campaign, &octant, 4, 7);
        assert_eq!(a.cdf.points(), b.cdf.points());
    }
}
