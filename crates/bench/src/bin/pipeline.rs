//! Evidence-pipeline mix campaign: runs the leave-one-out evaluation under
//! several source mixes — each a **configuration-only** change to the same
//! framework — and reports accuracy, region quality, and the per-source
//! constraint activity aggregated from the provenance reports.
//!
//! This is the §3-ablation axis the pipeline redesign exists for: toggling
//! or re-weighting a constraint family is one `EvidencePipeline::adjusted`
//! call (or one `OctantConfig` switch), never a code change.
//!
//! Usage: `pipeline [--smoke] [--json BENCH_pipeline.json]`
//!
//! The JSON summary is an [`octant_bench::OpsBenchSummary`]: per mix,
//! `mix_<name>_median_mi` / `_p90_mi` / `_hit_rate` / `_mean_area_mi2`,
//! plus `mix_<name>_applied_<source>` for every source that contributed.

use octant::{BatchGeolocator, EvidencePipeline, Octant, OctantConfig, SourceId};
use octant_bench::{pipeline_campaign, run_technique, OpsBenchSummary, StageRow, TechniqueResult};

const SOURCES: &[SourceId] = &[
    SourceId::Latency,
    SourceId::Router,
    SourceId::Hint,
    SourceId::DnsName,
    SourceId::PopulationPrior,
    SourceId::Geography,
];

struct Mix {
    name: &'static str,
    octant: Octant,
}

fn mixes() -> Vec<Mix> {
    let default_cfg = OctantConfig::default();
    // Every source on, including the default-off DNS and population ones.
    let everything_cfg = OctantConfig::default()
        .with_use_dns_hints(true)
        .with_use_population_prior(true);
    vec![
        Mix {
            name: "default",
            octant: Octant::new(default_cfg),
        },
        Mix {
            name: "latency_only",
            octant: Octant::with_pipeline(
                default_cfg,
                EvidencePipeline::standard().adjusted(
                    &[SourceId::Router, SourceId::Hint, SourceId::Geography],
                    &[],
                ),
            ),
        },
        Mix {
            name: "no_router",
            octant: Octant::with_pipeline(
                default_cfg,
                EvidencePipeline::standard().adjusted(&[SourceId::Router], &[]),
            ),
        },
        Mix {
            name: "everything",
            octant: Octant::new(everything_cfg),
        },
        Mix {
            name: "router_downweighted",
            octant: Octant::with_pipeline(
                default_cfg,
                EvidencePipeline::standard().adjusted(&[], &[(SourceId::Router, 0.25)]),
            ),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = octant_bench::json_path_from_args(&args);
    let sites = if smoke { 12 } else { 28 };

    println!("# pipeline bench: {sites}-site leave-one-out under evidence-source mixes");
    let campaign = pipeline_campaign(sites, 42);

    // A cheap redesign guard: the implicit default pipeline and an explicit
    // standard pipeline must agree bit-for-bit (the full pin lives in
    // tests/pipeline_parity.rs; this keeps the bench honest on its own).
    {
        let implicit = Octant::new(OctantConfig::default());
        let explicit = Octant::with_pipeline(OctantConfig::default(), EvidencePipeline::standard());
        let model = implicit.prepare_landmarks(&campaign.dataset, &campaign.hosts[1..]);
        let a = implicit.localize_with_model(&campaign.dataset, &model, campaign.hosts[0]);
        let b = explicit.localize_with_model(&campaign.dataset, &model, campaign.hosts[0]);
        let (pa, pb) = (a.point.unwrap(), b.point.unwrap());
        assert_eq!(
            (pa.lat.to_bits(), pa.lon.to_bits()),
            (pb.lat.to_bits(), pb.lon.to_bits()),
            "default pipeline must equal the explicit standard pipeline"
        );
    }

    let mut summary = OpsBenchSummary {
        bench: "pipeline".to_string(),
        scenario: if smoke { "smoke" } else { "full" }.to_string(),
        ..OpsBenchSummary::default()
    };

    println!(
        "{:<20} {:>11} {:>9} {:>9} {:>14}  applied by source",
        "mix", "median (mi)", "p90 (mi)", "hit rate", "area (mi²)"
    );
    let all = mixes();
    assert!(all.len() >= 4, "the campaign must cover at least 4 mixes");
    for mix in &all {
        let result: TechniqueResult = run_technique(&campaign, &mix.octant);
        let mean_area = {
            let areas: Vec<f64> = result
                .outcomes
                .iter()
                .filter_map(|o| o.region_area_mi2)
                .collect();
            if areas.is_empty() {
                f64::NAN
            } else {
                areas.iter().sum::<f64>() / areas.len() as f64
            }
        };
        // Aggregate per-source applied-constraint counts from provenance.
        let mut applied: Vec<(SourceId, u64)> = SOURCES.iter().map(|&s| (s, 0)).collect();
        for outcome in &result.outcomes {
            for sr in &outcome.estimate.provenance.sources {
                if let Some(slot) = applied.iter_mut().find(|(id, _)| *id == sr.id) {
                    slot.1 += sr.applied() as u64;
                }
            }
        }
        let applied_str: Vec<String> = applied
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(id, n)| format!("{id}:{n}"))
            .collect();
        println!(
            "{:<20} {:>11.1} {:>9.1} {:>8.0}% {:>14.0}  {}",
            mix.name,
            result.median_miles(),
            result.cdf.percentile(0.9).unwrap_or(f64::NAN),
            result.hit_rate() * 100.0,
            mean_area,
            applied_str.join(" ")
        );
        summary.push(format!("mix_{}_median_mi", mix.name), result.median_miles());
        summary.push(
            format!("mix_{}_p90_mi", mix.name),
            result.cdf.percentile(0.9).unwrap_or(f64::NAN),
        );
        summary.push(format!("mix_{}_hit_rate", mix.name), result.hit_rate());
        summary.push(format!("mix_{}_mean_area_mi2", mix.name), mean_area);
        for (id, n) in &applied {
            summary.push(format!("mix_{}_applied_{}", mix.name, id), *n as f64);
        }
    }

    // ---- Profiled pass: per-target stage breakdown of the default mix ------
    // Re-solves every host through the batch engine's profiled entry point
    // (`localize_batch_profiled`), aggregating each target's captured
    // `StageProfile` into the summary's `stage_breakdown` section — the
    // where-does-the-solve-wall-go view next to the accuracy numbers above.
    {
        let batch = BatchGeolocator::new(OctantConfig::default());
        let model = batch
            .octant()
            .prepare_landmarks(&campaign.dataset, &campaign.hosts[1..]);
        let estimates = batch.localize_batch_profiled(&campaign.dataset, &model, &campaign.hosts);
        let profiles: Vec<_> = estimates
            .iter()
            .filter_map(|e| e.profile.as_ref())
            .collect();
        assert_eq!(
            profiles.len(),
            estimates.len(),
            "every profiled estimate must carry a stage profile"
        );
        summary.stage_breakdown = StageRow::from_profiles(profiles);
        println!(
            "{:<18} {:>8} {:>12} {:>10} {:>10}",
            "stage", "count", "total ms", "p50 ms", "p99 ms"
        );
        for row in &summary.stage_breakdown {
            println!(
                "{:<18} {:>8} {:>12.3} {:>10.3} {:>10.3}",
                row.name, row.count, row.total_ms, row.p50_ms, row.p99_ms
            );
        }
    }

    if let Some(path) = json_path {
        summary
            .write_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# wrote {}", path.display());
    }
}
