//! Region-engine micro-bench binary: the perf-regression guard for the
//! n-ary sweep, bbox pruning and fast dilation paths.
//!
//! Measures, with wall-clock throughput (ops/sec):
//!
//! * a 16-way constraint-disk intersection — the chained pairwise reference
//!   (`acc.intersect(d)` fifteen times) against `Region::intersect_many`'s
//!   single sweep, also comparing the scanline **band-merge counters** and
//!   asserting the n-ary sweep merges strictly fewer bands than the chain;
//!   the **banded** entry point (`Region::intersect_many_banded`, no ring
//!   stitching — the solver's chunk-gate path) is timed alongside;
//! * **crossing enumeration modes** on the same 16-way sweep — the forced
//!   band-rescan against the forced Bentley–Ottmann event queue, asserting
//!   the event queue visits strictly fewer candidate pairs
//!   (`crossing_scan_ops_*`) while stitching bit-identical rings, plus the
//!   adaptive-dispatch tallies (`sweep_mode_*`) and intersection-walk
//!   dilation outcomes (`walk_unions` / `walk_fallbacks`) over the whole
//!   run;
//! * the **parallel per-band merge**: the same n-ary sweep re-run with a
//!   forced worker count, asserting the band-merge counter and the result
//!   area are identical to the sequential sweep (the counter merge-on-join
//!   guard);
//! * **contour extraction** from a router-like trapezoid soup — ring-count
//!   reduction and area parity (1e-9) are asserted, extraction throughput
//!   and the contoured dilation variant are timed;
//! * dilation of a trapezoid-decomposed router-like region at three radius
//!   classes (60 / 300 / 900 km) — the fast dispatch (`Region::dilate`)
//!   against the capsule reference (`Region::dilate_reference`);
//! * the landmass-style union of disjoint outlines — `Region::union_many`
//!   against the chained pairwise fold.
//!
//! Run with `cargo run --release -p octant-bench --bin region`. Flags:
//! * `--smoke` — reduced iteration counts (CI's bench-smoke job).
//! * `--json <path>` — write the machine-readable `BENCH_region.json`
//!   summary ([`octant_bench::OpsBenchSummary`] format).

use octant_bench::{json_path_from_args, OpsBenchSummary};
use octant_region::scanline::{
    boolean_op_many_chunked, set_crossing_mode, stats, CrossingMode, NaryOp,
};
use octant_region::{BandedRegion, Region, Vec2};
use std::time::Instant;

/// The 16 constraint-scale disks every intersection measurement uses
/// (same layout as the `region_ops` criterion bench).
fn constraint_disks(n: usize) -> Vec<Region> {
    (0..n)
        .map(|i| {
            let angle = i as f64 * 0.7;
            let center = Vec2::new(angle.cos() * 200.0, angle.sin() * 200.0);
            Region::disk(center, 600.0 + 40.0 * (i % 5) as f64)
        })
        .collect()
}

/// A router-like region: a trapezoid-decomposed, non-convex estimate of the
/// kind a recursive sub-solve produces. Kept vertex-for-vertex identical to
/// the `decomposed` fixture in `benches/region_ops.rs` so the criterion
/// bench and this perf guard measure the same workload — change both
/// together.
fn router_region() -> Region {
    let a = Region::disk(Vec2::new(0.0, 0.0), 140.0);
    let b = Region::disk(Vec2::new(110.0, 20.0), 130.0);
    let bite = Region::disk(Vec2::new(40.0, -60.0), 70.0);
    a.intersect(&b).subtract(&bite)
}

/// Landmass-like outlines: mostly disjoint continents plus one connected
/// pair (the Eurasia/Africa shape), so the union exercises both the
/// bbox-cluster concatenation and a genuine merge sweep.
fn outlines() -> Vec<Region> {
    let mut out: Vec<Region> = (0..5)
        .map(|i| {
            let c = Vec2::new(i as f64 * 3600.0 - 9000.0, (i % 3) as f64 * 2600.0 - 4000.0);
            Region::disk(c, 900.0 + 120.0 * (i % 4) as f64)
        })
        .collect();
    out.push(Region::disk(Vec2::new(7000.0, 5200.0), 1100.0));
    out.push(Region::disk(Vec2::new(7900.0, 4400.0), 950.0));
    out
}

/// Times `iters` runs of `f` and returns ops/sec.
fn ops_per_sec<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = json_path_from_args(&args);
    let iters = if smoke { 5 } else { 40 };

    let mut summary = OpsBenchSummary {
        bench: "region".into(),
        scenario: if smoke { "smoke".into() } else { "full".into() },
        ..OpsBenchSummary::default()
    };

    // ---- 16-way intersection: chained pairwise vs one n-ary sweep ----------
    let disks = constraint_disks(16);
    let chained = |disks: &[Region]| {
        let mut acc = disks[0].clone();
        for d in &disks[1..] {
            acc = acc.intersect(d);
        }
        acc
    };
    let before = stats::thread_band_merges();
    let chained_result = chained(&disks);
    let chained_bands = stats::thread_band_merges() - before;
    let before = stats::thread_band_merges();
    let nary_result = Region::intersect_many(disks.iter());
    let nary_bands = stats::thread_band_merges() - before;

    // The perf-regression guard: one fused sweep must merge strictly fewer
    // bands than the 15 chained sweeps it replaces, and agree on the area.
    assert!(
        nary_bands < chained_bands,
        "n-ary sweep merged {nary_bands} bands, chained pairwise {chained_bands}"
    );
    let (ca, na) = (chained_result.area(), nary_result.area());
    assert!(
        (ca - na).abs() / ca.max(1.0) < 1e-6,
        "chained area {ca} vs n-ary {na}"
    );

    // ---- Crossing enumeration: forced band-rescan vs event queue -----------
    // The same 16-way n-ary sweep with the crossing-enumeration mode forced
    // each way. The perf guard: the event queue must visit strictly fewer
    // candidate pairs (its active set is y-pruned by construction and
    // x-pruned by the sorted prefix) while stitching bit-identical rings —
    // the dispatch heuristic is a pure work trade, never a result change.
    set_crossing_mode(CrossingMode::Rescan);
    let before = stats::thread_crossing_scan_ops();
    let rescan_result = Region::intersect_many(disks.iter());
    let rescan_scan_ops = stats::thread_crossing_scan_ops() - before;
    set_crossing_mode(CrossingMode::EventQueue);
    let before = stats::thread_crossing_scan_ops();
    let eventq_result = Region::intersect_many(disks.iter());
    let eventq_scan_ops = stats::thread_crossing_scan_ops() - before;
    set_crossing_mode(CrossingMode::Auto);
    assert_eq!(
        rescan_result, eventq_result,
        "event-queue crossing enumeration must stitch bit-identical rings"
    );
    assert!(
        eventq_scan_ops < rescan_scan_ops,
        "event queue scanned {eventq_scan_ops} candidate pairs, rescan {rescan_scan_ops}"
    );
    println!(
        "# crossing scan ops   : rescan {rescan_scan_ops}, event queue {eventq_scan_ops}  ({:.2}x fewer, bit-identical)",
        rescan_scan_ops as f64 / eventq_scan_ops as f64
    );
    summary.push("crossing_scan_ops_rescan", rescan_scan_ops as f64);
    summary.push("crossing_scan_ops_eventq", eventq_scan_ops as f64);
    summary.push(
        "crossing_scan_reduction",
        rescan_scan_ops as f64 / eventq_scan_ops as f64,
    );

    let chained_ops = ops_per_sec(iters, || chained(&disks));
    let nary_ops = ops_per_sec(iters, || Region::intersect_many(disks.iter()));
    let banded_ops = ops_per_sec(iters, || Region::intersect_many_banded(disks.iter()).area());
    println!("# intersect16 chained : {chained_ops:>10.1} ops/s  ({chained_bands} band merges)");
    println!("# intersect16 n-ary   : {nary_ops:>10.1} ops/s  ({nary_bands} band merges)");
    println!("# intersect16 banded  : {banded_ops:>10.1} ops/s  (area gate, no stitch)");
    println!("# intersect16 speedup : {:.2}x", nary_ops / chained_ops);
    summary.push("intersect16_chained_ops_per_sec", chained_ops);
    summary.push("intersect16_nary_ops_per_sec", nary_ops);
    summary.push("intersect16_banded_ops_per_sec", banded_ops);
    summary.push("intersect16_speedup", nary_ops / chained_ops);
    summary.push("intersect16_chained_band_merges", chained_bands as f64);
    summary.push("intersect16_nary_band_merges", nary_bands as f64);

    // ---- Parallel per-band merge: counter + result parity ------------------
    // Re-run the identical n-ary sweep through the explicit chunk-count
    // hook (deterministic on any machine — forcing worker counts via env
    // vars would be a no-op under a global-pool threading backend): the
    // chunked per-band path must merge exactly the same number of bands
    // into the *calling* thread's counter (thread-local accumulation +
    // merge on join) and stitch bit-identical rings.
    let ring_sets: Vec<&[octant_region::Ring]> = disks.iter().map(|d| d.rings()).collect();
    let before_seq = stats::thread_band_merges();
    let sequential = boolean_op_many_chunked(&ring_sets, NaryOp::Intersection, 1);
    let sequential_bands = stats::thread_band_merges() - before_seq;
    let before_par = stats::thread_band_merges();
    let parallel = boolean_op_many_chunked(&ring_sets, NaryOp::Intersection, 4);
    let parallel_bands = stats::thread_band_merges() - before_par;
    assert_eq!(
        parallel_bands, sequential_bands,
        "parallel per-band merge must count exactly the sequential sweep's bands"
    );
    assert_eq!(
        parallel, sequential,
        "parallel per-band merge must stitch bit-identical rings"
    );
    println!("# parallel merge      : {parallel_bands} band merges (== sequential), bit-identical");
    summary.push("parallel_nary_band_merges", parallel_bands as f64);

    // ---- Contour extraction from router-like trapezoid soup ----------------
    let soup = router_region();
    let banded = BandedRegion::from_region(&soup);
    let contours = banded.extract_contours();
    let contour_area = BandedRegion::contour_area(&contours);
    let rel_err = (contour_area - banded.area()).abs() / banded.area().max(1.0);
    assert!(
        rel_err <= 1e-9,
        "contour area must match the bands within 1e-9 (got {rel_err:.2e})"
    );
    assert!(
        contours.len() < soup.ring_count(),
        "contours ({}) must merge the trapezoid soup ({} rings)",
        contours.len(),
        soup.ring_count()
    );
    let extract_ops = ops_per_sec(iters, || {
        BandedRegion::from_region(&soup).extract_contours()
    });
    println!(
        "# contour extraction  : {extract_ops:>10.1} ops/s  ({} soup rings -> {} contours)",
        soup.ring_count(),
        contours.len()
    );
    summary.push("contour_extract_ops_per_sec", extract_ops);
    summary.push("contour_soup_rings", soup.ring_count() as f64);
    summary.push("contour_rings", contours.len() as f64);
    summary.push("contour_area_rel_err", rel_err);

    let contoured_ops = ops_per_sec(iters, || soup.dilate_with_contours(&contours, 300.0));
    let contoured = soup.dilate_with_contours(&contours, 300.0);
    let fast = soup.dilate(300.0);
    let rel = (contoured.area() - fast.area()).abs() / fast.area();
    assert!(
        rel < 0.02,
        "contoured dilation diverges from the fast dispatch by {rel}"
    );
    println!("# dilate via contours : {contoured_ops:>10.1} ops/s  (r=300, {rel:.2e} area delta)");
    summary.push("dilate_contoured_r300_ops_per_sec", contoured_ops);

    // ---- Dilation: fast dispatch vs capsule reference, 3 radius classes ----
    let region = router_region();
    for radius in [60.0f64, 300.0, 900.0] {
        let fast = region.dilate(radius);
        let reference = region.dilate_reference(radius);
        let rel = (fast.area() - reference.area()).abs() / reference.area();
        assert!(
            rel < 0.02,
            "dilate({radius}) diverges from the reference by {rel}"
        );
        let fast_ops = ops_per_sec(iters, || region.dilate(radius));
        let ref_iters = (iters / 2).max(2);
        let ref_ops = ops_per_sec(ref_iters, || region.dilate_reference(radius));
        let label = format!("dilate_r{radius:.0}");
        println!(
            "# {label:<20}: {fast_ops:>10.1} ops/s fast, {ref_ops:>8.1} ops/s reference ({:.2}x)",
            fast_ops / ref_ops
        );
        summary.push(format!("{label}_ops_per_sec"), fast_ops);
        summary.push(format!("{label}_reference_ops_per_sec"), ref_ops);
        summary.push(format!("{label}_speedup"), fast_ops / ref_ops);
    }

    // ---- Landmass-style union of disjoint outlines -------------------------
    let lands = outlines();
    let chained_union = |lands: &[Region]| {
        let mut acc = lands[0].clone();
        for l in &lands[1..] {
            acc = acc.union(l);
        }
        acc
    };
    let union_chained_ops = ops_per_sec(iters, || chained_union(&lands));
    let union_nary_ops = ops_per_sec(iters, || Region::union_many(lands.iter()));
    println!("# union7 chained      : {union_chained_ops:>10.1} ops/s");
    println!("# union7 n-ary        : {union_nary_ops:>10.1} ops/s");
    summary.push("union7_chained_ops_per_sec", union_chained_ops);
    summary.push("union7_nary_ops_per_sec", union_nary_ops);
    summary.push("union7_speedup", union_nary_ops / union_chained_ops);

    // ---- Dispatch + walk tallies over the whole bench run ------------------
    // Thread-cumulative counters: how often the adaptive crossing dispatch
    // picked each enumeration, and how the intersection-walking dilation
    // merge fared. The walk must have engaged — a bench run where every
    // dilation fell back to the sweep means the fast path regressed.
    let (mode_rescan, mode_eventq) = stats::thread_sweep_mode_counts();
    let (walk_unions, walk_fallbacks) = stats::thread_walk_counts();
    assert!(
        walk_unions > 0,
        "the intersection-walking dilation merge never engaged"
    );
    println!(
        "# sweep-mode dispatch : {mode_rescan} rescan, {mode_eventq} event queue ({} walk unions, {} fallbacks)",
        walk_unions, walk_fallbacks
    );
    summary.push("sweep_mode_rescan", mode_rescan as f64);
    summary.push("sweep_mode_eventq", mode_eventq as f64);
    summary.push("walk_unions", walk_unions as f64);
    summary.push("walk_fallbacks", walk_fallbacks as f64);

    if let Some(path) = json_path {
        summary
            .write_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# wrote {}", path.display());
    }
}
