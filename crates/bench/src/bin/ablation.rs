//! Ablation study — how much each Octant mechanism contributes.
//!
//! §2 of the paper motivates four mechanisms on top of the basic constraint
//! framework: height-based queuing-delay compensation (§2.2), piecewise
//! router localization (§2.3), negative constraints (§2.1/§2), and
//! geographic/WHOIS constraints (§2.5). This harness evaluates Octant with
//! each mechanism disabled in turn (and a "minimal" variant with everything
//! off) so their individual contributions to the median error and to the
//! region hit rate are visible.
//!
//! Run with `cargo run --release -p octant-bench --bin ablation`.

use octant::{Octant, OctantConfig, RouterLocalization};
use octant_bench::{planetlab_campaign, print_summary_table, run_technique, TechniqueResult};

fn variant(name: &str, config: OctantConfig, campaign: &octant_bench::Campaign) -> TechniqueResult {
    let octant = Octant::new(config);
    let mut result = run_technique(campaign, &octant);
    result.name = name.to_string();
    result
}

fn main() {
    let campaign = planetlab_campaign(42);
    println!("# Ablation — each row disables one mechanism of the full system");

    let full = OctantConfig::default();
    let results = vec![
        variant("full", full, &campaign),
        variant("-heights", full.with_use_heights(false), &campaign),
        variant(
            "-piecewise",
            full.with_router_localization(RouterLocalization::Off),
            &campaign,
        ),
        variant(
            "-negative",
            full.with_use_negative_constraints(false),
            &campaign,
        ),
        variant(
            "-geo/whois",
            full.with_use_whois(false)
                .with_use_landmass_constraint(false),
            &campaign,
        ),
        variant("minimal", OctantConfig::minimal(), &campaign),
    ];

    print_summary_table(&results);

    let full_median = results[0].median_miles();
    println!("# section: median-error degradation when removing each mechanism");
    for r in &results[1..] {
        println!(
            "{:<12} {:>+7.1} mi ({:+.0}%)",
            r.name,
            r.median_miles() - full_median,
            (r.median_miles() / full_median - 1.0) * 100.0
        );
    }
}
