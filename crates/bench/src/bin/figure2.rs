//! Figure 2 — the latency-to-distance scatter for one landmark.
//!
//! The paper plots, for `planetlab1.cs.rochester.edu`, the RTT to every peer
//! landmark against the physical distance to it, together with the convex
//! hull used for calibration, percentile markers and the 2/3-c
//! speed-of-light line. This binary regenerates the same data from the
//! simulated campaign and prints it as aligned columns (scatter points, hull
//! facets, percentile cutoffs, speed-of-light reference) so it can be
//! plotted or inspected directly.
//!
//! Run with `cargo run --release -p octant-bench --bin figure2`. Pass
//! `--smoke` to run over a reduced site set — CI uses this to prove the
//! figure pipeline end to end without paying for the full 51-site capture.

use octant::calibration::{Calibration, CalibrationConfig, CalibrationSample};
use octant_bench::{campaign_with_sites, planetlab_campaign};
use octant_geo::distance::great_circle;
use octant_geo::units::{Distance, Latency};
use octant_netsim::ObservationProvider;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The reference landmark (Rochester) is site index 1, so even the
    // reduced set keeps the figure's subject.
    let campaign = if smoke {
        campaign_with_sites(12, 42)
    } else {
        planetlab_campaign(42)
    };
    let reference_host = "planetlab1.cs.rochester.edu";
    let hosts = campaign.dataset.hosts();
    let reference = hosts
        .iter()
        .find(|h| h.hostname == reference_host)
        .expect("the Rochester landmark is part of the 51-site set");
    let reference_loc = campaign
        .dataset
        .advertised_location(reference.id)
        .expect("landmarks have known positions");

    // Scatter: (RTT to peer, distance to peer) for every other landmark.
    let mut samples = Vec::new();
    println!("# Figure 2 — latency vs distance from {reference_host}");
    println!("# section: scatter");
    println!("{:>10} {:>12} {:<40}", "rtt_ms", "dist_km", "peer");
    for peer in &hosts {
        if peer.id == reference.id {
            continue;
        }
        let Some(rtt) = campaign.dataset.ping(reference.id, peer.id).min() else {
            continue;
        };
        let peer_loc = campaign.dataset.advertised_location(peer.id).unwrap();
        let dist = great_circle(reference_loc, peer_loc);
        println!(
            "{:>10.2} {:>12.1} {:<40}",
            rtt.ms(),
            dist.km(),
            peer.hostname
        );
        samples.push(CalibrationSample {
            latency: rtt,
            distance: dist,
        });
    }

    // The calibration the Octant framework would derive from this landmark.
    let calibration = Calibration::from_samples(samples.clone(), CalibrationConfig::aggressive());

    println!("# section: percentile cutoffs (latency below which X% of peers lie)");
    let mut latencies: Vec<f64> = samples.iter().map(|s| s.latency.ms()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for pct in [0.5, 0.75, 0.9] {
        let idx = ((latencies.len() as f64 - 1.0) * pct).round() as usize;
        println!(
            "{:>4.0}% of peers within {:>8.2} ms",
            pct * 100.0,
            latencies[idx]
        );
    }
    println!(
        "# calibration cutoff rho = {:.2} ms",
        calibration.cutoff_ms()
    );

    println!("# section: convex hull upper facet (R_L)");
    println!("{:>10} {:>12}", "rtt_ms", "dist_km");
    for &(x, y) in calibration.upper_facet() {
        println!("{x:>10.2} {y:>12.1}");
    }
    println!("# section: convex hull lower facet (r_L)");
    println!("{:>10} {:>12}", "rtt_ms", "dist_km");
    for &(x, y) in calibration.lower_facet() {
        println!("{x:>10.2} {y:>12.1}");
    }

    println!("# section: derived bounds vs the 2/3-c speed-of-light line");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "rtt_ms", "R_L_km", "r_L_km", "two_thirds_c_km"
    );
    let mut rtt = 2.0;
    while rtt <= 100.0 {
        let l = Latency::from_ms(rtt);
        println!(
            "{:>10.1} {:>14.1} {:>14.1} {:>14.1}",
            rtt,
            calibration.max_distance(l).km(),
            calibration.min_distance(l).km(),
            Distance::max_fiber_distance_for_rtt(l).km()
        );
        rtt += 2.0;
    }

    // The structural claim of Figure 2: the hull bound is far tighter than
    // the physical bound over the informative latency range.
    let probe = Latency::from_ms(40.0);
    let tightening =
        Distance::max_fiber_distance_for_rtt(probe).km() / calibration.max_distance(probe).km();
    println!("# at 40 ms RTT the convex-hull bound is {tightening:.1}x tighter than the speed-of-light bound");
}
