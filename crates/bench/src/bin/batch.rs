//! Batch-throughput campaign binary: the offline engine's targets/sec axis.
//!
//! Localizes a target population against a fixed landmark deployment twice —
//! with the naive sequential loop (model rebuilt per target) and with
//! `BatchGeolocator::localize_batch` — verifies the estimates are identical
//! on the replay-stable dataset, and reports both throughputs.
//!
//! Run with `cargo run --release -p octant-bench --bin batch`. Flags:
//! * `--smoke` — reduced problem size (CI's bench-smoke job).
//! * `--json <path>` — additionally write the machine-readable
//!   `BENCH_*.json` summary documented in `octant_bench`'s crate docs.

use octant::{BatchGeolocator, Geolocator, Octant, OctantConfig};
use octant_bench::{batch_campaign, json_path_from_args, BenchSummary};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = json_path_from_args(&args);
    let (landmark_count, target_count) = if smoke { (10, 16) } else { (16, 120) };

    println!("# batch bench: {landmark_count} landmarks, {target_count} targets");
    let campaign = batch_campaign(landmark_count, target_count, 42);

    let octant = Octant::new(OctantConfig::default());
    let batch = BatchGeolocator::new(OctantConfig::default());

    let seq_start = Instant::now();
    let sequential: Vec<_> = campaign
        .targets
        .iter()
        .map(|&t| octant.localize(&campaign.dataset, &campaign.landmarks, t))
        .collect();
    let seq_elapsed = seq_start.elapsed();

    let batch_start = Instant::now();
    let batched = batch.localize_batch(&campaign.dataset, &campaign.landmarks, &campaign.targets);
    let batch_elapsed = batch_start.elapsed();

    let identical = sequential
        .iter()
        .zip(&batched)
        .all(|(s, b)| s.point == b.point);
    assert!(
        identical,
        "batch and sequential estimates must be identical on a replay-stable dataset"
    );

    let n = campaign.targets.len();
    println!(
        "# sequential loop : {seq_elapsed:>10.1?}  ({:.1} targets/s)",
        n as f64 / seq_elapsed.as_secs_f64()
    );
    println!(
        "# localize_batch  : {batch_elapsed:>10.1?}  ({:.1} targets/s)",
        n as f64 / batch_elapsed.as_secs_f64()
    );
    println!(
        "# speedup         : {:.2}x",
        seq_elapsed.as_secs_f64() / batch_elapsed.as_secs_f64()
    );

    let summary = BenchSummary {
        bench: "batch".into(),
        scenario: if smoke { "smoke".into() } else { "full".into() },
        landmarks: campaign.landmarks.len(),
        targets: n,
        elapsed_s: batch_elapsed.as_secs_f64(),
        baseline_elapsed_s: Some(seq_elapsed.as_secs_f64()),
        ..BenchSummary::default()
    };
    if let Some(path) = json_path {
        summary
            .write_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# wrote {}", path.display());
    }
}
