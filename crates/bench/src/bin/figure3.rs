//! Figure 3 — CDF of localization error for Octant, GeoLim, GeoPing and
//! GeoTrack on the 51-node PlanetLab-like campaign.
//!
//! The paper reports median errors of 22 / 89 / 68 / 97 miles and worst-case
//! errors of 173 / 385 / 1071 / 2709 miles for Octant / GeoLim / GeoPing /
//! GeoTrack respectively. Absolute numbers depend on the measurement
//! substrate (ours is a simulator, not 2007 PlanetLab); the property this
//! harness checks is the *shape*: Octant's CDF dominates all three baselines
//! and its median error is a small fraction of theirs.
//!
//! Run with `cargo run --release -p octant-bench --bin figure3`.

use octant::{Octant, OctantConfig};
use octant_baselines::{GeoLim, GeoPing, GeoTrack};
use octant_bench::{planetlab_campaign, print_cdf_series, print_summary_table, run_technique};

fn main() {
    let campaign = planetlab_campaign(42);
    println!(
        "# Figure 3 — error CDF over {} targets (leave-one-out)",
        campaign.hosts.len()
    );

    let octant = Octant::new(OctantConfig::default());
    let geolim = GeoLim::default();
    let geoping = GeoPing;
    let geotrack = GeoTrack;

    let results = vec![
        run_technique(&campaign, &octant),
        run_technique(&campaign, &geolim),
        run_technique(&campaign, &geoping),
        run_technique(&campaign, &geotrack),
    ];

    println!("# section: summary (paper: Octant 22 mi median / 173 mi worst, GeoLim 89/385, GeoPing 68/1071, GeoTrack 97/2709)");
    print_summary_table(&results);

    println!("# section: CDF series (cumulative fraction of targets within the given error)");
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 * 25.0).collect();
    print_cdf_series(&results, &grid);

    // The headline comparison of the paper, as explicit ratios.
    let octant_median = results[0].median_miles();
    println!("# section: median-error ratios relative to Octant (paper: 4.0x GeoLim, 3.1x GeoPing, 4.4x GeoTrack)");
    for r in &results[1..] {
        println!("{:<10} {:>6.2}x", r.name, r.median_miles() / octant_median);
    }
}
