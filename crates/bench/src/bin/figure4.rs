//! Figure 4 — fraction of targets whose true position lies inside the
//! estimated location region, as a function of the number of landmarks.
//!
//! The paper compares Octant against GeoLim (the only other region-producing
//! technique) for 10–50 landmarks and observes that Octant stays high and
//! roughly flat while GeoLim *degrades* as landmarks are added, because its
//! strict intersection of aggressively-derived disks is over-constrained by a
//! single bad landmark. This binary regenerates that sweep.
//!
//! Run with `cargo run --release -p octant-bench --bin figure4`.

use octant::{Octant, OctantConfig};
use octant_baselines::GeoLim;
use octant_bench::{planetlab_campaign, run_technique_with_landmarks};

fn main() {
    let campaign = planetlab_campaign(42);
    let octant = Octant::new(OctantConfig::default());
    let geolim = GeoLim::default();

    println!("# Figure 4 — % of targets inside the estimated region vs number of landmarks");
    println!("{:>10} {:>10} {:>10}", "landmarks", "octant", "geolim");
    let mut octant_first = None;
    let mut octant_last = None;
    let mut geolim_first = None;
    let mut geolim_last = None;
    for &count in &[10usize, 15, 20, 25, 30, 35, 40, 45, 50] {
        let o = run_technique_with_landmarks(&campaign, &octant, count, 1000 + count as u64);
        let g = run_technique_with_landmarks(&campaign, &geolim, count, 1000 + count as u64);
        println!(
            "{:>10} {:>9.0}% {:>9.0}%",
            count,
            o.hit_rate() * 100.0,
            g.hit_rate() * 100.0
        );
        if octant_first.is_none() {
            octant_first = Some(o.hit_rate());
            geolim_first = Some(g.hit_rate());
        }
        octant_last = Some(o.hit_rate());
        geolim_last = Some(g.hit_rate());
    }

    println!(
        "# section: shape check (paper: Octant stays high; GeoLim drops as landmarks increase)"
    );
    if let (Some(of), Some(ol), Some(gf), Some(gl)) =
        (octant_first, octant_last, geolim_first, geolim_last)
    {
        println!(
            "octant: {:.0}% at 10 landmarks -> {:.0}% at 50 landmarks",
            of * 100.0,
            ol * 100.0
        );
        println!(
            "geolim: {:.0}% at 10 landmarks -> {:.0}% at 50 landmarks",
            gf * 100.0,
            gl * 100.0
        );
        println!(
            "octant advantage at full landmark set: {:+.0} percentage points",
            (ol - gl) * 100.0
        );
    }
}
