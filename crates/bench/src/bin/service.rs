//! Serving-throughput campaign binary: the online engine's axis.
//!
//! Runs `RouterLocalization::Recursive` — the most expensive enrichment in
//! the framework, §3's recursive router localization — over a population of
//! targets that share last-hop routers, twice:
//!
//! 1. **baseline**: the offline batch engine with inline router sub-solves
//!    (every target pays for every router it routes through), and
//! 2. **service**: `octant_service::GeolocationService`, whose shared
//!    router cache computes each router's sub-localization once per model
//!    epoch and replays it across all targets and requests.
//!
//! The two produce bit-identical estimates on the replay-stable dataset;
//! the throughput ratio is the cache's win, and grows with N/R (targets per
//! shared router).
//!
//! Run with `cargo run --release -p octant-bench --bin service`. Flags:
//! * `--smoke` — reduced problem size (CI's bench-smoke job).
//! * `--json <path>` — additionally write the machine-readable
//!   `BENCH_*.json` summary documented in `octant_bench`'s crate docs.

use octant::{BatchGeolocator, OctantConfig, RouterLocalization};
use octant_bench::{json_path_from_args, service_campaign, BenchSummary};
use octant_service::{GeolocationService, ServiceConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = json_path_from_args(&args);
    // Targets concentrated behind a few sites, so they share last-hop
    // routers: the N ≫ R regime the router cache amortizes.
    let (landmark_count, target_sites, per_site) = if smoke { (16, 3, 4) } else { (16, 3, 16) };

    let octant_config =
        OctantConfig::default().with_router_localization(RouterLocalization::Recursive);

    println!(
        "# service bench: {landmark_count} landmarks, {} targets behind {target_sites} sites, recursive router localization",
        target_sites * per_site
    );
    let campaign = service_campaign(landmark_count, target_sites, per_site, 42);
    let provider = campaign.dataset.into_shared();

    // ---- Baseline: per-target recursive batch (inline sub-solves) ----------
    let batch = BatchGeolocator::new(octant_config);
    let base_start = Instant::now();
    let baseline = batch.localize_batch(&provider, &campaign.landmarks, &campaign.targets);
    let base_elapsed = base_start.elapsed();

    // ---- Service: shared router cache, micro-batched request stream --------
    let service = GeolocationService::start(
        ServiceConfig::default().with_octant(octant_config),
        provider,
        &campaign.landmarks,
    );
    // Submit the population as a stream of small requests (4 targets each),
    // the shape real traffic has; the queue coalesces them into micro-batches.
    let serve_start = Instant::now();
    let handles: Vec<_> = campaign
        .targets
        .chunks(4)
        .map(|chunk| service.submit(chunk))
        .collect();
    let served: Vec<_> = handles.into_iter().flat_map(|h| h.wait()).collect();
    let serve_elapsed = serve_start.elapsed();

    let identical = campaign
        .targets
        .iter()
        .zip(&baseline)
        .zip(&served)
        .all(|((&t, b), s)| s.target == t && s.estimate.point == b.point);
    assert!(
        identical,
        "cached serving must be bit-identical to the uncached recursive batch"
    );

    let stats = service.stats();
    let n = campaign.targets.len();
    println!(
        "# recursive batch (uncached) : {base_elapsed:>10.1?}  ({:.1} targets/s)",
        n as f64 / base_elapsed.as_secs_f64()
    );
    println!(
        "# service (shared cache)     : {serve_elapsed:>10.1?}  ({:.1} targets/s)",
        n as f64 / serve_elapsed.as_secs_f64()
    );
    println!(
        "# speedup                    : {:.2}x",
        base_elapsed.as_secs_f64() / serve_elapsed.as_secs_f64()
    );
    println!(
        "# router cache               : {} sub-localizations, {} hits, {:.1}% hit rate, {} micro-batches",
        stats.cache.misses,
        stats.cache.hits,
        stats.cache.hit_rate() * 100.0,
        stats.batches
    );

    let summary = BenchSummary {
        bench: "service".into(),
        scenario: if smoke { "smoke".into() } else { "full".into() },
        landmarks: campaign.landmarks.len(),
        targets: n,
        elapsed_s: serve_elapsed.as_secs_f64(),
        baseline_elapsed_s: Some(base_elapsed.as_secs_f64()),
        cache_hits: Some(stats.cache.hits),
        cache_misses: Some(stats.cache.misses),
    };
    service.shutdown();
    if let Some(path) = json_path {
        summary
            .write_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# wrote {}", path.display());
    }
}
