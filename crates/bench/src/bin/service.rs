//! Serving-tier campaign binary: the online engine's axis.
//!
//! Stages:
//!
//! 1. **Recursive parity + measured serving** — runs
//!    `RouterLocalization::Recursive` (the most expensive enrichment in the
//!    framework, §3's recursive router localization) over targets that
//!    share last-hop routers three ways: the offline batch engine with
//!    inline sub-solves (the `recursive_baseline_ms_per_target` reference),
//!    a service with the radius-class dilation cache opted **out**
//!    (asserted bit-identical to the batch run), and a default-config
//!    service with the dilation cache **on** — the measured
//!    `recursive_ms_per_target` run, asserted sampling-equivalent (point
//!    estimates within a small geodesic shift of the exact run).
//!
//! 1b. **Dilation step sweep** — re-solves the campaign through the router
//!    cache at several `dilation_radius_step_km` settings and reports the
//!    median/p90/max point-estimate shift vs the exact step-0 run — the
//!    accuracy envelope behind the default step
//!    (`dilation_step<step>_{median,p90,max}_shift_km` in the JSON).
//! 2. **Zipf sustained traffic** — the measured campaign: a long
//!    Zipf-distributed request stream (hot targets dominate, long cold
//!    tail) against the sharded service, first with one shard (the
//!    pre-sharding configuration — this is the `baseline_*` section of the
//!    JSON), then with a multi-shard data plane (the measured run). Reports
//!    throughput, p50/p99/p999 serve latency from the service's merged
//!    per-shard histograms, and the shed rate (bounded queues are sized so
//!    a healthy run sheds nothing; a nonzero shed rate in the artifact
//!    means the tier was overloaded).
//!
//! 3. **Profiled rerun** — the same multi-shard Zipf stream resubmitted
//!    with `LocalizeOptions::with_profiling()` on every request. Its merged
//!    per-stage histograms (`ShardedService::stats_report`) become the
//!    JSON's `stage_breakdown` section, and its wall-clock delta against
//!    stage 2 becomes `telemetry_overhead_pct` — the measured cost of
//!    turning profiling on.
//!
//! The stream is submitted through a sliding window of in-flight requests,
//! so the client applies backpressure the way a real frontend does instead
//! of dumping the whole campaign into the queues at once.
//!
//! Run with `cargo run --release -p octant-bench --bin service`. Flags:
//! * `--smoke` — reduced problem size (CI's bench-smoke job).
//! * `--json <path>` — additionally write the machine-readable
//!   `BENCH_*.json` summary documented in `octant_bench`'s crate docs.

use octant::{BatchGeolocator, Octant, OctantConfig, RouterLocalization};
use octant_bench::{json_path_from_args, service_campaign, BenchSummary, StageRow, ZipfSampler};
use octant_netsim::topology::NodeId;
use octant_netsim::{MeasurementDataset, ObservationProvider};
use octant_service::{
    GeolocationService, LocalizeOptions, RequestHandle, RouterCache, RouterCacheConfig,
    ServiceConfig, ShardConfig,
};
use rand::SeedableRng;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Targets per submitted request — the small-request shape real traffic has.
const REQUEST_SIZE: usize = 4;
/// In-flight request window: the client-side backpressure bound.
const WINDOW: usize = 32;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = json_path_from_args(&args);
    // Targets concentrated behind a few sites, so they share last-hop
    // routers: the N ≫ R regime the router cache amortizes.
    let (landmark_count, target_sites, per_site) = if smoke { (16, 3, 4) } else { (16, 3, 16) };
    // The sustained stream: total targets pushed through the serving tier.
    let stream_len: u64 = if smoke { 2_000 } else { 120_000 };

    let campaign = service_campaign(landmark_count, target_sites, per_site, 42);
    let provider = campaign.dataset.into_shared();

    // ---- Stage 1: recursive parity (shared cache vs inline sub-solves) -----
    let octant_config =
        OctantConfig::default().with_router_localization(RouterLocalization::Recursive);
    println!(
        "# service bench: {landmark_count} landmarks, {} targets behind {target_sites} sites, recursive router localization",
        campaign.targets.len()
    );
    let batch = BatchGeolocator::new(octant_config);
    let base_start = Instant::now();
    let baseline = batch.localize_batch(&provider, &campaign.landmarks, &campaign.targets);
    let base_elapsed = base_start.elapsed();

    // Bit-parity run: dilation cache opted out (step 0), so serving must
    // reproduce the uncached batch engine byte for byte.
    let service = GeolocationService::start(
        ServiceConfig::default()
            .with_octant(octant_config)
            .with_cache(RouterCacheConfig::default().with_dilation_radius_step_km(0.0)),
        provider.clone(),
        &campaign.landmarks,
    );
    let serve_start = Instant::now();
    let handles: Vec<_> = campaign
        .targets
        .chunks(REQUEST_SIZE)
        .map(|chunk| service.submit(chunk))
        .collect();
    let served: Vec<_> = handles.into_iter().flat_map(|h| h.wait()).collect();
    let serve_elapsed = serve_start.elapsed();

    let identical = campaign
        .targets
        .iter()
        .zip(&baseline)
        .zip(&served)
        .all(|((&t, b), s)| s.target == t && s.estimate.point == b.point);
    assert!(
        identical,
        "cached serving (dilation cache off) must be bit-identical to the uncached recursive batch"
    );
    let stats = service.stats();
    service.shutdown();

    // Measured run: the characterized default config — radius-class
    // dilation cache on. Sampling-equivalent, not bit-identical: assert the
    // point estimates stay within a small geodesic shift of the exact run.
    let fast_service = GeolocationService::start(
        ServiceConfig::default().with_octant(octant_config),
        provider.clone(),
        &campaign.landmarks,
    );
    let fast_start = Instant::now();
    let handles: Vec<_> = campaign
        .targets
        .chunks(REQUEST_SIZE)
        .map(|chunk| fast_service.submit(chunk))
        .collect();
    let fast: Vec<_> = handles.into_iter().flat_map(|h| h.wait()).collect();
    let fast_elapsed = fast_start.elapsed();
    let fast_stats = fast_service.stats();
    fast_service.shutdown();
    let fast_points: Vec<_> = fast.iter().map(|s| s.estimate.point).collect();
    let base_points: Vec<_> = baseline.iter().map(|b| b.point).collect();
    let default_step_shift = quantiles(&point_shifts_km(&base_points, &fast_points));

    // The accuracy gate. Class-rounded dilation shifts point estimates
    // (tens of km on this campaign — the cached seam trades the exact float
    // stream for shared work), but what must hold for the default to be
    // safe is that accuracy against **ground truth** is preserved: the
    // shift sits far below the estimator's intrinsic error scale, so the
    // median error may move only by noise (±10% + a few km of quantile
    // granularity), not degrade outright.
    let truths: Vec<_> = campaign
        .targets
        .iter()
        .map(|&t| provider.advertised_location(t))
        .collect();
    let errors_km = |points: &[Option<octant_geo::GeoPoint>]| -> Vec<f64> {
        points
            .iter()
            .zip(&truths)
            .filter_map(|(p, t)| match (p, t) {
                (Some(p), Some(t)) => Some(octant_geo::distance::great_circle_km(*p, *t)),
                _ => None,
            })
            .collect()
    };
    let base_err = quantiles(&errors_km(&base_points));
    let fast_err = quantiles(&errors_km(&fast_points));
    assert!(
        fast_err.0 <= base_err.0 * 1.10 + 5.0,
        "default dilation step degraded the median error: {:.1} km vs exact {:.1} km",
        fast_err.0,
        base_err.0
    );

    let n = campaign.targets.len();
    let base_ms = base_elapsed.as_secs_f64() * 1e3 / n as f64;
    let fast_ms = fast_elapsed.as_secs_f64() * 1e3 / n as f64;
    println!(
        "# recursive batch (uncached) : {base_elapsed:>10.1?}  ({:.1} targets/s, {base_ms:.1} ms/target)",
        n as f64 / base_elapsed.as_secs_f64()
    );
    println!(
        "# service (exact, step 0)    : {serve_elapsed:>10.1?}  ({:.1} targets/s)",
        n as f64 / serve_elapsed.as_secs_f64()
    );
    println!(
        "# service (default config)   : {fast_elapsed:>10.1?}  ({:.1} targets/s, {fast_ms:.1} ms/target)",
        n as f64 / fast_elapsed.as_secs_f64()
    );
    println!(
        "# recursive speedup          : {:.2}x vs uncached batch (default-config shift: median {:.3} km, p90 {:.3} km, max {:.3} km)",
        base_elapsed.as_secs_f64() / fast_elapsed.as_secs_f64(),
        default_step_shift.0,
        default_step_shift.1,
        default_step_shift.2,
    );
    println!(
        "# accuracy vs ground truth   : median error {:.1} km (exact {:.1}), p90 {:.1} km (exact {:.1})",
        fast_err.0, base_err.0, fast_err.1, base_err.1
    );
    println!(
        "# router cache               : {} sub-localizations, {} hits, {:.1}% hit rate, {} micro-batches, {} fresh dilations",
        stats.cache.misses,
        stats.cache.hits,
        stats.cache.hit_rate() * 100.0,
        stats.counters.batches,
        fast_stats.cache.dilation_misses,
    );

    // ---- Stage 1b: dilation radius-class accuracy envelope ----------------
    // Re-solve the campaign through the router-cache seam at several class
    // widths: the characterization behind the 25 km default. Rounding
    // residual radii up only loosens positive constraints (soundness is
    // structural); these rows quantify how far the point estimates move vs
    // the exact step-0 solve and — the criterion that matters — how the
    // error against ground truth responds.
    let octant = Octant::new(octant_config);
    let model = octant.prepare_landmarks(&provider, &campaign.landmarks);
    let steps: &[f64] = if smoke {
        &[10.0, 25.0, 50.0]
    } else {
        &[12.5, 25.0, 50.0, 100.0]
    };
    let mut step_metrics: Vec<(String, f64)> = Vec::new();
    for &step in steps {
        let cache =
            RouterCache::new(RouterCacheConfig::default().with_dilation_radius_step_km(step));
        let source = cache.source(1);
        let run =
            batch.localize_batch_with_routers(&provider, &model, &campaign.targets, Some(&source));
        let run_points: Vec<_> = run.iter().map(|r| r.point).collect();
        let (median, p90, max) = quantiles(&point_shifts_km(&base_points, &run_points));
        let err = quantiles(&errors_km(&run_points));
        println!(
            "# dilation step {step:>5.1} km     : median shift {median:.3} km, p90 {p90:.3} km, max {max:.3} km | median error {:.1} km (exact {:.1}), p90 {:.1} km (exact {:.1}) | {} fresh dilations",
            err.0, base_err.0, err.1, base_err.1,
            cache.fresh_dilations()
        );
        let tag = if step.fract() == 0.0 {
            format!("{}", step as u64)
        } else {
            format!("{step}").replace('.', "p")
        };
        step_metrics.push((format!("dilation_step{tag}_median_shift_km"), median));
        step_metrics.push((format!("dilation_step{tag}_p90_shift_km"), p90));
        step_metrics.push((format!("dilation_step{tag}_max_shift_km"), max));
        step_metrics.push((format!("dilation_step{tag}_median_error_km"), err.0));
        step_metrics.push((format!("dilation_step{tag}_p90_error_km"), err.1));
    }

    // ---- Stage 2: Zipf sustained traffic, one shard vs a sharded plane -----
    println!(
        "# zipf stream: {stream_len} targets (zipf s=1.0 over {n} hosts), requests of {REQUEST_SIZE}, window {WINDOW}"
    );
    let one = run_zipf_stream(
        &provider,
        &campaign.landmarks,
        &campaign.targets,
        1,
        stream_len,
        42,
        false,
    );
    let shards = 4;
    let multi = run_zipf_stream(
        &provider,
        &campaign.landmarks,
        &campaign.targets,
        shards,
        stream_len,
        42,
        false,
    );
    for (label, r) in [("1 shard ", &one), ("4 shards", &multi)] {
        println!(
            "# {label} : {:>8.2?}  {:>9.1} targets/s  p50 {:?}  p99 {:?}  p999 {:?}  shed {}",
            r.elapsed,
            stream_len as f64 / r.elapsed.as_secs_f64(),
            r.stats.latency.p50,
            r.stats.latency.p99,
            r.stats.latency.p999,
            r.stats.counters.shed(),
        );
    }
    println!(
        "# shard scaling              : {:.2}x (expect ~1x on a single core, >=2x on >=4 cores)",
        one.elapsed.as_secs_f64() / multi.elapsed.as_secs_f64()
    );
    assert_eq!(
        multi.stats.counters.targets_served + multi.stats.counters.shed(),
        stream_len,
        "every streamed target must resolve"
    );

    // ---- Stage 3: profiled rerun (stage breakdown + telemetry overhead) ----
    let profiled = run_zipf_stream(
        &provider,
        &campaign.landmarks,
        &campaign.targets,
        shards,
        stream_len,
        42,
        true,
    );
    assert_eq!(
        profiled.stats.counters.targets_served + profiled.stats.counters.shed(),
        stream_len,
        "every profiled target must resolve"
    );
    let overhead_pct = (profiled.elapsed.as_secs_f64() - multi.elapsed.as_secs_f64())
        / multi.elapsed.as_secs_f64()
        * 100.0;
    assert!(
        overhead_pct.is_finite(),
        "telemetry overhead must be measurable"
    );
    println!(
        "# profiled rerun             : {:>8.2?}  ({overhead_pct:+.1}% vs unprofiled)",
        profiled.elapsed
    );
    println!("{}", profiled.report);

    let mut metrics: Vec<(String, f64)> = vec![
        ("recursive_baseline_ms_per_target".into(), base_ms),
        ("recursive_ms_per_target".into(), fast_ms),
        (
            "recursive_speedup".into(),
            base_elapsed.as_secs_f64() / fast_elapsed.as_secs_f64(),
        ),
        (
            "dilation_default_median_shift_km".into(),
            default_step_shift.0,
        ),
        ("dilation_default_p90_shift_km".into(), default_step_shift.1),
        ("recursive_median_error_km".into(), fast_err.0),
        ("recursive_exact_median_error_km".into(), base_err.0),
    ];
    metrics.extend(step_metrics);

    let summary = BenchSummary {
        bench: "service".into(),
        scenario: if smoke { "smoke".into() } else { "full".into() },
        landmarks: campaign.landmarks.len(),
        targets: stream_len as usize,
        elapsed_s: multi.elapsed.as_secs_f64(),
        baseline_elapsed_s: Some(one.elapsed.as_secs_f64()),
        cache_hits: Some(stats.cache.hits),
        cache_misses: Some(stats.cache.misses),
        metrics,
        shards: Some(shards),
        requests: Some(stream_len),
        shed: Some(multi.stats.counters.shed()),
        shed_rate: Some(multi.stats.shed_rate()),
        latency_p50_ms: Some(multi.stats.latency.p50.as_secs_f64() * 1e3),
        latency_p99_ms: Some(multi.stats.latency.p99.as_secs_f64() * 1e3),
        latency_p999_ms: Some(multi.stats.latency.p999.as_secs_f64() * 1e3),
        stage_breakdown: profiled
            .report
            .stage_breakdown
            .iter()
            .map(StageRow::from_service)
            .collect(),
        telemetry_overhead_pct: Some(overhead_pct),
    };
    if let Some(path) = json_path {
        summary
            .write_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# wrote {}", path.display());
    }
}

struct StreamResult {
    elapsed: Duration,
    stats: octant_service::ServiceStats,
    report: octant_service::StatsReport,
}

/// Per-target geodesic shift (km) between two point-estimate vectors.
/// Presence must agree — a target resolving under one configuration but not
/// the other would mean the class rounding changed solvability, which the
/// soundness argument (rounding up only loosens constraints) rules out.
fn point_shifts_km(
    base: &[Option<octant_geo::GeoPoint>],
    run: &[Option<octant_geo::GeoPoint>],
) -> Vec<f64> {
    assert_eq!(base.len(), run.len());
    base.iter()
        .zip(run)
        .map(|(b, r)| match (b, r) {
            (Some(b), Some(r)) => octant_geo::distance::great_circle_km(*b, *r),
            (None, None) => 0.0,
            _ => panic!("point-estimate presence diverged between dilation steps"),
        })
        .collect()
}

/// `(median, p90, max)` of a shift vector (0s for an empty one).
fn quantiles(shifts: &[f64]) -> (f64, f64, f64) {
    if shifts.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut sorted = shifts.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("shifts are finite"));
    let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    (at(0.5), at(0.9), sorted[sorted.len() - 1])
}

/// Pushes a seeded Zipf request stream of `stream_len` targets through a
/// fresh service with `shards` data-plane shards and a generous (but
/// bounded) per-shard queue, using a sliding in-flight window for client
/// backpressure. The solve configuration is the cheap minimal pipeline —
/// this stage measures the serving tier, not the solver. With `profiled`,
/// every request opts into per-target stage capture
/// (`LocalizeOptions::with_profiling()`).
#[allow(clippy::too_many_arguments)]
fn run_zipf_stream(
    provider: &std::sync::Arc<MeasurementDataset>,
    landmarks: &[NodeId],
    targets: &[NodeId],
    shards: usize,
    stream_len: u64,
    seed: u64,
    profiled: bool,
) -> StreamResult {
    let service = GeolocationService::start(
        ServiceConfig::default()
            .with_octant(OctantConfig::minimal())
            .with_shard(
                ShardConfig::default()
                    .with_count(shards)
                    .with_queue_capacity(4096),
            ),
        provider.clone(),
        landmarks,
    );
    let zipf = ZipfSampler::new(targets.len(), 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut window: VecDeque<RequestHandle> = VecDeque::with_capacity(WINDOW);
    let start = Instant::now();
    let mut sent: u64 = 0;
    while sent < stream_len {
        let take = REQUEST_SIZE.min((stream_len - sent) as usize);
        let request: Vec<NodeId> = (0..take).map(|_| targets[zipf.sample(&mut rng)]).collect();
        sent += take as u64;
        let handle = if profiled {
            service.submit_with_options(&request, LocalizeOptions::default().with_profiling())
        } else {
            service.submit(&request)
        };
        window.push_back(handle);
        if window.len() >= WINDOW {
            // Client-side backpressure: wait out the oldest in-flight
            // request before submitting more.
            let _ = window
                .pop_front()
                .expect("window is non-empty")
                .wait_outcomes();
        }
    }
    for handle in window {
        let _ = handle.wait_outcomes();
    }
    let elapsed = start.elapsed();
    let stats = service.stats();
    let report = service.stats_report();
    service.shutdown();
    StreamResult {
        elapsed,
        stats,
        report,
    }
}
