//! Streaming-ingest campaign binary: the write-path axis.
//!
//! Where the `batch` and `service` binaries measure a *frozen* capture, this
//! one measures the serving tier over a **churning**
//! `octant_netsim::ObservationStore`: rounds of landmark re-probes are
//! ingested while a Zipf lookup stream runs against the shared store, and
//! each round ends with a model refresh that is timed **both ways** —
//! a from-scratch `Octant::prepare_landmarks` and the delta
//! `Octant::prepare_landmarks_incremental` fed by
//! `ObservationStore::changed_since`. The incremental model is what gets
//! registered (after a first-round bit-identity spot check against the full
//! one), so the campaign also exercises epoch invalidation of the service's
//! per-target-prefix answer memo.
//!
//! Each round has four phases:
//!
//! 1. **churn** — K landmarks re-probe their peers; the fresh observations
//!    are ingested at a bumped `seq` (K/L stays well below 25%, the regime
//!    the incremental path is built for);
//! 2. **stale lookups** — a Zipf request stream served from the *previous*
//!    model (the staleness the artifact quantifies);
//! 3. **refresh** — both prepares timed, the incremental one registered
//!    (`ShardedService::register_model`, bumping the epoch and retiring
//!    stale answer-memo entries);
//! 4. **fresh lookups** — the same stream shape on the new epoch; repeat
//!    targets hit the answer memo.
//!
//! The `BENCH_ingest.json` artifact carries the staleness-vs-refresh-cost
//! tradeoff (`staleness_ms_median` against `refresh_incremental_ms_median` /
//! `refresh_full_ms_median`: refreshing more often shrinks the former at the
//! price of the latter) and the answer-memo counters
//! (`answer_cache_hit_rate` is asserted > 0 — Zipf repeats must hit).
//!
//! Run with `cargo run --release -p octant-bench --bin ingest`. Flags:
//! * `--smoke` — reduced problem size (CI's bench-smoke job).
//! * `--json <path>` — additionally write the machine-readable
//!   `BENCH_*.json` summary.

use octant::{BatchGeolocator, LandmarkModel, Octant, OctantConfig};
use octant_bench::{json_path_from_args, service_campaign, OpsBenchSummary, ZipfSampler};
use octant_netsim::observation::PingObservation;
use octant_netsim::topology::NodeId;
use octant_netsim::{ObservationProvider, ObservationRecord, ObservationStore, StoreConfig};
use octant_service::{RequestHandle, ServiceConfig, ShardedService};
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Targets per submitted request — the small-request shape real traffic has.
const REQUEST_SIZE: usize = 4;
/// In-flight request window: the client-side backpressure bound.
const WINDOW: usize = 32;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = json_path_from_args(&args);

    let (landmark_count, target_sites, per_site) = if smoke { (16, 3, 4) } else { (32, 4, 8) };
    let rounds: usize = if smoke { 4 } else { 12 };
    let lookups_per_phase: u64 = if smoke { 400 } else { 4_000 };

    let campaign = service_campaign(landmark_count, target_sites, per_site, 42);
    let landmarks = campaign.landmarks.clone();
    // An eighth of the landmarks (floored, min 1) re-probe each round:
    // squarely inside the < 25%-changed regime the incremental
    // recalibration targets.
    let churners = (landmarks.len() / 8).max(1);

    let store = Arc::new(ObservationStore::from_dataset(
        StoreConfig::default(),
        &campaign.dataset,
    ));
    let config = OctantConfig::default();
    let octant = Octant::new(config);
    let service = ShardedService::start(
        ServiceConfig::default().with_octant(config).with_shards(2),
        store.clone(),
        &landmarks,
    );
    println!(
        "# ingest bench: {} landmarks ({churners} churn per round), {} targets, {rounds} rounds, {lookups_per_phase} lookups per phase",
        landmarks.len(),
        campaign.targets.len(),
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut previous: LandmarkModel = octant.prepare_landmarks(&store, &landmarks);
    let mut last_refresh_version = store.version();
    let mut ingest_records: u64 = 0;
    let mut ingest_elapsed = Duration::ZERO;
    let mut lookup_elapsed = Duration::ZERO;
    let mut full_ms: Vec<f64> = Vec::with_capacity(rounds);
    let mut incremental_ms: Vec<f64> = Vec::with_capacity(rounds);
    let mut staleness_ms: Vec<f64> = Vec::with_capacity(rounds);
    let mut refreshed_pairs: usize = 0;
    let mut reused_pairs: usize = 0;

    for round in 0..rounds {
        // ---- Phase 1: churn ------------------------------------------------
        let churn: Vec<NodeId> = (0..churners)
            .map(|k| landmarks[(round * churners + k) % landmarks.len()])
            .collect();
        let mut updates = Vec::new();
        for &lm in &churn {
            for &other in &landmarks {
                if other == lm {
                    continue;
                }
                if let Some(min) = store.ping(lm, other).min() {
                    // A fresh probe run lands near — but not exactly on —
                    // the previous floor.
                    let jitter = 0.95 + 0.1 * rng.gen::<f64>();
                    updates.push(ObservationRecord::Ping {
                        from: lm,
                        to: other,
                        observation: PingObservation::new(vec![
                            octant_geo::units::Latency::from_ms(min.ms() * jitter),
                        ]),
                        seq: round as u64 + 1,
                    });
                }
            }
        }
        ingest_records += updates.len() as u64;
        let ingest_start = Instant::now();
        store.ingest(updates);
        ingest_elapsed += ingest_start.elapsed();
        let stale_since = Instant::now();

        // ---- Phase 2: stale lookups ---------------------------------------
        lookup_elapsed += run_lookups(&service, &campaign.targets, lookups_per_phase, &mut rng);

        // ---- Phase 3: refresh (full timed, incremental timed + registered) -
        let full_start = Instant::now();
        let full = octant.prepare_landmarks(&store, &landmarks);
        full_ms.push(full_start.elapsed().as_secs_f64() * 1e3);

        let changed = store.changed_since(last_refresh_version);
        let inc_start = Instant::now();
        let (incremental, report) =
            octant.prepare_landmarks_incremental(&store, &landmarks, &previous, &changed);
        incremental_ms.push(inc_start.elapsed().as_secs_f64() * 1e3);
        last_refresh_version = store.version();

        assert!(!report.full_rebuild, "steady churn never forces a rebuild");
        let total_pairs = previous.landmark_count() * (previous.landmark_count() - 1);
        assert_eq!(report.refreshed_pairs + report.reused_pairs, total_pairs);
        assert!(
            report.refreshed_pairs <= total_pairs / 2,
            "churning {churners}/{} landmarks must re-measure at most half the pairs",
            landmarks.len(),
        );
        refreshed_pairs += report.refreshed_pairs;
        reused_pairs += report.reused_pairs;
        if round == 0 {
            // Bit-identity spot check: the delta model must answer exactly
            // like the from-scratch one (pinned in depth by
            // tests/ingest_parity.rs; re-asserted here on live churn).
            let geo = BatchGeolocator::new(config);
            let probe = &campaign.targets[..campaign.targets.len().min(4)];
            let a = geo.localize_batch_with_model(&store, &full, probe);
            let b = geo.localize_batch_with_model(&store, &incremental, probe);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.point, y.point, "incremental model diverged");
                assert_eq!(x.report, y.report, "incremental model diverged");
            }
        }
        service.register_model(incremental.clone(), landmarks.clone());
        staleness_ms.push(stale_since.elapsed().as_secs_f64() * 1e3);
        previous = incremental;

        // ---- Phase 4: fresh lookups ---------------------------------------
        lookup_elapsed += run_lookups(&service, &campaign.targets, lookups_per_phase, &mut rng);
    }

    let stats = service.stats();
    let answers = service.answer_cache_stats();
    let store_stats = store.stats();
    let lookups_total = rounds as u64 * 2 * lookups_per_phase;
    assert_eq!(stats.counters.targets_served, lookups_total);
    assert!(
        answers.hits > 0,
        "Zipf repeats within an epoch must hit the answer memo"
    );

    let full_med = median(&mut full_ms);
    let inc_med = median(&mut incremental_ms);
    let stale_med = median(&mut staleness_ms);
    println!(
        "# ingest                     : {ingest_records} records in {ingest_elapsed:.1?} ({:.0} records/s), {} merges",
        ingest_records as f64 / ingest_elapsed.as_secs_f64(),
        store_stats.merges,
    );
    println!(
        "# lookups                    : {lookups_total} targets in {lookup_elapsed:.1?} ({:.1} targets/s), p50 {:?} p99 {:?}",
        lookups_total as f64 / lookup_elapsed.as_secs_f64(),
        stats.latency.p50,
        stats.latency.p99,
    );
    println!(
        "# refresh (median)           : full {full_med:.3} ms, incremental {inc_med:.3} ms ({:.2}x), {refreshed_pairs} pairs re-measured / {reused_pairs} reused",
        full_med / inc_med,
    );
    println!("# staleness (median)         : {stale_med:.3} ms on the old epoch per round");
    println!(
        "# answer memo                : {} hits / {} misses ({:.1}% hit rate), {} insertions, {} evictions",
        answers.hits,
        answers.misses,
        answers.hit_rate() * 100.0,
        answers.insertions,
        answers.evictions,
    );
    service.shutdown();

    let mut summary = OpsBenchSummary {
        bench: "ingest".into(),
        scenario: if smoke { "smoke".into() } else { "full".into() },
        ..OpsBenchSummary::default()
    };
    summary.push("rounds", rounds as f64);
    summary.push("landmarks", landmarks.len() as f64);
    summary.push("churned_per_round", churners as f64);
    summary.push("churned_fraction", churners as f64 / landmarks.len() as f64);
    summary.push("ingest_records", ingest_records as f64);
    summary.push(
        "ingest_records_per_sec",
        ingest_records as f64 / ingest_elapsed.as_secs_f64(),
    );
    summary.push("store_merges", store_stats.merges as f64);
    summary.push("lookups", lookups_total as f64);
    summary.push(
        "lookup_targets_per_sec",
        lookups_total as f64 / lookup_elapsed.as_secs_f64(),
    );
    summary.push(
        "lookup_latency_p50_ms",
        stats.latency.p50.as_secs_f64() * 1e3,
    );
    summary.push(
        "lookup_latency_p99_ms",
        stats.latency.p99.as_secs_f64() * 1e3,
    );
    summary.push("refresh_full_ms_median", full_med);
    summary.push("refresh_incremental_ms_median", inc_med);
    summary.push("refresh_speedup", full_med / inc_med);
    summary.push(
        "refreshed_pair_fraction",
        refreshed_pairs as f64 / (refreshed_pairs + reused_pairs) as f64,
    );
    summary.push("staleness_ms_median", stale_med);
    summary.push("answer_cache_hits", answers.hits as f64);
    summary.push("answer_cache_misses", answers.misses as f64);
    summary.push("answer_cache_insertions", answers.insertions as f64);
    summary.push("answer_cache_evictions", answers.evictions as f64);
    summary.push("answer_cache_hit_rate", answers.hit_rate());
    if let Some(path) = json_path {
        summary
            .write_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# wrote {}", path.display());
    }
}

/// Pushes one Zipf lookup phase through the service with a sliding
/// in-flight window and returns its wall time.
fn run_lookups(
    service: &ShardedService<Arc<ObservationStore>>,
    targets: &[NodeId],
    lookups: u64,
    rng: &mut rand::rngs::StdRng,
) -> Duration {
    let zipf = ZipfSampler::new(targets.len(), 1.0);
    let mut window: VecDeque<RequestHandle> = VecDeque::with_capacity(WINDOW);
    let start = Instant::now();
    let mut sent: u64 = 0;
    while sent < lookups {
        let take = REQUEST_SIZE.min((lookups - sent) as usize);
        let request: Vec<NodeId> = (0..take).map(|_| targets[zipf.sample(rng)]).collect();
        sent += take as u64;
        window.push_back(service.submit(&request));
        if window.len() >= WINDOW {
            let _ = window
                .pop_front()
                .expect("window is non-empty")
                .wait_outcomes();
        }
    }
    for handle in window {
        let _ = handle.wait_outcomes();
    }
    start.elapsed()
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values[values.len() / 2]
}
