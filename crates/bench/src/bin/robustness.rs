//! Accuracy-under-degradation matrix: the robustness harness for the
//! hostile-network scenario engine (`octant_netsim::scenario`).
//!
//! Two phases:
//!
//! 1. **Matrix** — the leave-one-out evaluation runs over a scenario ×
//!    evidence-source-mix grid: each scenario wraps the same frozen campaign
//!    capture in a [`ScenarioProvider`] (probe loss ladders, a diurnal
//!    congestion snapshot, latency/DNS-spoofing adversaries), each mix is a
//!    configuration-only pipeline change. Per cell: median/p90 error, region
//!    hit rate, unknown rate. The clean cell is byte-identical to the
//!    `pipeline` bench's default mix (same campaign recipe, same seed), and
//!    the harness asserts the loss/spoof ladders degrade monotonically.
//!
//! 2. **Churn** — landmark failure windows take two landmarks dark
//!    mid-serve; fresh (empty) probes flow through an [`ObservationStore`],
//!    `changed_since` names the churned landmarks, and
//!    `ShardedService::refresh_model_incremental` swaps the epoch while a
//!    submitted wave is in flight. The harness asserts zero failed batches,
//!    zero shed targets, and a roster-change full rebuild, and reports
//!    before/after accuracy plus refresh cost.
//!
//! Usage: `robustness [--smoke] [--json BENCH_robustness.json]`
//!
//! The JSON summary is an [`octant_bench::OpsBenchSummary`]:
//! `cell_<scenario>_<mix>_{median_mi,p90_mi,hit_rate,unknown_rate}` per
//! cell, `scenario_count` / `mix_count`, spoofed-target medians for the
//! spoof ladder, and `churn_*` / `refresh_*` metrics from phase 2.

use octant::{ErrorCdf, EvidencePipeline, Octant, OctantConfig, SourceId};
use octant_bench::{pipeline_campaign, run_technique_on, Campaign, OpsBenchSummary};
use octant_geo::distance::great_circle_km;
use octant_geo::units::Distance;
use octant_netsim::scenario::{ScenarioConfig, ScenarioProvider};
use octant_netsim::{
    MeasurementDataset, NodeId, ObservationProvider, ObservationRecord, ObservationStore,
    StoreConfig,
};
use octant_service::{ServeOutcome, ServedEstimate, ServiceConfig, ShardedService};
use std::sync::Arc;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    config: ScenarioConfig,
    /// Scenario time the whole evaluation runs at.
    tick: u64,
}

/// Every 4th host is adversarial: it inflates RTTs towards itself by
/// `extra_ms` and claims a wrong (but parseable) city in reverse DNS.
fn spoofed_hosts(hosts: &[NodeId]) -> Vec<NodeId> {
    hosts.iter().copied().step_by(4).collect()
}

fn spoof_config(hosts: &[NodeId], extra_ms: f64) -> ScenarioConfig {
    let cities = ["lhr", "nrt", "syd", "fra"];
    let mut cfg = ScenarioConfig::default().with_seed(42);
    for (k, &h) in hosts.iter().step_by(4).enumerate() {
        cfg = cfg
            .with_rtt_spoof(h, extra_ms)
            .with_dns_spoof(h, cities[k % cities.len()]);
    }
    cfg
}

fn scenarios(hosts: &[NodeId]) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "clean",
            config: ScenarioConfig::default(),
            tick: 0,
        },
        Scenario {
            name: "loss10",
            config: ScenarioConfig::default()
                .with_seed(42)
                .with_probe_loss(0.10),
            tick: 0,
        },
        Scenario {
            name: "loss30",
            config: ScenarioConfig::default()
                .with_seed(42)
                .with_probe_loss(0.30),
            tick: 0,
        },
        Scenario {
            name: "congested",
            // A mid-cycle snapshot: per-pair phases put different links at
            // different points of a 40 ms diurnal swell.
            config: ScenarioConfig::default()
                .with_seed(42)
                .with_diurnal(40.0, 24),
            tick: 12,
        },
        Scenario {
            name: "spoof15",
            config: spoof_config(hosts, 15.0),
            tick: 0,
        },
        Scenario {
            name: "spoof35",
            config: spoof_config(hosts, 35.0),
            tick: 0,
        },
    ]
}

struct Mix {
    name: &'static str,
    octant: Octant,
}

fn mixes() -> Vec<Mix> {
    let default_cfg = OctantConfig::default();
    vec![
        Mix {
            name: "default",
            octant: Octant::new(default_cfg),
        },
        Mix {
            name: "latency_only",
            octant: Octant::with_pipeline(
                default_cfg,
                EvidencePipeline::standard().adjusted(
                    &[SourceId::Router, SourceId::Hint, SourceId::Geography],
                    &[],
                ),
            ),
        },
        Mix {
            name: "no_router",
            octant: Octant::with_pipeline(
                default_cfg,
                EvidencePipeline::standard().adjusted(&[SourceId::Router], &[]),
            ),
        },
    ]
}

fn median_error_mi(ds: &MeasurementDataset, served: &[ServedEstimate]) -> f64 {
    let errors: Vec<Distance> = served
        .iter()
        .filter_map(|s| {
            let truth = ds.true_location(s.target)?;
            let point = s.estimate.point?;
            Some(Distance::from_km(great_circle_km(point, truth)))
        })
        .collect();
    ErrorCdf::from_errors(&errors).median().unwrap_or(f64::NAN)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = octant_bench::json_path_from_args(&args);
    let sites = if smoke { 12 } else { 24 };

    println!("# robustness bench: {sites}-site accuracy under hostile-network scenarios");
    let Campaign { dataset, hosts } = pipeline_campaign(sites, 42);
    let ds = dataset.into_shared();

    let mut summary = OpsBenchSummary {
        bench: "robustness".to_string(),
        scenario: if smoke { "smoke" } else { "full" }.to_string(),
        ..OpsBenchSummary::default()
    };

    // ---- Phase 1: scenario × mix accuracy matrix ---------------------------
    let all_scenarios = scenarios(&hosts);
    let all_mixes = mixes();
    assert!(
        all_scenarios.len() >= 2 && all_mixes.len() >= 2,
        "the matrix must cover at least 2 scenarios x 2 mixes"
    );
    summary.push("scenario_count", all_scenarios.len() as f64);
    summary.push("mix_count", all_mixes.len() as f64);

    let spoofed = spoofed_hosts(&hosts);
    let mut cells: Vec<(String, f64)> = Vec::new();
    println!(
        "{:<12} {:<14} {:>11} {:>9} {:>9} {:>9} {:>12}",
        "scenario", "mix", "median (mi)", "p90 (mi)", "hit rate", "unknown", "area (mi^2)"
    );
    for sc in &all_scenarios {
        let provider = ScenarioProvider::new(ds.clone(), sc.config.clone());
        provider.set_tick(sc.tick);
        // The evidence-level degradation indicator: the mean pairwise
        // minimum RTT. Probe loss inflates it (minima over nested sample
        // subsets only rise), spoofing and congestion add delay outright —
        // so this is monotone in the knobs by construction, independent of
        // how the solver responds.
        let mut rtt_sum = 0.0;
        let mut rtt_n = 0usize;
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                if let Some(min) = provider.ping(a, b).min() {
                    rtt_sum += min.ms();
                    rtt_n += 1;
                }
            }
        }
        let mean_min_rtt = rtt_sum / rtt_n.max(1) as f64;
        summary.push(
            format!("scenario_{}_mean_min_rtt_ms", sc.name),
            mean_min_rtt,
        );
        cells.push((format!("{}_rtt", sc.name), mean_min_rtt));
        for mix in &all_mixes {
            let result = run_technique_on(&provider, &hosts, &mix.octant);
            let median = result.median_miles();
            let p90 = result.cdf.percentile(0.9).unwrap_or(f64::NAN);
            let mean_area = {
                let areas: Vec<f64> = result
                    .outcomes
                    .iter()
                    .filter_map(|o| o.region_area_mi2)
                    .collect();
                if areas.is_empty() {
                    f64::NAN
                } else {
                    areas.iter().sum::<f64>() / areas.len() as f64
                }
            };
            println!(
                "{:<12} {:<14} {:>11.1} {:>9.1} {:>8.0}% {:>8.0}% {:>12.0}",
                sc.name,
                mix.name,
                median,
                p90,
                result.hit_rate() * 100.0,
                result.unknown_rate() * 100.0,
                mean_area
            );
            let cell = format!("{}_{}", sc.name, mix.name);
            summary.push(format!("cell_{cell}_median_mi"), median);
            summary.push(format!("cell_{cell}_p90_mi"), p90);
            summary.push(format!("cell_{cell}_hit_rate"), result.hit_rate());
            summary.push(format!("cell_{cell}_unknown_rate"), result.unknown_rate());
            summary.push(format!("cell_{cell}_mean_area_mi2"), mean_area);
            cells.push((format!("{cell}_median"), median));
            cells.push((format!("{cell}_unknown"), result.unknown_rate()));
            cells.push((format!("{cell}_area"), mean_area));
            // The spoof ladder is judged on the adversarial targets alone —
            // honest targets dilute the signal.
            if sc.name.starts_with("spoof") || sc.name == "clean" {
                let errors: Vec<Distance> = result
                    .outcomes
                    .iter()
                    .filter(|o| spoofed.contains(&o.target))
                    .filter_map(|o| o.error)
                    .collect();
                let spoofed_median = ErrorCdf::from_errors(&errors).median().unwrap_or(f64::NAN);
                summary.push(format!("cell_{cell}_spoofed_median_mi"), spoofed_median);
                cells.push((format!("{cell}_spoofed_median"), spoofed_median));
            }
        }
    }
    let cell = |key: &str| -> f64 {
        cells
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing cell {key}"))
            .1
    };

    // Monotone degradation pins. Everything here is deterministic (seeded),
    // so these are regression pins, not flaky statistical checks.
    //
    // (1) Evidence level — guaranteed by construction: loss sets nest across
    // rates (a probe dropped at 10% is also dropped at 30%), so pairwise
    // minimum RTTs only inflate as the rate rises; spoofing and congestion
    // add delay outright.
    assert!(
        cell("loss10_rtt") >= cell("clean_rtt"),
        "nested loss can only inflate minimum RTTs"
    );
    assert!(
        cell("loss30_rtt") >= cell("loss10_rtt"),
        "more loss can only inflate minimum RTTs further"
    );
    assert!(
        cell("congested_rtt") > cell("clean_rtt"),
        "congestion adds queueing delay"
    );
    assert!(
        cell("spoof15_rtt") > cell("clean_rtt") && cell("spoof35_rtt") > cell("spoof15_rtt"),
        "the spoof ladder inflates RTTs strictly"
    );
    // (2) Solver level — centroid medians and region areas are NOT monotone
    // in the knobs at this scale (height recalibration absorbs part of the
    // inflation, and looser constraints sometimes pull centroids closer), so
    // these are regression pins on cells that degrade clearly at both the
    // smoke (12-site) and full (24-site) scale, not general laws.
    assert!(
        cell("congested_default_median") > cell("clean_default_median"),
        "sustained congestion degrades median accuracy"
    );
    assert!(
        cell("spoof35_default_area") > cell("clean_default_area"),
        "heavy RTT spoofing bloats estimate regions"
    );
    assert!(
        cell("loss30_default_unknown") >= cell("clean_default_unknown"),
        "nested loss must not shrink the unknown rate"
    );

    // Figure-style report: default-mix median error by scenario.
    println!("\n# robustness figure: default-mix median error (mi) by scenario");
    let max_median = all_scenarios
        .iter()
        .map(|sc| cell(&format!("{}_default_median", sc.name)))
        .fold(1e-9, f64::max);
    for sc in &all_scenarios {
        let m = cell(&format!("{}_default_median", sc.name));
        let bar = "#".repeat(((m / max_median) * 40.0).round().max(1.0) as usize);
        println!("{:<12} |{bar} {m:.1}", sc.name);
    }

    // ---- Phase 2: epoch refresh under landmark churn -----------------------
    // Two landmarks go dark at tick 1; a store-driven re-probe cycle detects
    // the change; the service delta-recalibrates while a wave is in flight.
    let lcount = (2 * hosts.len()) / 3;
    let (landmarks, targets) = hosts.split_at(lcount);
    let churn_cfg = ScenarioConfig::default()
        .with_failure(landmarks[0], 1, u64::MAX)
        .with_failure(landmarks[1], 1, u64::MAX);
    let provider = Arc::new(ScenarioProvider::new(ds.clone(), churn_cfg));
    let service = ShardedService::start(
        ServiceConfig::default().with_shards(2),
        provider.clone(),
        landmarks,
    );
    let store = ObservationStore::from_dataset(StoreConfig::default(), ds.as_ref());

    let wave1 = service.localize_blocking(targets);
    let wave1_median = median_error_mi(ds.as_ref(), &wave1);

    // A quiet delta refresh first: one alive landmark re-probes its peers,
    // values unchanged (replay-stable world) — the store still names it
    // changed, and the incremental path refreshes only its pairs.
    let refresher = landmarks[2];
    let v0 = store.version();
    store.ingest(landmarks.iter().map(|&lm| ObservationRecord::Ping {
        from: refresher,
        to: lm,
        observation: provider.ping(refresher, lm),
        seq: 1,
    }));
    let changed = store.changed_since(v0);
    assert_eq!(changed, vec![refresher]);
    let t = Instant::now();
    let (epoch, delta_report) = service.refresh_model_incremental(landmarks, &changed);
    let delta_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(epoch, 2);
    assert!(
        !delta_report.full_rebuild,
        "one re-probed landmark is a delta"
    );
    assert!(delta_report.reused_pairs > 0);
    summary.push("refresh_delta_ms", delta_ms);
    summary.push(
        "refresh_delta_refreshed_pairs",
        delta_report.refreshed_pairs as f64,
    );
    summary.push(
        "refresh_delta_reused_pairs",
        delta_report.reused_pairs as f64,
    );

    // Churn: the failure windows open, the dark landmarks' probes come back
    // empty, and the refresh runs while a submitted wave is in flight.
    provider.set_tick(1);
    let dark = &landmarks[..2];
    let v1 = store.version();
    let dark_records: Vec<ObservationRecord> = dark
        .iter()
        .flat_map(|&d| landmarks.iter().map(move |&lm| (d, lm)))
        .map(|(d, lm)| ObservationRecord::Ping {
            from: d,
            to: lm,
            observation: provider.ping(d, lm),
            seq: 2,
        })
        .collect();
    store.ingest(dark_records);
    let changed = store.changed_since(v1);
    assert_eq!(
        changed,
        dark.to_vec(),
        "the store must name the dark landmarks"
    );

    let handle = service.submit(targets);
    let t = Instant::now();
    let (epoch, churn_report) = service.refresh_model_incremental(landmarks, &changed);
    let churn_ms = t.elapsed().as_secs_f64() * 1e3;
    let outcomes = handle.wait_outcomes();
    assert_eq!(epoch, 3);
    assert!(
        churn_report.full_rebuild,
        "a landmark vanishing from the roster forces a full rebuild"
    );
    let served_in_flight = outcomes
        .iter()
        .filter(|o| matches!(o, ServeOutcome::Served(_)))
        .count();
    assert_eq!(
        served_in_flight,
        targets.len(),
        "every in-flight request must be served across the epoch swap"
    );
    let stats = service.stats();
    assert_eq!(stats.counters.failed_batches, 0, "zero failed batches");
    assert_eq!(stats.counters.shed(), 0, "zero shed targets");

    let wave3 = service.localize_blocking(targets);
    let wave3_median = median_error_mi(ds.as_ref(), &wave3);
    assert!(wave3.iter().all(|s| s.epoch == 3));

    println!(
        "\n# churn: epoch refresh under fire ({} landmarks, {} dark)",
        landmarks.len(),
        dark.len()
    );
    println!(
        "  delta refresh: {delta_ms:.1} ms ({} refreshed / {} reused pairs)",
        delta_report.refreshed_pairs, delta_report.reused_pairs
    );
    println!(
        "  churn refresh: {churn_ms:.1} ms (full rebuild, {served_in_flight} in-flight served, 0 failed, 0 shed)"
    );
    println!(
        "  accuracy before/after losing {} landmarks: {wave1_median:.1} -> {wave3_median:.1} mi median",
        dark.len()
    );

    summary.push("churn_landmarks", landmarks.len() as f64);
    summary.push("churn_dark", dark.len() as f64);
    summary.push("churn_refresh_ms", churn_ms);
    summary.push(
        "churn_full_rebuild",
        if churn_report.full_rebuild { 1.0 } else { 0.0 },
    );
    summary.push("churn_in_flight_served", served_in_flight as f64);
    summary.push("churn_failed_batches", stats.counters.failed_batches as f64);
    summary.push("churn_shed", stats.counters.shed() as f64);
    summary.push("churn_shed_rate", stats.shed_rate());
    summary.push("churn_epoch", epoch as f64);
    summary.push("churn_wave1_median_mi", wave1_median);
    summary.push("churn_wave3_median_mi", wave3_median);
    service.shutdown();

    if let Some(path) = json_path {
        summary
            .write_json(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# wrote {}", path.display());
    }
}
