//! Cost of the Figure 4 sweep: how localization time scales with the number
//! of landmarks (each landmark adds constraints, so the constraint-system
//! size — and the region arithmetic behind it — grows linearly).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use octant::framework::Geolocator;
use octant::{Octant, OctantConfig};
use octant_baselines::GeoLim;
use octant_bench::campaign_with_sites;

fn bench_landmark_sweep(c: &mut Criterion) {
    let campaign = campaign_with_sites(31, 42);
    let target = campaign.hosts[0];
    let all_landmarks: Vec<_> = campaign.hosts[1..].to_vec();

    let octant = Octant::new(OctantConfig::default());
    let geolim = GeoLim::default();

    let mut group = c.benchmark_group("landmark_sweep");
    group.sample_size(10);
    for &count in &[10usize, 20, 30] {
        let landmarks: Vec<_> = all_landmarks.iter().copied().take(count).collect();
        group.bench_with_input(BenchmarkId::new("octant", count), &landmarks, |b, lms| {
            b.iter(|| black_box(octant.localize(&campaign.dataset, lms, target)))
        });
        group.bench_with_input(BenchmarkId::new("geolim", count), &landmarks, |b, lms| {
            b.iter(|| black_box(geolim.localize(&campaign.dataset, lms, target)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_landmark_sweep);
criterion_main!(benches);
