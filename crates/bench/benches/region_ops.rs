//! Microbenchmarks of the Bézier-region engine (supports the paper's claim
//! that boolean operations on region estimates are cheap — "solution times
//! under a few seconds" end to end).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use octant_region::{Region, Vec2};

fn disks(n: usize) -> Vec<Region> {
    (0..n)
        .map(|i| {
            let angle = i as f64 * 0.7;
            let center = Vec2::new(angle.cos() * 200.0, angle.sin() * 200.0);
            Region::disk(center, 600.0 + 40.0 * (i % 5) as f64)
        })
        .collect()
}

fn bench_region_ops(c: &mut Criterion) {
    let a = Region::disk(Vec2::new(0.0, 0.0), 800.0);
    let b = Region::disk(Vec2::new(500.0, 200.0), 700.0);

    c.bench_function("region/intersect_two_disks", |bench| {
        bench.iter(|| black_box(a.intersect(&b)))
    });
    c.bench_function("region/union_two_disks", |bench| {
        bench.iter(|| black_box(a.union(&b)))
    });
    c.bench_function("region/subtract_two_disks", |bench| {
        bench.iter(|| black_box(a.subtract(&b)))
    });

    // The shape of a full positive-constraint combination: intersect 20
    // disks — the chained pairwise reference against the single n-ary sweep.
    let twenty = disks(20);
    c.bench_function("region/intersect_20_constraint_disks", |bench| {
        bench.iter(|| {
            let mut acc = twenty[0].clone();
            for d in &twenty[1..] {
                acc = acc.intersect(d);
            }
            black_box(acc)
        })
    });
    c.bench_function("region/intersect_many_20_constraint_disks", |bench| {
        bench.iter(|| black_box(Region::intersect_many(twenty.iter())))
    });

    // Secondary-landmark constraint: dilate a small region (the disk
    // specialization) and a trapezoid-decomposed router region (the general
    // hierarchical path), against the capsule reference.
    let small = Region::disk(Vec2::new(0.0, 0.0), 80.0);
    c.bench_function("region/dilate_router_region_300km", |bench| {
        bench.iter(|| black_box(small.dilate(300.0)))
    });
    c.bench_function("region/dilate_router_region_300km_reference", |bench| {
        bench.iter(|| black_box(small.dilate_reference(300.0)))
    });
    // Same fixture as `router_region()` in `src/bin/region.rs` (the perf
    // guard); keep the two in lockstep so their numbers stay comparable.
    let decomposed = Region::disk(Vec2::new(0.0, 0.0), 140.0)
        .intersect(&Region::disk(Vec2::new(110.0, 20.0), 130.0))
        .subtract(&Region::disk(Vec2::new(40.0, -60.0), 70.0));
    c.bench_function("region/dilate_decomposed_region_300km", |bench| {
        bench.iter(|| black_box(decomposed.dilate(300.0)))
    });

    // The landmass-union shape: mostly disjoint outlines, one sweep.
    let continents: Vec<Region> = (0..7)
        .map(|i| {
            let c = Vec2::new(i as f64 * 2600.0 - 9000.0, (i % 3) as f64 * 1800.0);
            Region::disk(c, 900.0)
        })
        .collect();
    c.bench_function("region/union_many_7_outlines", |bench| {
        bench.iter(|| black_box(Region::union_many(continents.iter())))
    });

    // Membership and area queries on a non-trivial estimate.
    let estimate = {
        let mut acc = twenty[0].clone();
        for d in &twenty[1..] {
            acc = acc.intersect(d);
        }
        acc.subtract(&Region::disk(Vec2::new(100.0, 0.0), 120.0))
    };
    c.bench_function("region/contains_query", |bench| {
        bench.iter(|| black_box(estimate.contains(Vec2::new(50.0, 50.0))))
    });
    c.bench_function("region/area_and_centroid", |bench| {
        bench.iter(|| black_box((estimate.area(), estimate.centroid())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_region_ops
}
criterion_main!(benches);
