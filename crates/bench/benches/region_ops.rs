//! Microbenchmarks of the Bézier-region engine (supports the paper's claim
//! that boolean operations on region estimates are cheap — "solution times
//! under a few seconds" end to end).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use octant_region::{Region, Vec2};

fn disks(n: usize) -> Vec<Region> {
    (0..n)
        .map(|i| {
            let angle = i as f64 * 0.7;
            let center = Vec2::new(angle.cos() * 200.0, angle.sin() * 200.0);
            Region::disk(center, 600.0 + 40.0 * (i % 5) as f64)
        })
        .collect()
}

fn bench_region_ops(c: &mut Criterion) {
    let a = Region::disk(Vec2::new(0.0, 0.0), 800.0);
    let b = Region::disk(Vec2::new(500.0, 200.0), 700.0);

    c.bench_function("region/intersect_two_disks", |bench| {
        bench.iter(|| black_box(a.intersect(&b)))
    });
    c.bench_function("region/union_two_disks", |bench| {
        bench.iter(|| black_box(a.union(&b)))
    });
    c.bench_function("region/subtract_two_disks", |bench| {
        bench.iter(|| black_box(a.subtract(&b)))
    });

    // The shape of a full positive-constraint combination: intersect 20 disks.
    let twenty = disks(20);
    c.bench_function("region/intersect_20_constraint_disks", |bench| {
        bench.iter(|| {
            let mut acc = twenty[0].clone();
            for d in &twenty[1..] {
                acc = acc.intersect(d);
            }
            black_box(acc)
        })
    });

    // Secondary-landmark constraint: dilate a small region.
    let small = Region::disk(Vec2::new(0.0, 0.0), 80.0);
    c.bench_function("region/dilate_router_region_300km", |bench| {
        bench.iter(|| black_box(small.dilate(300.0)))
    });

    // Membership and area queries on a non-trivial estimate.
    let estimate = {
        let mut acc = twenty[0].clone();
        for d in &twenty[1..] {
            acc = acc.intersect(d);
        }
        acc.subtract(&Region::disk(Vec2::new(100.0, 0.0), 120.0))
    };
    c.bench_function("region/contains_query", |bench| {
        bench.iter(|| black_box(estimate.contains(Vec2::new(50.0, 50.0))))
    });
    c.bench_function("region/area_and_centroid", |bench| {
        bench.iter(|| black_box((estimate.area(), estimate.centroid())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_region_ops
}
criterion_main!(benches);
