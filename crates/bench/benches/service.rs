//! The serving axis the router cache establishes: recursive router
//! localization over targets that share last-hop routers, uncached (every
//! target re-runs each router's sub-solve inline) versus served through
//! `octant_service`'s shared `(epoch, router)` cache.
//!
//! `service/recursive_uncached` and `service/served_cached` run the
//! identical workload, so their ratio is the cache's end-to-end win;
//! `service/served_warm` measures the steady state where every router is
//! already resident (the cost of pure constraint assembly + solving).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use octant::{BatchGeolocator, Octant, OctantConfig, RouterLocalization};
use octant_bench::service_campaign;
use octant_service::{GeolocationService, ServiceConfig};

fn bench_service(c: &mut Criterion) {
    let octant_config =
        OctantConfig::default().with_router_localization(RouterLocalization::Recursive);
    // 12 targets behind 3 shared sites: the N ≫ R serving regime.
    let campaign = service_campaign(16, 3, 4, 42);
    let provider = campaign.dataset.into_shared();
    let batch = BatchGeolocator::new(octant_config);
    let octant = Octant::new(octant_config);
    let model = octant.prepare_landmarks(&provider, &campaign.landmarks);

    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    group.bench_function("recursive_uncached", |b| {
        b.iter(|| black_box(batch.localize_batch_with_model(&provider, &model, &campaign.targets)))
    });

    group.bench_function("served_cached", |b| {
        b.iter(|| {
            // A fresh service per iteration: measures the cold-cache serving
            // path end to end (bootstrap + exactly R sub-solves + serving).
            let service = GeolocationService::start(
                ServiceConfig::default().with_octant(octant_config),
                provider.clone(),
                &campaign.landmarks,
            );
            let served = service.localize_blocking(&campaign.targets);
            black_box(served)
        })
    });

    let warm_service = GeolocationService::start(
        ServiceConfig::default().with_octant(octant_config),
        provider.clone(),
        &campaign.landmarks,
    );
    warm_service.localize_blocking(&campaign.targets);
    group.bench_function("served_warm", |b| {
        b.iter(|| black_box(warm_service.localize_blocking(&campaign.targets)))
    });
    group.finish();

    let stats = warm_service.stats();
    println!(
        "service/cache: {} sub-localizations, {} hits ({:.1}% hit rate)",
        stats.cache.misses,
        stats.cache.hits,
        stats.cache.hit_rate() * 100.0
    );
    warm_service.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_service
}
criterion_main!(benches);
