//! End-to-end localization cost (the paper's "solution … takes only a few
//! seconds" claim, and the per-target cost behind Figure 3).
//!
//! One iteration localizes a single target from a recorded campaign, for
//! Octant (full configuration), Octant (minimal configuration) and the three
//! baselines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use octant::framework::Geolocator;
use octant::{Octant, OctantConfig};
use octant_baselines::{GeoLim, GeoPing, GeoTrack};
use octant_bench::campaign_with_sites;

fn bench_localization(c: &mut Criterion) {
    // A 25-site campaign keeps a single iteration well under a second while
    // exercising exactly the Figure 3 code path.
    let campaign = campaign_with_sites(25, 42);
    let target = campaign.hosts[0];
    let landmarks: Vec<_> = campaign.hosts[1..].to_vec();

    let full = Octant::new(OctantConfig::default());
    c.bench_function("localize/octant_full_24_landmarks", |b| {
        b.iter(|| black_box(full.localize(&campaign.dataset, &landmarks, target)))
    });

    let minimal = Octant::new(OctantConfig::minimal());
    c.bench_function("localize/octant_minimal_24_landmarks", |b| {
        b.iter(|| black_box(minimal.localize(&campaign.dataset, &landmarks, target)))
    });

    let geolim = GeoLim::default();
    c.bench_function("localize/geolim_24_landmarks", |b| {
        b.iter(|| black_box(geolim.localize(&campaign.dataset, &landmarks, target)))
    });

    let geoping = GeoPing;
    c.bench_function("localize/geoping_24_landmarks", |b| {
        b.iter(|| black_box(geoping.localize(&campaign.dataset, &landmarks, target)))
    });

    let geotrack = GeoTrack;
    c.bench_function("localize/geotrack_24_landmarks", |b| {
        b.iter(|| black_box(geotrack.localize(&campaign.dataset, &landmarks, target)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_localization
}
criterion_main!(benches);
