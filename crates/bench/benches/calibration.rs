//! Benchmarks of the Figure 2 machinery: building a landmark's convex-hull
//! calibration from peer measurements and querying the derived bounds, plus
//! the height (queuing delay) solve of §2.2.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use octant::calibration::{Calibration, CalibrationConfig, CalibrationSample};
use octant::heights::Heights;
use octant_geo::distance::great_circle;
use octant_geo::sites;
use octant_geo::units::{Distance, Latency};
use std::collections::HashMap;

fn synthetic_samples(n: usize) -> Vec<CalibrationSample> {
    (1..=n)
        .map(|i| {
            let latency = Latency::from_ms(i as f64 * 2.0);
            let distance = Distance::from_km(i as f64 * 2.0 * (55.0 + (i % 7) as f64 * 8.0));
            CalibrationSample { latency, distance }
        })
        .collect()
}

fn bench_calibration(c: &mut Criterion) {
    let samples = synthetic_samples(50);
    c.bench_function("calibration/build_from_50_peers", |b| {
        b.iter(|| {
            black_box(Calibration::from_samples(
                samples.clone(),
                CalibrationConfig::default(),
            ))
        })
    });

    let cal = Calibration::from_samples(samples, CalibrationConfig::default());
    c.bench_function("calibration/query_bounds", |b| {
        b.iter(|| {
            let rtt = Latency::from_ms(37.0);
            black_box((cal.max_distance(rtt), cal.min_distance(rtt)))
        })
    });

    // Height solve over the 51-site landmark set (the §2.2 least squares).
    let positions: Vec<_> = sites::planetlab_51().iter().map(|s| s.location()).collect();
    let mut rtts: HashMap<(usize, usize), Latency> = HashMap::new();
    for i in 0..positions.len() {
        for j in 0..positions.len() {
            if i == j {
                continue;
            }
            let base = great_circle(positions[i], positions[j])
                .min_rtt_over_fiber()
                .ms();
            rtts.insert(
                (i, j),
                Latency::from_ms(base + 2.0 + (i % 5) as f64 + (j % 3) as f64),
            );
        }
    }
    c.bench_function("heights/solve_51_landmarks", |b| {
        b.iter(|| black_box(Heights::solve_landmarks(&positions, &rtts)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_calibration
}
criterion_main!(benches);
