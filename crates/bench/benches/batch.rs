//! The throughput axis the batch engine establishes: localizing a target
//! population against a fixed landmark deployment, batched (shared landmark
//! model + parallel fan-out) versus the naive sequential loop that rebuilds
//! the model per target.
//!
//! `batch/sequential_loop` and `batch/localize_batch` run the identical
//! workload, so their ratio is the end-to-end speedup; `batch/prepare_model`
//! isolates the landmark-side cost the batch path amortizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use octant::{BatchGeolocator, Geolocator, Octant, OctantConfig};
use octant_bench::batch_campaign;

fn bench_batch(c: &mut Criterion) {
    let campaign = batch_campaign(12, 24, 42);
    let octant = Octant::new(OctantConfig::default());
    let batch = BatchGeolocator::new(OctantConfig::default());

    let mut group = c.benchmark_group("batch");
    group.sample_size(10);

    group.bench_function("prepare_model", |b| {
        b.iter(|| black_box(octant.prepare_landmarks(&campaign.dataset, &campaign.landmarks)))
    });

    for &n in &[8usize, 24] {
        let targets = &campaign.targets[..n];
        group.bench_with_input(
            BenchmarkId::new("sequential_loop", n),
            &targets,
            |b, targets| {
                b.iter(|| {
                    let estimates: Vec<_> = targets
                        .iter()
                        .map(|&t| octant.localize(&campaign.dataset, &campaign.landmarks, t))
                        .collect();
                    black_box(estimates)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("localize_batch", n),
            &targets,
            |b, targets| {
                b.iter(|| {
                    black_box(batch.localize_batch(&campaign.dataset, &campaign.landmarks, targets))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch
}
criterion_main!(benches);
