//! Hostile-network scenario engine.
//!
//! Everything else in this crate simulates a *clean* world: every probe is
//! answered, no landmark ever fails, no target lies. Real deployments are
//! messier, and Octant's central claim (§6 of the paper) is that
//! constraint-based geolocation degrades gracefully when the evidence does.
//! This module makes that measurable: [`ScenarioProvider`] wraps any
//! [`ObservationProvider`] and applies composable, seed-deterministic
//! degradations on the way out —
//!
//! * **diurnal congestion** — a time-of-day queueing inflation cycle added to
//!   every RTT, with a per-pair phase (links don't all peak together),
//! * **stochastic probe loss** — per-sample drops from a hash-derived uniform
//!   stream, so the surviving subset is a pure function of `(seed, query,
//!   tick)` and loss sets *nest* across rates (everything dropped at 10 % is
//!   also dropped at 30 %, making degradation monotone by construction),
//! * **probe timeout** — samples slower than a cutoff are discarded, the way
//!   a prober's timeout would discard them,
//! * **failure windows** — nodes go dark for a tick interval: pings to and
//!   from them are unreachable, their traceroute hops vanish, and their
//!   [`ObservationProvider::advertised_location`] returns `None` so landmark
//!   rosters genuinely churn,
//! * **adversarial targets** — per-node RTT inflation (latency spoofing: a
//!   target delaying its echo replies to appear farther away) and misleading
//!   reverse-DNS names that embed a *wrong* city in a parseable customer
//!   naming convention.
//!
//! Every knob defaults to off, and an all-default [`ScenarioConfig`] is an
//! exact passthrough: no RNG state exists at all (degradations are pure
//! hashes), so wrapped observations are bit-identical to the inner
//! provider's. Time is an explicit `tick` (think "hour"), advanced by the
//! harness — never wall-clock — so every scenario replay is deterministic.

use crate::dns;
use crate::observation::{HostDescriptor, ObservationProvider, PingObservation, TracerouteHop};
use crate::topology::NodeId;
use octant_geo::point::GeoPoint;
use octant_geo::units::Latency;
use std::sync::atomic::{AtomicU64, Ordering};

/// A half-open tick interval `[from_tick, until_tick)` during which a node
/// is dark: unreachable, invisible in traceroutes, and publishing no
/// advertised location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureWindow {
    /// The failing node.
    pub node: NodeId,
    /// First tick (inclusive) of the outage.
    pub from_tick: u64,
    /// First tick (exclusive) after the outage; `u64::MAX` means forever.
    pub until_tick: u64,
}

impl FailureWindow {
    /// `true` when the window covers `tick`.
    pub fn covers(&self, tick: u64) -> bool {
        self.from_tick <= tick && tick < self.until_tick
    }
}

/// Degradation knobs for a [`ScenarioProvider`]. All default to off; the
/// default config is an exact passthrough (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Seed for the hash-derived uniform streams (loss decisions, diurnal
    /// phases). Two scenarios with the same seed and knobs replay
    /// identically.
    pub seed: u64,
    /// Probability that an individual probe sample is dropped. `0.0`
    /// disables loss. Drops are decided by thresholding a per-sample hash
    /// uniform against this rate, so raising the rate only ever drops
    /// *additional* samples.
    pub probe_loss: f64,
    /// Discard samples whose (post-inflation) RTT exceeds this many
    /// milliseconds, as a prober timeout would. `0.0` disables the cutoff.
    pub probe_timeout_ms: f64,
    /// Peak extra queueing delay of the diurnal congestion cycle, in
    /// milliseconds (added to every sample, scaled by the phase of the
    /// cycle). `0.0` disables the cycle.
    pub diurnal_amplitude_ms: f64,
    /// Length of the diurnal cycle in ticks (default 24: one tick per hour).
    pub diurnal_period_ticks: u64,
    /// Per-node latency spoofing: extra milliseconds added to every probe
    /// *towards* the node (an adversarial target delaying its echo replies).
    pub rtt_spoof: Vec<(NodeId, f64)>,
    /// Per-node reverse-DNS spoofing: the node's PTR record is replaced by
    /// an ISP-customer-style name embedding the given (wrong) city code —
    /// use codes from [`octant_geo::cities`] so DNS-hint mining parses them.
    pub dns_spoof: Vec<(NodeId, String)>,
    /// Outage schedule. Multiple windows per node are allowed.
    pub failures: Vec<FailureWindow>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            probe_loss: 0.0,
            probe_timeout_ms: 0.0,
            diurnal_amplitude_ms: 0.0,
            diurnal_period_ticks: 24,
            rtt_spoof: Vec::new(),
            dns_spoof: Vec::new(),
            failures: Vec::new(),
        }
    }
}

impl ScenarioConfig {
    /// Sets the scenario seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-sample probe loss probability (clamped to `[0, 1]`).
    pub fn with_probe_loss(mut self, rate: f64) -> Self {
        self.probe_loss = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the probe timeout cutoff in milliseconds (`0` disables).
    pub fn with_probe_timeout_ms(mut self, ms: f64) -> Self {
        self.probe_timeout_ms = ms.max(0.0);
        self
    }

    /// Enables the diurnal congestion cycle.
    pub fn with_diurnal(mut self, amplitude_ms: f64, period_ticks: u64) -> Self {
        self.diurnal_amplitude_ms = amplitude_ms.max(0.0);
        self.diurnal_period_ticks = period_ticks.max(1);
        self
    }

    /// Adds a latency-spoofing adversary: probes towards `node` are inflated
    /// by `extra_ms`.
    pub fn with_rtt_spoof(mut self, node: NodeId, extra_ms: f64) -> Self {
        self.rtt_spoof.push((node, extra_ms.max(0.0)));
        self
    }

    /// Adds a reverse-DNS-spoofing adversary: `node`'s PTR record claims the
    /// (wrong) `city_code`.
    pub fn with_dns_spoof(mut self, node: NodeId, city_code: impl Into<String>) -> Self {
        self.dns_spoof.push((node, city_code.into()));
        self
    }

    /// Schedules an outage: `node` is dark for ticks `[from_tick,
    /// until_tick)`.
    pub fn with_failure(mut self, node: NodeId, from_tick: u64, until_tick: u64) -> Self {
        self.failures.push(FailureWindow {
            node,
            from_tick,
            until_tick,
        });
        self
    }

    /// `true` when every knob is at its default, i.e. the scenario is an
    /// exact passthrough.
    pub fn is_passthrough(&self) -> bool {
        self.probe_loss == 0.0
            && self.probe_timeout_ms == 0.0
            && self.diurnal_amplitude_ms == 0.0
            && self.rtt_spoof.is_empty()
            && self.dns_spoof.is_empty()
            && self.failures.is_empty()
    }

    fn spoof_ms(&self, node: NodeId) -> f64 {
        self.rtt_spoof
            .iter()
            .filter(|&&(n, _)| n == node)
            .map(|&(_, ms)| ms)
            .sum()
    }

    fn is_dark(&self, node: NodeId, tick: u64) -> bool {
        self.failures
            .iter()
            .any(|w| w.node == node && w.covers(tick))
    }
}

/// An [`ObservationProvider`] adaptor applying a [`ScenarioConfig`]'s
/// degradations to an inner provider. See the module docs.
#[derive(Debug)]
pub struct ScenarioProvider<P> {
    inner: P,
    config: ScenarioConfig,
    tick: AtomicU64,
}

/// Per-use-site salts keeping the hash streams independent.
const SALT_PING_LOSS: u64 = 0x01;
const SALT_TRACE_LOSS: u64 = 0x02;
const SALT_PHASE: u64 = 0x03;

/// Identifies one RTT sample for the hash-derived loss/timeout decisions:
/// the measurement's salt (ping vs traceroute stream), endpoints, scenario
/// tick, and sample index. The loss *rate* is deliberately not part of the
/// key, so the dropped sets nest across rates.
struct SampleKey {
    salt: u64,
    from: NodeId,
    to: NodeId,
    tick: u64,
    index: u64,
}

impl<P: ObservationProvider> ScenarioProvider<P> {
    /// Wraps `inner` with the scenario, starting at tick 0.
    pub fn new(inner: P, config: ScenarioConfig) -> Self {
        ScenarioProvider {
            inner,
            config,
            tick: AtomicU64::new(0),
        }
    }

    /// The wrapped provider.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The current scenario time.
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Jumps scenario time to `tick`.
    pub fn set_tick(&self, tick: u64) {
        self.tick.store(tick, Ordering::Relaxed);
    }

    /// Advances scenario time by `ticks`, returning the new tick.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.tick.fetch_add(ticks, Ordering::Relaxed) + ticks
    }

    /// `true` when `node` is dark at the current tick.
    pub fn is_dark(&self, node: NodeId) -> bool {
        self.config.is_dark(node, self.tick())
    }

    /// The diurnal congestion inflation for the `from → to` direction at
    /// `tick`, in milliseconds. Zero when the cycle is disabled.
    fn diurnal_ms(&self, from: NodeId, to: NodeId, tick: u64) -> f64 {
        let amp = self.config.diurnal_amplitude_ms;
        if amp <= 0.0 {
            return 0.0;
        }
        let period = self.config.diurnal_period_ticks.max(1);
        let phase =
            hash_chain(&[self.config.seed, SALT_PHASE, from.0 as u64, to.0 as u64]) % period;
        let t = (tick + phase) % period;
        let angle = 2.0 * std::f64::consts::PI * t as f64 / period as f64;
        amp * 0.5 * (1.0 - angle.cos())
    }

    /// `true` when the sample identified by `key` is lost. Pure in
    /// `(seed, salt, from, to, tick, index)` — the loss rate only thresholds
    /// the hash, so loss sets nest across rates.
    fn is_lost(&self, key: &SampleKey) -> bool {
        let rate = self.config.probe_loss;
        if rate <= 0.0 {
            return false;
        }
        let h = hash_chain(&[
            self.config.seed,
            key.salt,
            key.from.0 as u64,
            key.to.0 as u64,
            key.tick,
            key.index,
        ]);
        unit_from_hash(h) < rate
    }

    /// Applies inflation, loss, and timeout to one sample; `None` drops it.
    fn degrade(&self, key: &SampleKey, rtt: Latency, inflate_ms: f64) -> Option<Latency> {
        if self.is_lost(key) {
            return None;
        }
        let ms = rtt.ms() + inflate_ms;
        let timeout = self.config.probe_timeout_ms;
        if timeout > 0.0 && ms > timeout {
            return None;
        }
        Some(if inflate_ms > 0.0 {
            Latency::from_ms(ms)
        } else {
            rtt
        })
    }
}

impl<P: ObservationProvider> ObservationProvider for ScenarioProvider<P> {
    fn hosts(&self) -> Vec<HostDescriptor> {
        // Dark hosts stay in the inventory — an operator's landmark list
        // does not shrink the moment a node stops answering.
        self.inner.hosts()
    }

    fn ping(&self, from: NodeId, to: NodeId) -> PingObservation {
        let tick = self.tick();
        if self.config.is_dark(from, tick) || self.config.is_dark(to, tick) {
            return PingObservation::default();
        }
        let base = self.inner.ping(from, to);
        if self.config.is_passthrough() {
            return base;
        }
        let inflate = self.diurnal_ms(from, to, tick) + self.config.spoof_ms(to);
        let samples = base
            .samples
            .into_iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let key = SampleKey {
                    salt: SALT_PING_LOSS,
                    from,
                    to,
                    tick,
                    index: i as u64,
                };
                self.degrade(&key, s, inflate)
            })
            .collect();
        PingObservation::new(samples)
    }

    fn traceroute(&self, from: NodeId, to: NodeId) -> Vec<TracerouteHop> {
        let tick = self.tick();
        if self.config.is_dark(from, tick) || self.config.is_dark(to, tick) {
            return Vec::new();
        }
        let base = self.inner.traceroute(from, to);
        if self.config.is_passthrough() {
            return base;
        }
        base.into_iter()
            .enumerate()
            .filter_map(|(i, hop)| {
                // A dark router stops answering time-exceeded: the hop
                // disappears (real traceroutes show `* * *`).
                if self.config.is_dark(hop.node, tick) {
                    return None;
                }
                let inflate =
                    self.diurnal_ms(from, hop.node, tick) + self.config.spoof_ms(hop.node);
                let key = SampleKey {
                    salt: SALT_TRACE_LOSS,
                    from,
                    to: hop.node,
                    tick,
                    index: i as u64,
                };
                self.degrade(&key, hop.rtt, inflate)
                    .map(|rtt| TracerouteHop { rtt, ..hop })
            })
            .collect()
    }

    fn node_by_ip(&self, ip: [u8; 4]) -> Option<NodeId> {
        self.inner.node_by_ip(ip)
    }

    fn reverse_dns(&self, ip: [u8; 4]) -> Option<String> {
        if !self.config.dns_spoof.is_empty() {
            if let Some(node) = self.inner.node_by_ip(ip) {
                if let Some((_, city)) = self.config.dns_spoof.iter().find(|e| e.0 == node) {
                    // An adversary controls its own PTR record; it claims a
                    // parseable ISP-customer name in the wrong city.
                    return Some(dns::customer_hostname(city, 1, node.0 as usize));
                }
            }
        }
        self.inner.reverse_dns(ip)
    }

    fn whois_city(&self, ip: [u8; 4]) -> Option<String> {
        // WHOIS registration data is not under the target's control.
        self.inner.whois_city(ip)
    }

    fn advertised_location(&self, id: NodeId) -> Option<GeoPoint> {
        // A dark node publishes nothing — this is what makes landmark
        // rosters churn under failure schedules.
        if self.config.is_dark(id, self.tick()) {
            return None;
        }
        self.inner.advertised_location(id)
    }
}

/// SplitMix64 finalizer (same mixer the service shard router uses).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a sequence of words into one well-mixed word.
fn hash_chain(vals: &[u64]) -> u64 {
    let mut h: u64 = 0x243f_6a88_85a3_08d3; // frac(pi), as good a nothing-up-my-sleeve as any
    for &v in vals {
        h = mix64(h ^ v);
    }
    h
}

/// Maps a hash to a uniform in `[0, 1)` using the top 53 bits.
fn unit_from_hash(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetworkBuilder, NetworkConfig};
    use crate::dataset::MeasurementDataset;
    use crate::latency::LatencyModel;
    use crate::probe::Prober;
    use std::sync::Arc;

    fn clean_dataset() -> Arc<MeasurementDataset> {
        let net = NetworkBuilder::planetlab(NetworkConfig::default()).build();
        let prober = Prober::with_options(net, LatencyModel::noiseless(), 0.0, 4, 7);
        MeasurementDataset::capture(&prober).into_shared()
    }

    #[test]
    fn default_config_is_exact_passthrough() {
        let ds = clean_dataset();
        let sc = ScenarioProvider::new(ds.clone(), ScenarioConfig::default());
        assert!(sc.config().is_passthrough());
        let hosts = ds.host_ids();
        for i in 1..8 {
            let (a, b) = (hosts[0], hosts[i]);
            assert_eq!(sc.ping(a, b), ds.ping(a, b));
            assert_eq!(sc.traceroute(a, b), ds.traceroute(a, b));
        }
        let descr = ds.hosts();
        assert_eq!(sc.hosts(), descr);
        for d in descr.iter().take(5) {
            assert_eq!(sc.reverse_dns(d.ip), ds.reverse_dns(d.ip));
            assert_eq!(sc.whois_city(d.ip), ds.whois_city(d.ip));
            assert_eq!(sc.node_by_ip(d.ip), ds.node_by_ip(d.ip));
            assert_eq!(sc.advertised_location(d.id), ds.advertised_location(d.id));
        }
        // Passthrough holds at any tick.
        sc.set_tick(17);
        assert_eq!(sc.ping(hosts[0], hosts[1]), ds.ping(hosts[0], hosts[1]));
    }

    #[test]
    fn probe_loss_is_deterministic_and_nests_across_rates() {
        let ds = clean_dataset();
        let lo = ScenarioProvider::new(ds.clone(), ScenarioConfig::default().with_probe_loss(0.1));
        let lo2 = ScenarioProvider::new(ds.clone(), ScenarioConfig::default().with_probe_loss(0.1));
        let hi = ScenarioProvider::new(ds.clone(), ScenarioConfig::default().with_probe_loss(0.4));
        let hosts = ds.host_ids();
        let (mut kept_lo, mut kept_hi, mut total) = (0usize, 0usize, 0usize);
        for i in 1..hosts.len() {
            let (a, b) = (hosts[0], hosts[i]);
            let full = ds.ping(a, b).samples;
            let p_lo = lo.ping(a, b).samples;
            let p_hi = hi.ping(a, b).samples;
            assert_eq!(p_lo, lo2.ping(a, b).samples, "same seed, same losses");
            // Nesting: every sample surviving 40% loss also survives 10%.
            for s in &p_hi {
                assert!(p_lo.contains(s));
            }
            total += full.len();
            kept_lo += p_lo.len();
            kept_hi += p_hi.len();
        }
        assert!(
            kept_hi < kept_lo && kept_lo < total,
            "{kept_hi} {kept_lo} {total}"
        );
        let rate = 1.0 - kept_lo as f64 / total as f64;
        assert!((rate - 0.1).abs() < 0.07, "observed loss rate {rate}");
    }

    #[test]
    fn timeout_discards_slow_samples() {
        let ds = clean_dataset();
        let hosts = ds.host_ids();
        let (a, b) = (hosts[0], hosts[20]);
        let full = ds.ping(a, b);
        let cutoff = full.min().unwrap().ms() + 0.1;
        let sc = ScenarioProvider::new(
            ds.clone(),
            ScenarioConfig::default().with_probe_timeout_ms(cutoff),
        );
        let kept = sc.ping(a, b);
        assert!(!kept.is_unreachable());
        assert!(kept.samples.iter().all(|s| s.ms() <= cutoff));
        // A generous timeout changes nothing.
        let lax = ScenarioProvider::new(
            ds.clone(),
            ScenarioConfig::default().with_probe_timeout_ms(1e9),
        );
        assert_eq!(lax.ping(a, b), full);
    }

    #[test]
    fn diurnal_cycle_inflates_rtts_and_varies_with_tick() {
        let ds = clean_dataset();
        let hosts = ds.host_ids();
        let (a, b) = (hosts[0], hosts[10]);
        let base = ds.ping(a, b).min().unwrap().ms();
        let sc =
            ScenarioProvider::new(ds.clone(), ScenarioConfig::default().with_diurnal(40.0, 24));
        let mins: Vec<f64> = (0..24)
            .map(|t| {
                sc.set_tick(t);
                sc.ping(a, b).min().unwrap().ms()
            })
            .collect();
        let lo = mins.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = mins.iter().cloned().fold(0.0, f64::max);
        assert!(lo >= base - 1e-9, "inflation is never negative");
        assert!(
            lo < base + 1.0,
            "the cycle trough sits near the clean floor"
        );
        assert!(hi > base + 30.0, "the cycle peak approaches the amplitude");
        // Replaying a tick reproduces it.
        sc.set_tick(7);
        let once = sc.ping(a, b);
        let twice = sc.ping(a, b);
        assert_eq!(once, twice);
    }

    #[test]
    fn rtt_spoof_inflates_pings_towards_the_target_only() {
        let ds = clean_dataset();
        let hosts = ds.host_ids();
        let (a, b, c) = (hosts[0], hosts[5], hosts[6]);
        let sc = ScenarioProvider::new(
            ds.clone(),
            ScenarioConfig::default().with_rtt_spoof(b, 100.0),
        );
        let spoofed = sc.ping(a, b);
        let clean = ds.ping(a, b);
        assert_eq!(spoofed.samples.len(), clean.samples.len());
        for (s, c0) in spoofed.samples.iter().zip(&clean.samples) {
            assert!((s.ms() - c0.ms() - 100.0).abs() < 1e-9);
        }
        // Other targets are untouched.
        assert_eq!(sc.ping(a, c), ds.ping(a, c));
    }

    #[test]
    fn dns_spoof_claims_a_parseable_wrong_city() {
        let ds = clean_dataset();
        let victim = ds.hosts()[3].clone();
        let sc = ScenarioProvider::new(
            ds.clone(),
            ScenarioConfig::default().with_dns_spoof(victim.id, "nrt"),
        );
        let name = sc.reverse_dns(victim.ip).unwrap();
        assert_ne!(name, victim.hostname);
        let city = dns::parse_router_city(&name).expect("spoofed name should parse");
        assert_eq!(city.code, "nrt");
        // Un-spoofed hosts keep their real PTR records.
        let other = &ds.hosts()[4];
        assert_eq!(sc.reverse_dns(other.ip), ds.reverse_dns(other.ip));
        // WHOIS is not under the adversary's control.
        assert_eq!(sc.whois_city(victim.ip), ds.whois_city(victim.ip));
    }

    #[test]
    fn failure_windows_take_nodes_dark_and_bring_them_back() {
        let ds = clean_dataset();
        let hosts = ds.host_ids();
        let (dead, live) = (hosts[2], hosts[9]);
        let sc = ScenarioProvider::new(
            ds.clone(),
            ScenarioConfig::default().with_failure(dead, 1, 5),
        );
        // Tick 0: before the window, everything works.
        assert!(!sc.ping(live, dead).is_unreachable());
        assert!(sc.advertised_location(dead).is_some());
        // Ticks 1..5: dark in both directions, no location published.
        for t in 1..5 {
            sc.set_tick(t);
            assert!(sc.is_dark(dead));
            assert!(sc.ping(live, dead).is_unreachable());
            assert!(sc.ping(dead, live).is_unreachable());
            assert!(sc.traceroute(live, dead).is_empty());
            assert!(sc.advertised_location(dead).is_none());
            // Unaffected pairs keep working.
            assert!(!sc.ping(live, hosts[12]).is_unreachable());
        }
        // Tick 5: recovered.
        sc.set_tick(5);
        assert!(!sc.is_dark(dead));
        assert_eq!(sc.ping(live, dead), ds.ping(live, dead));
        assert!(sc.advertised_location(dead).is_some());
    }

    #[test]
    fn dark_routers_disappear_from_traceroutes() {
        let ds = clean_dataset();
        let hosts = ds.host_ids();
        let (a, b) = (hosts[0], hosts[30]);
        let clean_hops = ds.traceroute(a, b);
        assert!(clean_hops.len() >= 2, "need a multi-hop path for this test");
        let victim = clean_hops[0].node;
        let sc = ScenarioProvider::new(
            ds.clone(),
            ScenarioConfig::default().with_failure(victim, 0, u64::MAX),
        );
        let hops = sc.traceroute(a, b);
        assert_eq!(
            hops.len(),
            clean_hops.len() - clean_hops.iter().filter(|h| h.node == victim).count()
        );
        assert!(hops.iter().all(|h| h.node != victim));
    }

    #[test]
    fn advance_moves_scenario_time() {
        let ds = clean_dataset();
        let sc = ScenarioProvider::new(ds, ScenarioConfig::default());
        assert_eq!(sc.tick(), 0);
        assert_eq!(sc.advance(3), 3);
        assert_eq!(sc.tick(), 3);
        sc.set_tick(1);
        assert_eq!(sc.tick(), 1);
    }

    #[test]
    fn hash_uniforms_look_uniform() {
        let n = 10_000u64;
        let mean = (0..n)
            .map(|i| unit_from_hash(hash_chain(&[42, 0xabc, i])))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
