//! A simulated WHOIS registry.
//!
//! §2.5 of the paper uses WHOIS records (ZIP codes registered for an IP
//! block) as an additional source of positive geographic constraints, while
//! §5 notes that real registries are coarse and frequently stale. The
//! simulated registry reproduces both properties: each host prefix is
//! registered at city granularity, and a configurable fraction of records
//! points at the wrong city (e.g. the organisation's headquarters rather
//! than the host's actual site).

use crate::topology::{Network, NodeKind};
use octant_geo::cities;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A WHOIS record for an IP prefix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhoisRecord {
    /// Registered city code.
    pub city_code: String,
    /// Registered organisation name.
    pub organisation: String,
    /// Whether the record actually matches the host's true city (ground
    /// truth for evaluation; localization algorithms must not read this).
    pub accurate: bool,
}

/// The registry: a map from /24-style prefixes to records.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WhoisRegistry {
    records: HashMap<[u8; 3], WhoisRecord>,
    /// Fraction of records that were deliberately generated wrong.
    pub error_rate: f64,
}

impl WhoisRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WhoisRegistry::default()
    }

    /// Generates a registry covering every *host* prefix in the network.
    /// Each record is wrong (points at a different plausible city) with
    /// probability `error_rate`.
    pub fn generate<R: Rng + ?Sized>(net: &Network, error_rate: f64, rng: &mut R) -> Self {
        let error_rate = error_rate.clamp(0.0, 1.0);
        let mut records = HashMap::new();
        for node in net.nodes() {
            if node.kind != NodeKind::Host {
                continue;
            }
            let prefix = [node.ip[0], node.ip[1], node.ip[2]];
            let wrong = rng.gen_bool(error_rate);
            let city_code = if wrong {
                // Pick a different city, preferring one in the same country so
                // the error is plausible (an organisation's HQ, say).
                let same_country: Vec<_> = cities::CITIES
                    .iter()
                    .filter(|c| {
                        cities::by_code(&node.city_code)
                            .map(|home| home.country == c.country)
                            .unwrap_or(false)
                            && !c.code.eq_ignore_ascii_case(&node.city_code)
                    })
                    .collect();
                if same_country.is_empty() {
                    cities::CITIES[rng.gen_range(0..cities::CITIES.len())]
                        .code
                        .to_string()
                } else {
                    same_country[rng.gen_range(0..same_country.len())]
                        .code
                        .to_string()
                }
            } else {
                node.city_code.clone()
            };
            records.insert(
                prefix,
                WhoisRecord {
                    city_code,
                    organisation: organisation_from_hostname(&node.hostname),
                    accurate: !wrong,
                },
            );
        }
        WhoisRegistry {
            records,
            error_rate,
        }
    }

    /// Looks up the record covering `ip`.
    pub fn lookup(&self, ip: [u8; 4]) -> Option<&WhoisRecord> {
        self.records.get(&[ip[0], ip[1], ip[2]])
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no prefix is registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of records that are accurate (evaluation helper).
    pub fn accuracy(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.values().filter(|r| r.accurate).count() as f64 / self.records.len() as f64
    }
}

/// Derives an organisation-ish name from a hostname ("planetlab1.cs.cornell.edu"
/// becomes "cornell.edu").
fn organisation_from_hostname(hostname: &str) -> String {
    let parts: Vec<&str> = hostname.split('.').collect();
    if parts.len() >= 2 {
        format!("{}.{}", parts[parts.len() - 2], parts[parts.len() - 1])
    } else {
        hostname.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetworkBuilder, NetworkConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Network {
        NetworkBuilder::planetlab(NetworkConfig::default()).build()
    }

    #[test]
    fn every_host_prefix_is_registered() {
        let net = net();
        let mut rng = StdRng::seed_from_u64(1);
        let reg = WhoisRegistry::generate(&net, 0.15, &mut rng);
        assert!(!reg.is_empty());
        for &h in &net.hosts() {
            let node = net.node(h);
            let rec = reg
                .lookup(node.ip)
                .unwrap_or_else(|| panic!("missing record for {}", node.hostname));
            assert!(!rec.city_code.is_empty());
            assert!(rec.organisation.contains('.'));
        }
    }

    #[test]
    fn error_rate_zero_means_all_accurate() {
        let net = net();
        let mut rng = StdRng::seed_from_u64(2);
        let reg = WhoisRegistry::generate(&net, 0.0, &mut rng);
        assert_eq!(reg.accuracy(), 1.0);
        for &h in &net.hosts() {
            let node = net.node(h);
            assert_eq!(reg.lookup(node.ip).unwrap().city_code, node.city_code);
        }
    }

    #[test]
    fn error_rate_is_roughly_respected() {
        let net = net();
        let mut rng = StdRng::seed_from_u64(3);
        let reg = WhoisRegistry::generate(&net, 0.3, &mut rng);
        // With 51 hosts the binomial spread is wide; just check the direction.
        assert!(
            reg.accuracy() < 0.95 && reg.accuracy() > 0.4,
            "accuracy {}",
            reg.accuracy()
        );
        // Inaccurate records point somewhere else.
        for &h in &net.hosts() {
            let node = net.node(h);
            let rec = reg.lookup(node.ip).unwrap();
            if !rec.accurate {
                assert_ne!(rec.city_code, node.city_code);
            }
        }
    }

    #[test]
    fn unknown_prefixes_return_none() {
        let net = net();
        let mut rng = StdRng::seed_from_u64(4);
        let reg = WhoisRegistry::generate(&net, 0.1, &mut rng);
        assert!(reg.lookup([1, 2, 3, 4]).is_none());
    }

    #[test]
    fn organisation_name_derivation() {
        assert_eq!(
            organisation_from_hostname("planetlab1.cs.cornell.edu"),
            "cornell.edu"
        );
        assert_eq!(organisation_from_hostname("localhost"), "localhost");
    }

    #[test]
    fn empty_registry_behaviour() {
        let reg = WhoisRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.accuracy(), 1.0);
        assert!(reg.lookup([10, 0, 0, 1]).is_none());
    }
}
