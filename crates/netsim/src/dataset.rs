//! Recorded measurement campaigns.
//!
//! The paper's evaluation is a *dataset* experiment: all pairwise latency
//! measurements and traceroutes between 51 PlanetLab nodes are collected
//! once, then every localization technique is run over the same data.
//! [`MeasurementDataset::capture`] performs that collection against any
//! [`ObservationProvider`] (normally the live [`crate::Prober`]); the
//! resulting dataset is itself an [`ObservationProvider`], so the
//! localization code cannot tell the difference — and every algorithm sees
//! byte-identical measurements, exactly like in the paper.

use crate::observation::{HostDescriptor, ObservationProvider, PingObservation, TracerouteHop};
use crate::topology::NodeId;
use octant_geo::point::GeoPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A host in a recorded campaign, with its ground-truth location retained for
/// evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetHost {
    /// The host's descriptor (id, hostname, IP).
    pub descriptor: HostDescriptor,
    /// Ground-truth location (used to anchor the node when it serves as a
    /// landmark, and to score the estimate when it serves as a target).
    pub true_location: GeoPoint,
}

/// A fully recorded measurement campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasurementDataset {
    /// The participating hosts.
    pub hosts: Vec<DatasetHost>,
    pub(crate) pings: HashMap<(NodeId, NodeId), PingObservation>,
    pub(crate) traceroutes: HashMap<(NodeId, NodeId), Vec<TracerouteHop>>,
    pub(crate) dns: HashMap<[u8; 4], String>,
    pub(crate) whois: HashMap<[u8; 4], String>,
    pub(crate) ip_to_node: HashMap<[u8; 4], NodeId>,
}

impl MeasurementDataset {
    /// Captures a full campaign: pairwise pings between all hosts, pairwise
    /// traceroutes, pings from each host to every router its traceroutes
    /// encountered, and DNS/WHOIS lookups for everything seen.
    pub fn capture<P: ObservationProvider + ?Sized>(provider: &P) -> Self {
        let descriptors = provider.hosts();
        let mut ds = MeasurementDataset::default();

        for d in &descriptors {
            let loc = provider
                .advertised_location(d.id)
                .unwrap_or_else(|| GeoPoint::new(0.0, 0.0));
            ds.ip_to_node.insert(d.ip, d.id);
            if let Some(name) = provider.reverse_dns(d.ip) {
                ds.dns.insert(d.ip, name);
            }
            if let Some(city) = provider.whois_city(d.ip) {
                ds.whois.insert(d.ip, city);
            }
            ds.hosts.push(DatasetHost {
                descriptor: d.clone(),
                true_location: loc,
            });
        }

        for a in &descriptors {
            for b in &descriptors {
                if a.id == b.id {
                    continue;
                }
                ds.pings.insert((a.id, b.id), provider.ping(a.id, b.id));
                let hops = provider.traceroute(a.id, b.id);
                for hop in &hops {
                    ds.ip_to_node.insert(hop.ip, hop.node);
                    ds.dns.entry(hop.ip).or_insert_with(|| hop.hostname.clone());
                    if let Some(city) = provider.whois_city(hop.ip) {
                        ds.whois.entry(hop.ip).or_insert(city);
                    }
                    // Latency from the landmark to the intermediate router,
                    // as collected in the paper's evaluation.
                    ds.pings
                        .entry((a.id, hop.node))
                        .or_insert_with(|| provider.ping(a.id, hop.node));
                }
                ds.traceroutes.insert((a.id, b.id), hops);
            }
        }
        ds
    }

    /// Number of recorded ping observations.
    pub fn ping_count(&self) -> usize {
        self.pings.len()
    }

    /// Number of recorded traceroutes.
    pub fn traceroute_count(&self) -> usize {
        self.traceroutes.len()
    }

    /// The ground-truth location of a host in the dataset.
    pub fn true_location(&self, id: NodeId) -> Option<GeoPoint> {
        self.hosts
            .iter()
            .find(|h| h.descriptor.id == id)
            .map(|h| h.true_location)
    }

    /// The host ids in the dataset, in capture order.
    pub fn host_ids(&self) -> Vec<NodeId> {
        self.hosts.iter().map(|h| h.descriptor.id).collect()
    }

    /// Wraps the dataset in an [`std::sync::Arc`] handle for concurrent
    /// serving: the dataset is replay-stable (same query → same observation,
    /// regardless of call order or thread), so one capture can safely back a
    /// long-lived service whose worker threads each hold a cheap clone of
    /// the handle. `Arc<MeasurementDataset>` is itself an
    /// [`ObservationProvider`] via the forwarding impl in
    /// [`crate::observation`].
    pub fn into_shared(self) -> std::sync::Arc<Self> {
        std::sync::Arc::new(self)
    }
}

impl ObservationProvider for MeasurementDataset {
    fn hosts(&self) -> Vec<HostDescriptor> {
        self.hosts.iter().map(|h| h.descriptor.clone()).collect()
    }

    fn ping(&self, from: NodeId, to: NodeId) -> PingObservation {
        self.pings.get(&(from, to)).cloned().unwrap_or_default()
    }

    fn traceroute(&self, from: NodeId, to: NodeId) -> Vec<TracerouteHop> {
        self.traceroutes
            .get(&(from, to))
            .cloned()
            .unwrap_or_default()
    }

    fn node_by_ip(&self, ip: [u8; 4]) -> Option<NodeId> {
        self.ip_to_node.get(&ip).copied()
    }

    fn reverse_dns(&self, ip: [u8; 4]) -> Option<String> {
        self.dns.get(&ip).cloned()
    }

    fn whois_city(&self, ip: [u8; 4]) -> Option<String> {
        self.whois.get(&ip).cloned()
    }

    fn advertised_location(&self, id: NodeId) -> Option<GeoPoint> {
        self.true_location(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use crate::latency::LatencyModel;
    use crate::probe::Prober;
    use octant_geo::sites;

    fn small_prober() -> Prober {
        // A small subset keeps the capture fast in unit tests.
        let mut builder = NetworkBuilder::new(NetworkConfig::default());
        for site in sites::planetlab_51().iter().take(8) {
            builder = builder.add_host(HostSpec::from_site(site));
        }
        Prober::with_options(builder.build(), LatencyModel::default(), 0.1, 5, 3)
    }

    #[test]
    fn capture_records_all_pairs() {
        let prober = small_prober();
        let ds = MeasurementDataset::capture(&prober);
        assert_eq!(ds.hosts.len(), 8);
        // 8*7 directed host pairs plus host-to-router pings.
        assert!(ds.ping_count() >= 56, "got {}", ds.ping_count());
        assert_eq!(ds.traceroute_count(), 56);
    }

    #[test]
    fn dataset_replays_identical_measurements() {
        let prober = small_prober();
        let ds = MeasurementDataset::capture(&prober);
        let hosts = ds.host_ids();
        let a = hosts[0];
        let b = hosts[3];
        // Replay is stable: the dataset returns the same observation every time.
        assert_eq!(ds.ping(a, b), ds.ping(a, b));
        assert!(!ds.ping(a, b).is_unreachable());
        // Traceroute hops resolve through the dataset's own IP table.
        for hop in ds.traceroute(a, b) {
            assert_eq!(ds.node_by_ip(hop.ip), Some(hop.node));
            assert_eq!(ds.reverse_dns(hop.ip).unwrap(), hop.hostname);
        }
    }

    #[test]
    fn unknown_pairs_report_unreachable() {
        let prober = small_prober();
        let ds = MeasurementDataset::capture(&prober);
        let bogus = NodeId(4242);
        assert!(ds.ping(bogus, ds.host_ids()[0]).is_unreachable());
        assert!(ds.traceroute(bogus, ds.host_ids()[0]).is_empty());
        assert!(ds.node_by_ip([1, 2, 3, 4]).is_none());
        assert!(ds.reverse_dns([1, 2, 3, 4]).is_none());
        assert!(ds.whois_city([1, 2, 3, 4]).is_none());
        assert!(ds.true_location(bogus).is_none());
    }

    #[test]
    fn ground_truth_locations_are_preserved() {
        let prober = small_prober();
        let ds = MeasurementDataset::capture(&prober);
        for (host, site) in ds.hosts.iter().zip(sites::planetlab_51().iter().take(8)) {
            assert_eq!(host.descriptor.hostname, site.hostname);
            let d = octant_geo::distance::great_circle_km(host.true_location, site.location());
            assert!(d < 1.0);
            assert_eq!(
                ds.advertised_location(host.descriptor.id),
                Some(host.true_location)
            );
        }
    }

    #[test]
    fn landmark_to_router_pings_are_captured() {
        let prober = small_prober();
        let ds = MeasurementDataset::capture(&prober);
        let hosts = ds.host_ids();
        let hops = ds.traceroute(hosts[0], hosts[1]);
        assert!(!hops.is_empty());
        for hop in hops {
            assert!(
                !ds.ping(hosts[0], hop.node).is_unreachable(),
                "expected a recorded ping from the landmark to router {}",
                hop.hostname
            );
        }
    }
}
