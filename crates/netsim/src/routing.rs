//! Policy-aware shortest-path routing.
//!
//! Routes are computed with Dijkstra's algorithm over a *routing weight* that
//! is the link's propagation delay multiplied by its policy cost (peering
//! links are penalized) plus a small per-hop charge. Because the weight is
//! not pure geographic distance, routes regularly deviate from great circles
//! — the route inflation Octant's piecewise localization (§2.3) exists to
//! cope with.

use crate::topology::{Network, NodeId};
use octant_geo::units::{Distance, Latency};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Per-hop routing charge in milliseconds, modelling lookup/serialization
/// costs and discouraging hop-maximizing paths.
const PER_HOP_COST_MS: f64 = 0.05;

/// A routed path through the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// The node sequence, starting at the source and ending at the
    /// destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Total geographic fiber length of the path.
    pub length: Distance,
    /// Total one-way propagation delay of the path at 2/3 c.
    pub propagation: Latency,
}

impl Path {
    /// Number of hops (links) on the path.
    pub fn hop_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// The intermediate routers (every node except the two endpoints).
    pub fn intermediate(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }

    /// Route inflation: path length relative to the great-circle distance
    /// between its endpoints.
    pub fn inflation(&self, net: &Network) -> f64 {
        if self.nodes.len() < 2 {
            return 1.0;
        }
        let a = net.node(self.nodes[0]).location;
        let b = net.node(*self.nodes.last().expect("non-empty")).location;
        let direct = octant_geo::distance::great_circle_km(a, b);
        if direct < 1e-9 {
            1.0
        } else {
            (self.length.km() / direct).max(1.0)
        }
    }
}

/// Shortest-path router with a per-source cache.
#[derive(Debug, Default)]
pub struct RouteTable {
    // For each source, predecessor tree and distances from one Dijkstra run.
    cache: HashMap<NodeId, SourceTree>,
}

#[derive(Debug, Clone)]
struct SourceTree {
    predecessor: HashMap<NodeId, NodeId>,
    cost: HashMap<NodeId, f64>,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl RouteTable {
    /// Creates an empty route table.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Computes (or returns the cached) route from `from` to `to`. Returns
    /// `None` when the destination is unreachable.
    pub fn route(&mut self, net: &Network, from: NodeId, to: NodeId) -> Option<Path> {
        if from == to {
            return Some(Path {
                nodes: vec![from],
                length: Distance::ZERO,
                propagation: Latency::ZERO,
            });
        }
        let tree = self
            .cache
            .entry(from)
            .or_insert_with(|| dijkstra(net, from));
        tree.cost.get(&to)?;
        // Reconstruct node sequence.
        let mut nodes = vec![to];
        let mut cur = to;
        while cur != from {
            cur = *tree.predecessor.get(&cur)?;
            nodes.push(cur);
        }
        nodes.reverse();
        // Accumulate geometry.
        let mut length = Distance::ZERO;
        for w in nodes.windows(2) {
            let link = net.find_link(w[0], w[1])?;
            length += link.length;
        }
        let propagation = Latency::from_ms(length.km() / octant_geo::units::FIBER_SPEED_KM_PER_MS);
        Some(Path {
            nodes,
            length,
            propagation,
        })
    }

    /// Drops all cached routes (e.g. after mutating the network).
    pub fn clear(&mut self) {
        self.cache.clear();
    }
}

fn dijkstra(net: &Network, source: NodeId) -> SourceTree {
    let mut cost: HashMap<NodeId, f64> = HashMap::new();
    let mut predecessor: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    cost.insert(source, 0.0);
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });

    while let Some(HeapEntry { cost: c, node }) = heap.pop() {
        if c > *cost.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &li in net.incident_links(node) {
            let link = net.links()[li];
            let other = if link.a == node { link.b } else { link.a };
            let w = link.propagation_delay().ms() * link.policy_cost + PER_HOP_COST_MS;
            let nc = c + w;
            if nc < *cost.get(&other).unwrap_or(&f64::INFINITY) {
                cost.insert(other, nc);
                predecessor.insert(other, node);
                heap.push(HeapEntry {
                    cost: nc,
                    node: other,
                });
            }
        }
    }
    SourceTree { predecessor, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetworkBuilder, NetworkConfig};
    use crate::topology::NodeKind;
    use octant_geo::point::GeoPoint;

    fn planetlab() -> Network {
        NetworkBuilder::planetlab(NetworkConfig::default()).build()
    }

    #[test]
    fn routes_exist_between_all_host_pairs() {
        let net = planetlab();
        let mut table = RouteTable::new();
        let hosts = net.hosts();
        for &a in hosts.iter().take(10) {
            for &b in hosts.iter().rev().take(10) {
                if a == b {
                    continue;
                }
                let p = table
                    .route(&net, a, b)
                    .unwrap_or_else(|| panic!("no route {a}->{b}"));
                assert!(p.hop_count() >= 2, "host-to-host paths traverse routers");
                assert_eq!(p.nodes[0], a);
                assert_eq!(*p.nodes.last().unwrap(), b);
                // Every intermediate node is a router.
                for &r in p.intermediate() {
                    assert_ne!(
                        net.node(r).kind,
                        NodeKind::Host,
                        "hosts do not forward traffic"
                    );
                }
            }
        }
    }

    #[test]
    fn path_length_bounds() {
        let net = planetlab();
        let mut table = RouteTable::new();
        let hosts = net.hosts();
        for &a in hosts.iter().take(12) {
            for &b in hosts.iter().skip(12).take(12) {
                let p = table.route(&net, a, b).unwrap();
                let direct = octant_geo::distance::great_circle_km(
                    net.node(a).location,
                    net.node(b).location,
                );
                assert!(
                    p.length.km() >= direct * 0.99,
                    "path cannot be shorter than the geodesic"
                );
                let infl = p.inflation(&net);
                assert!(
                    infl < 6.0,
                    "inflation {infl} between {a} and {b} is implausibly large"
                );
            }
        }
    }

    #[test]
    fn same_node_route_is_trivial() {
        let net = planetlab();
        let mut table = RouteTable::new();
        let h = net.hosts()[0];
        let p = table.route(&net, h, h).unwrap();
        assert_eq!(p.nodes, vec![h]);
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.length, Distance::ZERO);
        assert_eq!(p.inflation(&net), 1.0);
    }

    #[test]
    fn unreachable_destination_returns_none() {
        let mut net = Network::new();
        let a = net.add_node(
            NodeKind::Host,
            GeoPoint::new(0.0, 0.0),
            "nyc",
            0,
            "a",
            [1, 0, 0, 1],
            1.0,
        );
        let b = net.add_node(
            NodeKind::Host,
            GeoPoint::new(1.0, 1.0),
            "nyc",
            0,
            "b",
            [1, 0, 0, 2],
            1.0,
        );
        let mut table = RouteTable::new();
        assert!(table.route(&net, a, b).is_none());
    }

    #[test]
    fn routes_are_cached_and_clearable() {
        let net = planetlab();
        let mut table = RouteTable::new();
        let hosts = net.hosts();
        let p1 = table.route(&net, hosts[0], hosts[1]).unwrap();
        let p2 = table.route(&net, hosts[0], hosts[1]).unwrap();
        assert_eq!(p1, p2);
        table.clear();
        let p3 = table.route(&net, hosts[0], hosts[1]).unwrap();
        assert_eq!(
            p1, p3,
            "routing is deterministic, so clearing must not change results"
        );
    }

    #[test]
    fn propagation_matches_length() {
        let net = planetlab();
        let mut table = RouteTable::new();
        let hosts = net.hosts();
        let p = table.route(&net, hosts[0], hosts[20]).unwrap();
        let expected = p.length.km() / octant_geo::units::FIBER_SPEED_KM_PER_MS;
        assert!((p.propagation.ms() - expected).abs() < 1e-9);
    }

    #[test]
    fn median_inflation_is_realistic() {
        // Across many host pairs, policy routing should inflate paths by a
        // noticeable but bounded factor (real-world studies report ~1.2-2x).
        let net = planetlab();
        let mut table = RouteTable::new();
        let hosts = net.hosts();
        let mut inflations = Vec::new();
        for (i, &a) in hosts.iter().enumerate() {
            for &b in hosts.iter().skip(i + 1) {
                let p = table.route(&net, a, b).unwrap();
                inflations.push(p.inflation(&net));
            }
        }
        inflations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = inflations[inflations.len() / 2];
        // Provider backhaul plus policy routing inflates paths noticeably;
        // real-world studies put typical inflation at 1.2-2x, and the
        // simulator's regional-POP model sits a little above that. Anything
        // beyond 3x would indicate broken routing.
        assert!(median > 1.05 && median < 3.0, "median inflation {median}");
    }
}
