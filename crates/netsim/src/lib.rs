//! # octant-netsim
//!
//! A deterministic Internet measurement substrate for the Octant
//! geolocalization framework.
//!
//! The paper evaluates Octant on 51 PlanetLab hosts using ICMP pings,
//! traceroutes, router DNS names (via `undns`) and WHOIS records. This crate
//! reproduces that *observation interface* on top of a synthetic — but
//! structurally realistic — Internet:
//!
//! * [`topology`] / [`builder`] — a router-level topology with backbone
//!   routers at major cities, several competing providers, peering points,
//!   access routers and last-mile links to hosts placed at real PlanetLab-like
//!   site coordinates,
//! * [`routing`] — policy-aware shortest-path routing with the route
//!   inflation ("circuitousness") that makes latency-based geolocation hard,
//! * [`latency`] — a latency model combining fiber propagation delay
//!   (2/3 c over the routed path), per-hop processing, per-host last-mile
//!   queuing and per-probe jitter,
//! * [`probe`] — `ping` (n time-dispersed probes) and `traceroute`
//!   observations, the only way Octant is allowed to look at the network,
//! * [`dns`] — ISP-style router naming with embedded city codes and an
//!   `undns`-like parser (with a realistic failure rate),
//! * [`whois`] — an IP-prefix registry with a configurable fraction of stale
//!   or wrong entries,
//! * [`observation`] — the [`observation::ObservationProvider`] trait tying
//!   it all together, plus a recorded [`dataset::MeasurementDataset`] that
//!   can be captured once and replayed,
//! * [`store`] — a streaming [`store::ObservationStore`] with
//!   write-optimized batched indexing, for serving deployments where probe
//!   observations arrive continuously instead of as one frozen capture,
//! * [`scenario`] — a hostile-network scenario engine: a
//!   [`scenario::ScenarioProvider`] wrapper layering seed-deterministic
//!   degradations (diurnal congestion, probe loss and timeouts, landmark
//!   failure windows, latency- and DNS-spoofing adversaries) over any
//!   provider, with every knob default-off and bit-identical passthrough.
//!
//! Everything is seeded: the same seed produces byte-identical measurements,
//! so every figure in the evaluation regenerates exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dataset;
pub mod dns;
pub mod latency;
pub mod observation;
pub mod probe;
pub mod routing;
pub mod scenario;
pub mod store;
pub mod topology;
pub mod whois;

pub use builder::{NetworkBuilder, NetworkConfig};
pub use dataset::MeasurementDataset;
pub use observation::{ObservationProvider, TracerouteHop};
pub use probe::Prober;
pub use scenario::{FailureWindow, ScenarioConfig, ScenarioProvider};
pub use store::{ObservationRecord, ObservationStore, StoreConfig, StoreStats};
pub use topology::{Network, NodeId, NodeKind};
