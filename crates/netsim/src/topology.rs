//! Router-level network topology: nodes, links and adjacency.

use octant_geo::distance::great_circle;
use octant_geo::point::GeoPoint;
use octant_geo::units::{Distance, Latency};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node (host or router) in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The role a node plays in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host (PlanetLab-like measurement node or target).
    Host,
    /// An access/aggregation router close to hosts.
    AccessRouter,
    /// A wide-area backbone router.
    BackboneRouter,
}

/// A node in the simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// Host or router role.
    pub kind: NodeKind,
    /// Ground-truth physical location (never exposed to the localization
    /// algorithms except for designated landmarks).
    pub location: GeoPoint,
    /// Code of the city the node sits in (drives DNS naming and WHOIS).
    pub city_code: String,
    /// The provider ("AS") operating this node; hosts inherit their access
    /// provider.
    pub provider: u8,
    /// DNS hostname of the node.
    pub hostname: String,
    /// Synthetic IPv4 address.
    pub ip: [u8; 4],
    /// Minimum last-mile / processing delay attributable to this node in
    /// milliseconds (the quantity Octant's "height" estimation recovers).
    pub node_delay_ms: f64,
}

/// A bidirectional link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Geographic length of the link (fiber path, slightly longer than the
    /// great-circle distance between the endpoints).
    pub length: Distance,
    /// Routing weight multiplier (inter-provider links are penalized, which
    /// produces policy-driven route inflation).
    pub policy_cost: f64,
}

impl Link {
    /// One-way propagation delay over this link at 2/3 c.
    pub fn propagation_delay(&self) -> Latency {
        Latency::from_ms(self.length.km() / octant_geo::units::FIBER_SPEED_KM_PER_MS)
    }
}

/// The full simulated network: nodes, links and adjacency index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    #[serde(skip)]
    adjacency: HashMap<NodeId, Vec<usize>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a node and returns its id. Node ids are assigned densely in
    /// insertion order.
    #[allow(clippy::too_many_arguments)] // topology construction is inherently wide
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        location: GeoPoint,
        city_code: impl Into<String>,
        provider: u8,
        hostname: impl Into<String>,
        ip: [u8; 4],
        node_delay_ms: f64,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            location,
            city_code: city_code.into(),
            provider,
            hostname: hostname.into(),
            ip,
            node_delay_ms: node_delay_ms.max(0.0),
        });
        id
    }

    /// Adds a bidirectional link. The geographic length is the great-circle
    /// distance between the endpoints multiplied by `path_stretch` (real
    /// fiber never follows the geodesic exactly).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, path_stretch: f64, policy_cost: f64) {
        if a == b || self.find_link(a, b).is_some() {
            return;
        }
        let length =
            great_circle(self.node(a).location, self.node(b).location) * path_stretch.max(1.0);
        let idx = self.links.len();
        self.links.push(Link {
            a,
            b,
            length,
            policy_cost: policy_cost.max(0.0),
        });
        self.adjacency.entry(a).or_default().push(idx);
        self.adjacency.entry(b).or_default().push(idx);
    }

    /// The node with the given id. Panics for unknown ids (ids are dense and
    /// only produced by [`Network::add_node`]).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All host nodes.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| n.id)
            .collect()
    }

    /// All router nodes (access + backbone).
    pub fn routers(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind != NodeKind::Host)
            .map(|n| n.id)
            .collect()
    }

    /// Indices (into [`Network::links`]) of the links incident to `id`.
    pub fn incident_links(&self, id: NodeId) -> &[usize] {
        self.adjacency.get(&id).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The link between `a` and `b`, if one exists.
    pub fn find_link(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        self.adjacency.get(&a).and_then(|idxs| {
            idxs.iter()
                .map(|&i| &self.links[i])
                .find(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
        })
    }

    /// Looks up a host by hostname.
    pub fn host_by_name(&self, hostname: &str) -> Option<&Node> {
        self.nodes
            .iter()
            .find(|n| n.hostname.eq_ignore_ascii_case(hostname))
    }

    /// Looks up a node by IP address.
    pub fn node_by_ip(&self, ip: [u8; 4]) -> Option<&Node> {
        self.nodes.iter().find(|n| n.ip == ip)
    }

    /// Rebuilds the adjacency index; needed after deserializing a network
    /// (the index is not serialized).
    pub fn rebuild_index(&mut self) {
        self.adjacency.clear();
        for (idx, l) in self.links.iter().enumerate() {
            self.adjacency.entry(l.a).or_default().push(idx);
            self.adjacency.entry(l.b).or_default().push(idx);
        }
    }

    /// `true` when every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.nodes[0].id];
        seen[0] = true;
        let mut count = 1;
        while let Some(id) = stack.pop() {
            for &li in self.incident_links(id) {
                let l = self.links[li];
                let other = if l.a == id { l.b } else { l.a };
                let oi = other.0 as usize;
                if !seen[oi] {
                    seen[oi] = true;
                    count += 1;
                    stack.push(other);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_network() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(
            NodeKind::Host,
            GeoPoint::new(42.44, -76.50),
            "ith",
            1,
            "host-a",
            [10, 0, 0, 1],
            3.0,
        );
        let b = net.add_node(
            NodeKind::BackboneRouter,
            GeoPoint::new(40.71, -74.01),
            "nyc",
            1,
            "r1.nyc",
            [10, 0, 0, 2],
            0.1,
        );
        let c = net.add_node(
            NodeKind::Host,
            GeoPoint::new(42.36, -71.06),
            "bos",
            2,
            "host-c",
            [10, 0, 1, 1],
            5.0,
        );
        net.add_link(a, b, 1.1, 1.0);
        net.add_link(b, c, 1.1, 1.0);
        (net, a, b, c)
    }

    #[test]
    fn nodes_and_links_are_registered() {
        let (net, a, b, c) = tiny_network();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 2);
        assert_eq!(net.hosts(), vec![a, c]);
        assert_eq!(net.routers(), vec![b]);
        assert_eq!(net.node(a).city_code, "ith");
        assert!(net.is_connected());
    }

    #[test]
    fn link_geometry_and_propagation() {
        let (net, a, b, _) = tiny_network();
        let l = net.find_link(a, b).unwrap();
        // Ithaca-NYC is ~280 km; with a 1.1 stretch the link is ~310 km.
        assert!(
            l.length.km() > 250.0 && l.length.km() < 350.0,
            "{}",
            l.length
        );
        let d = l.propagation_delay();
        assert!(d.ms() > 1.0 && d.ms() < 2.0, "{d}");
        // The link is registered in both directions.
        assert!(net.find_link(b, a).is_some());
        assert!(net.find_link(a, NodeId(2)).is_none());
    }

    #[test]
    fn duplicate_and_self_links_are_ignored() {
        let (mut net, a, b, _) = tiny_network();
        let before = net.link_count();
        net.add_link(a, b, 1.1, 1.0);
        net.add_link(a, a, 1.1, 1.0);
        assert_eq!(net.link_count(), before);
    }

    #[test]
    fn lookups() {
        let (net, a, _, _) = tiny_network();
        assert_eq!(net.host_by_name("HOST-A").unwrap().id, a);
        assert!(net.host_by_name("missing").is_none());
        assert_eq!(net.node_by_ip([10, 0, 0, 1]).unwrap().id, a);
        assert!(net.node_by_ip([8, 8, 8, 8]).is_none());
    }

    #[test]
    fn connectivity_detects_partitions() {
        let mut net = Network::new();
        let a = net.add_node(
            NodeKind::Host,
            GeoPoint::new(0.0, 0.0),
            "nyc",
            1,
            "a",
            [1, 1, 1, 1],
            1.0,
        );
        let b = net.add_node(
            NodeKind::Host,
            GeoPoint::new(1.0, 1.0),
            "nyc",
            1,
            "b",
            [1, 1, 1, 2],
            1.0,
        );
        let _c = net.add_node(
            NodeKind::Host,
            GeoPoint::new(2.0, 2.0),
            "nyc",
            1,
            "c",
            [1, 1, 1, 3],
            1.0,
        );
        net.add_link(a, b, 1.0, 1.0);
        assert!(!net.is_connected());
        assert!(
            Network::new().is_connected(),
            "the empty network is trivially connected"
        );
    }

    #[test]
    fn rebuild_index_restores_adjacency() {
        let (mut net, a, b, _) = tiny_network();
        net.adjacency.clear();
        assert!(net.incident_links(a).is_empty());
        net.rebuild_index();
        assert_eq!(net.incident_links(a).len(), 1);
        assert_eq!(net.incident_links(b).len(), 2);
    }

    #[test]
    fn negative_node_delay_is_clamped() {
        let mut net = Network::new();
        let id = net.add_node(
            NodeKind::Host,
            GeoPoint::new(0.0, 0.0),
            "nyc",
            1,
            "x",
            [1, 2, 3, 4],
            -5.0,
        );
        assert_eq!(net.node(id).node_delay_ms, 0.0);
    }
}
