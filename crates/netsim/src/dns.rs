//! ISP-style router naming and an `undns`-like reverse parser.
//!
//! Real ISPs encode the point of presence into router interface names
//! (`so-3-0-0.cr2.nyc4.example.net`); the Rocketfuel `undns` tool the paper
//! uses maps such names back to cities. This module generates names in that
//! style — with a configurable fraction of routers that have opaque,
//! unparsable names — and provides the parser that Octant's piecewise
//! localization (§2.3) and the GeoTrack baseline rely on.

use octant_geo::cities::{self, City};
use rand::Rng;

/// Interface-name prefixes observed in real ISP naming schemes.
const INTERFACE_PREFIXES: &[&str] = &["so", "ge", "xe", "ae", "et", "pos"];

/// Role labels for routers.
const ROLE_LABELS: &[&str] = &["cr", "br", "gw", "ar", "er"];

/// Generates a router hostname. When `reveal_city` draws true (probability
/// `1 - undns_miss_rate`), the city code is embedded as its own DNS label so
/// [`parse_router_city`] can recover it; otherwise an opaque name is
/// produced.
///
/// `backbone` routers get core-router style names, access routers get
/// gateway-style names; both follow the same city-label convention.
pub fn router_hostname<R: Rng + ?Sized>(
    city_code: &str,
    provider: u8,
    index: u32,
    backbone: bool,
    rng: &mut R,
    undns_miss_rate: f64,
) -> String {
    let iface = INTERFACE_PREFIXES[rng.gen_range(0..INTERFACE_PREFIXES.len())];
    let slot: u8 = rng.gen_range(0..8);
    let port: u8 = rng.gen_range(0..4);
    let role = if backbone {
        ROLE_LABELS[rng.gen_range(0..2)]
    } else {
        ROLE_LABELS[2 + rng.gen_range(0..3)]
    };
    let unit: u8 = rng.gen_range(1..5);
    let reveal_city = !rng.gen_bool(undns_miss_rate.clamp(0.0, 1.0));
    if reveal_city {
        format!(
            "{iface}-{slot}-0-{port}.{role}{unit}.{}.as{}.octantsim.net",
            city_code.to_ascii_lowercase(),
            provider_asn(provider)
        )
    } else {
        format!(
            "core{index}.unk{unit}.as{}.octantsim.net",
            provider_asn(provider)
        )
    }
}

/// The synthetic AS number of a provider.
pub fn provider_asn(provider: u8) -> u32 {
    64500 + provider as u32
}

/// Generates an ISP-customer-style hostname that embeds the customer's city
/// code as its own DNS label (`cpe-12.nyc.res.as64502.octantsim.net`) — the
/// reverse-DNS naming many access ISPs use, which Octant's `DnsNameSource`
/// parses with [`parse_router_city`]. Deterministic (no RNG draws), so the
/// builder's `host_dns_city_rate` knob costs exactly one RNG draw per host.
pub fn customer_hostname(city_code: &str, provider: u8, index: usize) -> String {
    format!(
        "cpe-{index}.{}.res.as{}.octantsim.net",
        city_code.to_ascii_lowercase(),
        provider_asn(provider)
    )
}

/// Attempts to recover the city a router resides in from its DNS name, the
/// way `undns` does: scan the dot-separated labels for a known city code.
/// Returns `None` for opaque names or names whose code is not in the city
/// table.
pub fn parse_router_city(hostname: &str) -> Option<&'static City> {
    for label in hostname.split('.') {
        let label = label.trim().to_ascii_lowercase();
        if label.is_empty() || label.len() > 4 {
            continue;
        }
        if let Some(city) = cities::by_code(&label) {
            return Some(city);
        }
    }
    None
}

/// Convenience: does this hostname reveal any city at all?
pub fn reveals_city(hostname: &str) -> bool {
    parse_router_city(hostname).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn revealing_names_round_trip_to_their_city() {
        let mut rng = StdRng::seed_from_u64(1);
        for code in ["nyc", "lhr", "sea", "fra", "nrt"] {
            let name = router_hostname(code, 2, 7, true, &mut rng, 0.0);
            let city = parse_router_city(&name).unwrap_or_else(|| panic!("{name} should parse"));
            assert_eq!(city.code, code, "{name}");
            assert!(reveals_city(&name));
        }
    }

    #[test]
    fn opaque_names_do_not_parse() {
        let mut rng = StdRng::seed_from_u64(2);
        let name = router_hostname("nyc", 1, 3, true, &mut rng, 1.0);
        assert!(
            parse_router_city(&name).is_none(),
            "{name} should be opaque"
        );
        assert!(!reveals_city(&name));
    }

    #[test]
    fn miss_rate_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let misses = (0..n)
            .filter(|i| {
                let name = router_hostname("chi", 0, *i, *i % 2 == 0, &mut rng, 0.25);
                parse_router_city(&name).is_none()
            })
            .count();
        let rate = misses as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "observed miss rate {rate}");
    }

    #[test]
    fn parser_ignores_unknown_and_long_labels() {
        assert!(parse_router_city("totally.opaque.example.com").is_none());
        assert!(parse_router_city("").is_none());
        // A label that happens to be a known code embedded in a real-ish name.
        let c = parse_router_city("xe-1-0-0.gw3.lhr.as64501.octantsim.net").unwrap();
        assert_eq!(c.name, "London");
    }

    #[test]
    fn provider_asns_are_distinct() {
        assert_ne!(provider_asn(0), provider_asn(1));
        assert!(provider_asn(3) >= 64500);
    }

    #[test]
    fn customer_hostnames_embed_a_parsable_city() {
        let name = customer_hostname("NYC", 2, 17);
        assert_eq!(name, "cpe-17.nyc.res.as64502.octantsim.net");
        let city = parse_router_city(&name).expect("customer names must parse");
        assert_eq!(city.code, "nyc");
    }

    #[test]
    fn parsing_is_case_insensitive() {
        let c = parse_router_city("SO-1-2-3.CR1.NYC.AS64500.OCTANTSIM.NET").unwrap();
        assert_eq!(c.code, "nyc");
    }
}
