//! Streaming observation ingest: a write-optimized measurement store.
//!
//! [`crate::MeasurementDataset`] is a frozen snapshot — the paper's
//! collect-once, evaluate-forever shape. A production deployment looks
//! different: probe observations arrive *continuously*, and the serving
//! tier wants a consistent view of "everything observed so far" at model
//! refresh time without pausing ingest. [`ObservationStore`] is that write
//! path, organized the way TWIAD organizes its IP address database:
//!
//! * **appends are cheap** — [`ObservationStore::ingest`] pushes records
//!   into a small unsorted in-memory buffer and returns;
//! * **the buffer merges into a sorted per-pair index in amortized
//!   batches** — when the buffer exceeds [`StoreConfig::flush_threshold`],
//!   one linear merge folds it into the sorted run the lookups binary-search
//!   (so a lookup never scans more than one bounded buffer);
//! * **reads see every write** — the store implements
//!   [`ObservationProvider`] directly (lookups consult buffer + index), and
//!   [`ObservationStore::snapshot_dataset`] materializes a
//!   [`MeasurementDataset`] view of the current version for replay-stable
//!   model preparation.
//!
//! Every ingest batch bumps a monotonically increasing **version**; the
//! store remembers, per node, the last version that touched its observation
//! set, so a model-refresh loop can ask
//! [`ObservationStore::changed_since`] for exactly the landmarks whose
//! calibration inputs may have moved — the driver of
//! `Octant::prepare_landmarks_incremental` in `octant-core`.
//!
//! Conflicting observations of one key (the same directed pair probed
//! twice) resolve **last-writer-wins by the record's `seq`** — a
//! caller-supplied logical observation time — with a deterministic
//! value-based tie-break, so the merged state is a pure function of the
//! ingested record *set*, independent of batching and arrival order. That
//! order-independence is what makes "streaming ingest in shuffled batches"
//! bit-identical to a frozen capture.

use crate::dataset::{DatasetHost, MeasurementDataset};
use crate::observation::{HostDescriptor, ObservationProvider, PingObservation, TracerouteHop};
use crate::topology::NodeId;
use octant_geo::point::GeoPoint;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Sizing knobs of an [`ObservationStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct StoreConfig {
    /// Buffered records that trigger an amortized merge into the sorted
    /// index. Larger values make ingest cheaper (fewer merges) and lookups
    /// slightly dearer (the unsorted buffer is scanned linearly).
    pub flush_threshold: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            flush_threshold: 256,
        }
    }
}

impl StoreConfig {
    /// Sets the buffered-record count that triggers an index merge.
    #[must_use]
    pub fn with_flush_threshold(mut self, flush_threshold: usize) -> Self {
        self.flush_threshold = flush_threshold;
        self
    }
}

/// One streamed observation. `seq` is the caller's logical observation time:
/// among records for the same key, the highest `seq` wins (ties resolve by a
/// deterministic value comparison), so ingest order never changes the merged
/// state.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ObservationRecord {
    /// A host announcement (or update) with its advertised location.
    Host {
        /// The host's descriptor (id, hostname, IP).
        descriptor: HostDescriptor,
        /// The host's advertised (ground-truth) location.
        location: GeoPoint,
        /// Logical observation time.
        seq: u64,
    },
    /// A ping observation for one directed pair.
    Ping {
        /// Probe source.
        from: NodeId,
        /// Probe destination.
        to: NodeId,
        /// The answered RTT samples.
        observation: PingObservation,
        /// Logical observation time.
        seq: u64,
    },
    /// A traceroute for one directed pair.
    Traceroute {
        /// Traceroute source.
        from: NodeId,
        /// Traceroute destination.
        to: NodeId,
        /// The intermediate hops.
        hops: Vec<TracerouteHop>,
        /// Logical observation time.
        seq: u64,
    },
    /// A reverse-DNS binding for an address.
    ReverseDns {
        /// The address.
        ip: [u8; 4],
        /// Its DNS name.
        hostname: String,
        /// Logical observation time.
        seq: u64,
    },
    /// A WHOIS registration row for an address.
    Whois {
        /// The address.
        ip: [u8; 4],
        /// The registered city code.
        city: String,
        /// Logical observation time.
        seq: u64,
    },
    /// An IP → node binding (normally implied by `Host`/`Traceroute`
    /// records, available standalone for replaying captures).
    IpBinding {
        /// The address.
        ip: [u8; 4],
        /// The node answering at it.
        node: NodeId,
        /// Logical observation time.
        seq: u64,
    },
}

impl ObservationRecord {
    /// Decomposes a frozen [`MeasurementDataset`] into the record stream
    /// that reproduces it, stamping every record with `seq`. Useful for
    /// seeding a store from a capture (and for ingest-parity tests, which
    /// shuffle and re-batch the result).
    pub fn from_dataset(dataset: &MeasurementDataset, seq: u64) -> Vec<ObservationRecord> {
        let mut records = Vec::new();
        for host in &dataset.hosts {
            records.push(ObservationRecord::Host {
                descriptor: host.descriptor.clone(),
                location: host.true_location,
                seq,
            });
        }
        for (&(from, to), observation) in &dataset.pings {
            records.push(ObservationRecord::Ping {
                from,
                to,
                observation: observation.clone(),
                seq,
            });
        }
        for (&(from, to), hops) in &dataset.traceroutes {
            records.push(ObservationRecord::Traceroute {
                from,
                to,
                hops: hops.clone(),
                seq,
            });
        }
        for (&ip, hostname) in &dataset.dns {
            records.push(ObservationRecord::ReverseDns {
                ip,
                hostname: hostname.clone(),
                seq,
            });
        }
        for (&ip, city) in &dataset.whois {
            records.push(ObservationRecord::Whois {
                ip,
                city: city.clone(),
                seq,
            });
        }
        for (&ip, &node) in &dataset.ip_to_node {
            records.push(ObservationRecord::IpBinding { ip, node, seq });
        }
        records
    }
}

/// A point-in-time gauge of the store's internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct StoreStats {
    /// Current store version (bumped once per ingest batch).
    pub version: u64,
    /// Hosts known to the store.
    pub hosts: usize,
    /// Ping records resident in the sorted index.
    pub indexed_pings: usize,
    /// Ping records waiting in the unsorted write buffer.
    pub buffered_pings: usize,
    /// Traceroute records resident in the sorted index.
    pub indexed_traceroutes: usize,
    /// Traceroute records waiting in the unsorted write buffer.
    pub buffered_traceroutes: usize,
    /// Amortized buffer → index merges performed.
    pub merges: u64,
    /// Records folded into the index across all merges.
    pub merged_records: u64,
}

#[derive(Debug, Clone)]
struct PingEntry {
    from: NodeId,
    to: NodeId,
    seq: u64,
    observation: PingObservation,
}

#[derive(Debug, Clone)]
struct TraceEntry {
    from: NodeId,
    to: NodeId,
    seq: u64,
    hops: Vec<TracerouteHop>,
}

/// Total-order rank of a ping observation, used only to break exact `seq`
/// ties deterministically (so the winner is a function of the record set,
/// not of arrival order).
fn ping_rank(observation: &PingObservation) -> Vec<u64> {
    observation
        .samples
        .iter()
        .map(|l| l.ms().to_bits())
        .collect()
}

/// Same idea for traceroutes: rank by the hop walk.
fn trace_rank(hops: &[TracerouteHop]) -> Vec<u64> {
    hops.iter()
        .flat_map(|h| [h.node.0 as u64, h.rtt.ms().to_bits()])
        .collect()
}

#[derive(Debug, Default)]
struct StoreInner {
    version: u64,
    hosts: Vec<(u64, DatasetHost)>,
    host_slots: HashMap<NodeId, usize>,
    ping_index: Vec<PingEntry>,
    ping_buffer: Vec<PingEntry>,
    trace_index: Vec<TraceEntry>,
    trace_buffer: Vec<TraceEntry>,
    dns: HashMap<[u8; 4], (u64, String)>,
    whois: HashMap<[u8; 4], (u64, String)>,
    ip_to_node: HashMap<[u8; 4], (u64, NodeId)>,
    touched: HashMap<NodeId, u64>,
    merges: u64,
    merged_records: u64,
}

impl StoreInner {
    fn touch(&mut self, node: NodeId) {
        self.touched.insert(node, self.version);
    }

    /// Folds the write buffers into the sorted indexes: one sort of the
    /// buffer plus one linear merge with the (already sorted, unique-keyed)
    /// index — the amortized TWIAD-style batch write.
    fn flush(&mut self) {
        self.merged_records += (self.ping_buffer.len() + self.trace_buffer.len()) as u64;
        if !self.ping_buffer.is_empty() {
            let mut buffer = std::mem::take(&mut self.ping_buffer);
            buffer.sort_by(|a, b| {
                ((a.from, a.to), a.seq, ping_rank(&a.observation)).cmp(&(
                    (b.from, b.to),
                    b.seq,
                    ping_rank(&b.observation),
                ))
            });
            // Last entry per key is the winner within the buffer.
            buffer.reverse();
            buffer.dedup_by_key(|e| (e.from, e.to));
            buffer.reverse();
            self.ping_index = merge_runs(
                std::mem::take(&mut self.ping_index),
                buffer,
                |e| (e.from, e.to),
                |a, b| (a.seq, ping_rank(&a.observation)) >= (b.seq, ping_rank(&b.observation)),
            );
            self.merges += 1;
        }
        if !self.trace_buffer.is_empty() {
            let mut buffer = std::mem::take(&mut self.trace_buffer);
            buffer.sort_by(|a, b| {
                ((a.from, a.to), a.seq, trace_rank(&a.hops)).cmp(&(
                    (b.from, b.to),
                    b.seq,
                    trace_rank(&b.hops),
                ))
            });
            buffer.reverse();
            buffer.dedup_by_key(|e| (e.from, e.to));
            buffer.reverse();
            self.trace_index = merge_runs(
                std::mem::take(&mut self.trace_index),
                buffer,
                |e| (e.from, e.to),
                |a, b| (a.seq, trace_rank(&a.hops)) >= (b.seq, trace_rank(&b.hops)),
            );
            self.merges += 1;
        }
    }

    /// The winning ping entry for a key across index and buffer.
    fn ping_lookup(&self, from: NodeId, to: NodeId) -> Option<&PingEntry> {
        let mut best: Option<&PingEntry> = self
            .ping_index
            .binary_search_by(|e| (e.from, e.to).cmp(&(from, to)))
            .ok()
            .map(|i| &self.ping_index[i]);
        for e in self
            .ping_buffer
            .iter()
            .filter(|e| e.from == from && e.to == to)
        {
            best = Some(match best {
                Some(b)
                    if (b.seq, ping_rank(&b.observation)) >= (e.seq, ping_rank(&e.observation)) =>
                {
                    b
                }
                _ => e,
            });
        }
        best
    }

    /// The winning traceroute entry for a key across index and buffer.
    fn trace_lookup(&self, from: NodeId, to: NodeId) -> Option<&TraceEntry> {
        let mut best: Option<&TraceEntry> = self
            .trace_index
            .binary_search_by(|e| (e.from, e.to).cmp(&(from, to)))
            .ok()
            .map(|i| &self.trace_index[i]);
        for e in self
            .trace_buffer
            .iter()
            .filter(|e| e.from == from && e.to == to)
        {
            best = Some(match best {
                Some(b) if (b.seq, trace_rank(&b.hops)) >= (e.seq, trace_rank(&e.hops)) => b,
                _ => e,
            });
        }
        best
    }

    /// Hosts sorted by id — a deterministic, arrival-order-independent view.
    fn sorted_hosts(&self) -> Vec<DatasetHost> {
        let mut hosts: Vec<DatasetHost> = self.hosts.iter().map(|(_, h)| h.clone()).collect();
        hosts.sort_by_key(|h| h.descriptor.id);
        hosts
    }
}

/// Merges two sorted unique-keyed runs; on a shared key, `wins(a, b)` picks
/// whether the left (index) entry beats the right (buffer) one.
fn merge_runs<T, K: Ord>(
    left: Vec<T>,
    right: Vec<T>,
    key: impl Fn(&T) -> K,
    wins: impl Fn(&T, &T) -> bool,
) -> Vec<T> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut l = left.into_iter().peekable();
    let mut r = right.into_iter().peekable();
    loop {
        match (l.peek(), r.peek()) {
            (Some(a), Some(b)) => match key(a).cmp(&key(b)) {
                std::cmp::Ordering::Less => out.push(l.next().expect("peeked")),
                std::cmp::Ordering::Greater => out.push(r.next().expect("peeked")),
                std::cmp::Ordering::Equal => {
                    let a = l.next().expect("peeked");
                    let b = r.next().expect("peeked");
                    out.push(if wins(&a, &b) { a } else { b });
                }
            },
            (Some(_), None) => out.push(l.next().expect("peeked")),
            (None, Some(_)) => out.push(r.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

/// The streaming measurement store. See the module docs for the write-path
/// design; the store is an [`ObservationProvider`] (reads see every write)
/// and can materialize a frozen [`MeasurementDataset`] view at any version
/// via [`ObservationStore::snapshot_dataset`].
#[derive(Debug, Default)]
pub struct ObservationStore {
    config: StoreConfig,
    inner: RwLock<StoreInner>,
}

impl ObservationStore {
    /// Creates an empty store with the given configuration.
    pub fn new(config: StoreConfig) -> Self {
        ObservationStore {
            config,
            inner: RwLock::new(StoreInner::default()),
        }
    }

    /// Creates a store pre-seeded with a frozen capture (one ingest batch of
    /// the dataset's records at `seq` 0).
    pub fn from_dataset(config: StoreConfig, dataset: &MeasurementDataset) -> Self {
        let store = ObservationStore::new(config);
        store.ingest(ObservationRecord::from_dataset(dataset, 0));
        store
    }

    /// The configuration in use.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Ingests one batch of records: appends into the write buffer (merging
    /// into the sorted index only when the buffer exceeds the flush
    /// threshold), records which nodes' observation sets the batch touched,
    /// and bumps the store version. Returns the new version.
    pub fn ingest(&self, records: impl IntoIterator<Item = ObservationRecord>) -> u64 {
        let mut inner = self.inner.write();
        inner.version += 1;
        for record in records {
            match record {
                ObservationRecord::Host {
                    descriptor,
                    location,
                    seq,
                } => {
                    let id = descriptor.id;
                    let host = DatasetHost {
                        descriptor,
                        true_location: location,
                    };
                    match inner.host_slots.get(&id).copied() {
                        Some(slot) => {
                            let (cur_seq, _) = inner.hosts[slot];
                            if seq >= cur_seq {
                                inner.hosts[slot] = (seq, host);
                            }
                        }
                        None => {
                            inner.hosts.push((seq, host));
                            let slot = inner.hosts.len() - 1;
                            inner.host_slots.insert(id, slot);
                        }
                    }
                    let ip = inner.hosts[inner.host_slots[&id]].1.descriptor.ip;
                    let entry = inner.ip_to_node.entry(ip).or_insert((seq, id));
                    if seq >= entry.0 {
                        *entry = (seq, id);
                    }
                    inner.touch(id);
                }
                ObservationRecord::Ping {
                    from,
                    to,
                    observation,
                    seq,
                } => {
                    inner.ping_buffer.push(PingEntry {
                        from,
                        to,
                        seq,
                        observation,
                    });
                    // The prober owns its measurements: a record under key
                    // (from, to) can only change lookups whose key starts at
                    // `from`, so marking `from` alone keeps `changed_since`
                    // tight enough for incremental recalibration to skip
                    // untouched landmarks' pairs.
                    inner.touch(from);
                }
                ObservationRecord::Traceroute {
                    from,
                    to,
                    hops,
                    seq,
                } => {
                    for hop in &hops {
                        let entry = inner.ip_to_node.entry(hop.ip).or_insert((seq, hop.node));
                        if seq >= entry.0 {
                            *entry = (seq, hop.node);
                        }
                        inner
                            .dns
                            .entry(hop.ip)
                            .or_insert_with(|| (seq, hop.hostname.clone()));
                    }
                    inner.trace_buffer.push(TraceEntry {
                        from,
                        to,
                        seq,
                        hops,
                    });
                    inner.touch(from);
                }
                ObservationRecord::ReverseDns { ip, hostname, seq } => {
                    let entry = inner.dns.entry(ip).or_insert((seq, hostname.clone()));
                    if seq >= entry.0 {
                        *entry = (seq, hostname);
                    }
                }
                ObservationRecord::Whois { ip, city, seq } => {
                    let entry = inner.whois.entry(ip).or_insert((seq, city.clone()));
                    if seq >= entry.0 {
                        *entry = (seq, city);
                    }
                }
                ObservationRecord::IpBinding { ip, node, seq } => {
                    let entry = inner.ip_to_node.entry(ip).or_insert((seq, node));
                    if seq >= entry.0 {
                        *entry = (seq, node);
                    }
                }
            }
        }
        if inner.ping_buffer.len() + inner.trace_buffer.len() >= self.config.flush_threshold {
            inner.flush();
        }
        inner.version
    }

    /// Forces the write buffers into the sorted indexes (benchmarks call
    /// this to measure steady-state lookups; correctness never needs it).
    pub fn flush(&self) {
        self.inner.write().flush();
    }

    /// The current store version (0 before the first ingest).
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// Node ids whose observation set was touched by any ingest batch with a
    /// version **greater than** `version`, in ascending id order — the
    /// changed-landmark set an incremental recalibration feeds on. Pings and
    /// traceroutes are attributed to their **prober** (`from`): every stored
    /// key the batch may have changed starts at a returned node, so pair
    /// lookups from unreturned nodes are guaranteed unchanged.
    pub fn changed_since(&self, version: u64) -> Vec<NodeId> {
        let inner = self.inner.read();
        let mut changed: Vec<NodeId> = inner
            .touched
            .iter()
            .filter(|(_, &v)| v > version)
            .map(|(&id, _)| id)
            .collect();
        changed.sort_unstable();
        changed
    }

    /// Materializes a frozen [`MeasurementDataset`] view of the store's
    /// current state (hosts in ascending id order; per-key winners by
    /// `seq`). The view is replay-stable and independent of how the records
    /// were batched or ordered at ingest time.
    pub fn snapshot_dataset(&self) -> MeasurementDataset {
        let inner = self.inner.read();
        let mut ds = MeasurementDataset {
            hosts: inner.sorted_hosts(),
            ..MeasurementDataset::default()
        };
        for key_entry in &inner.ping_index {
            // Buffered entries may supersede indexed ones; route every key
            // through the winner lookup.
            let e = inner
                .ping_lookup(key_entry.from, key_entry.to)
                .expect("indexed key resolves");
            ds.pings.insert((e.from, e.to), e.observation.clone());
        }
        for e in &inner.ping_buffer {
            let w = inner
                .ping_lookup(e.from, e.to)
                .expect("buffered key resolves");
            ds.pings.insert((w.from, w.to), w.observation.clone());
        }
        for key_entry in &inner.trace_index {
            let e = inner
                .trace_lookup(key_entry.from, key_entry.to)
                .expect("indexed key resolves");
            ds.traceroutes.insert((e.from, e.to), e.hops.clone());
        }
        for e in &inner.trace_buffer {
            let w = inner
                .trace_lookup(e.from, e.to)
                .expect("buffered key resolves");
            ds.traceroutes.insert((w.from, w.to), w.hops.clone());
        }
        for (&ip, (_, name)) in &inner.dns {
            ds.dns.insert(ip, name.clone());
        }
        for (&ip, (_, city)) in &inner.whois {
            ds.whois.insert(ip, city.clone());
        }
        for (&ip, &(_, node)) in &inner.ip_to_node {
            ds.ip_to_node.insert(ip, node);
        }
        ds
    }

    /// A point-in-time gauge of the store internals.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.read();
        StoreStats {
            version: inner.version,
            hosts: inner.hosts.len(),
            indexed_pings: inner.ping_index.len(),
            buffered_pings: inner.ping_buffer.len(),
            indexed_traceroutes: inner.trace_index.len(),
            buffered_traceroutes: inner.trace_buffer.len(),
            merges: inner.merges,
            merged_records: inner.merged_records,
        }
    }
}

impl ObservationProvider for ObservationStore {
    fn hosts(&self) -> Vec<HostDescriptor> {
        self.inner
            .read()
            .sorted_hosts()
            .into_iter()
            .map(|h| h.descriptor)
            .collect()
    }

    fn ping(&self, from: NodeId, to: NodeId) -> PingObservation {
        self.inner
            .read()
            .ping_lookup(from, to)
            .map(|e| e.observation.clone())
            .unwrap_or_default()
    }

    fn traceroute(&self, from: NodeId, to: NodeId) -> Vec<TracerouteHop> {
        self.inner
            .read()
            .trace_lookup(from, to)
            .map(|e| e.hops.clone())
            .unwrap_or_default()
    }

    fn node_by_ip(&self, ip: [u8; 4]) -> Option<NodeId> {
        self.inner.read().ip_to_node.get(&ip).map(|&(_, node)| node)
    }

    fn reverse_dns(&self, ip: [u8; 4]) -> Option<String> {
        self.inner.read().dns.get(&ip).map(|(_, name)| name.clone())
    }

    fn whois_city(&self, ip: [u8; 4]) -> Option<String> {
        self.inner
            .read()
            .whois
            .get(&ip)
            .map(|(_, city)| city.clone())
    }

    fn advertised_location(&self, id: NodeId) -> Option<GeoPoint> {
        let inner = self.inner.read();
        inner
            .host_slots
            .get(&id)
            .map(|&slot| inner.hosts[slot].1.true_location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use crate::latency::LatencyModel;
    use crate::probe::Prober;
    use octant_geo::sites;
    use octant_geo::units::Latency;

    fn capture(n: usize, seed: u64) -> MeasurementDataset {
        let mut builder = NetworkBuilder::new(NetworkConfig {
            seed,
            ..NetworkConfig::default()
        });
        for site in sites::planetlab_51().iter().take(n) {
            builder = builder.add_host(HostSpec::from_site(site));
        }
        MeasurementDataset::capture(&Prober::with_options(
            builder.build(),
            LatencyModel::default(),
            0.1,
            5,
            seed,
        ))
    }

    #[test]
    fn streamed_capture_replays_identically() {
        let ds = capture(6, 11);
        let store = ObservationStore::from_dataset(StoreConfig::default(), &ds);
        let hosts = ds.host_ids();
        for &a in &hosts {
            for &b in &hosts {
                assert_eq!(store.ping(a, b), ds.ping(a, b));
                assert_eq!(store.traceroute(a, b), ds.traceroute(a, b));
            }
            assert_eq!(store.advertised_location(a), ds.advertised_location(a));
        }
        let snap = store.snapshot_dataset();
        assert_eq!(snap.ping_count(), ds.ping_count());
        assert_eq!(snap.traceroute_count(), ds.traceroute_count());
    }

    #[test]
    fn shuffled_batches_converge_to_the_same_state() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let ds = capture(6, 13);
        let mut records = ObservationRecord::from_dataset(&ds, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        records.shuffle(&mut rng);
        // Tiny flush threshold: many amortized merges along the way.
        let store = ObservationStore::new(StoreConfig::default().with_flush_threshold(16));
        for chunk in records.chunks(37) {
            store.ingest(chunk.to_vec());
        }
        assert!(store.stats().merges > 1, "merges must amortize");
        let hosts = ds.host_ids();
        for &a in &hosts {
            for &b in &hosts {
                assert_eq!(store.ping(a, b), ds.ping(a, b));
            }
        }
        // The snapshot view carries the identical observation content.
        let snap = store.snapshot_dataset();
        for &a in &hosts {
            for &b in &hosts {
                assert_eq!(snap.ping(a, b), ds.ping(a, b));
                assert_eq!(snap.traceroute(a, b), ds.traceroute(a, b));
            }
        }
    }

    #[test]
    fn later_seq_wins_regardless_of_ingest_order() {
        let store = ObservationStore::new(StoreConfig::default().with_flush_threshold(2));
        let old = PingObservation::new(vec![Latency::from_ms(10.0)]);
        let new = PingObservation::new(vec![Latency::from_ms(20.0)]);
        let rec = |obs: &PingObservation, seq| ObservationRecord::Ping {
            from: NodeId(1),
            to: NodeId(2),
            observation: obs.clone(),
            seq,
        };
        // Newer first, older second: the older record must not clobber.
        store.ingest(vec![rec(&new, 5)]);
        store.ingest(vec![rec(&old, 3)]);
        assert_eq!(store.ping(NodeId(1), NodeId(2)), new);
        // And the reverse order lands in the same state.
        let store2 = ObservationStore::new(StoreConfig::default().with_flush_threshold(2));
        store2.ingest(vec![rec(&old, 3)]);
        store2.ingest(vec![rec(&new, 5)]);
        assert_eq!(store2.ping(NodeId(1), NodeId(2)), new);
    }

    #[test]
    fn changed_since_tracks_touched_nodes_per_version() {
        let store = ObservationStore::new(StoreConfig::default());
        let v1 = store.ingest(vec![ObservationRecord::Ping {
            from: NodeId(1),
            to: NodeId(2),
            observation: PingObservation::new(vec![Latency::from_ms(5.0)]),
            seq: 1,
        }]);
        let v2 = store.ingest(vec![ObservationRecord::Ping {
            from: NodeId(2),
            to: NodeId(3),
            observation: PingObservation::new(vec![Latency::from_ms(6.0)]),
            seq: 2,
        }]);
        assert!(v2 > v1);
        assert_eq!(store.changed_since(v2), vec![]);
        // Pings are attributed to the prober, not the destination.
        assert_eq!(store.changed_since(v1), vec![NodeId(2)]);
        assert_eq!(store.changed_since(0), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn reads_see_buffered_writes_before_any_flush() {
        // Huge threshold: nothing ever merges, reads still see the write.
        let store = ObservationStore::new(StoreConfig::default().with_flush_threshold(1_000_000));
        store.ingest(vec![ObservationRecord::Ping {
            from: NodeId(7),
            to: NodeId(8),
            observation: PingObservation::new(vec![Latency::from_ms(9.0)]),
            seq: 1,
        }]);
        assert_eq!(store.stats().indexed_pings, 0);
        assert_eq!(store.stats().buffered_pings, 1);
        assert_eq!(
            store.ping(NodeId(7), NodeId(8)).min(),
            Some(Latency::from_ms(9.0))
        );
    }
}
