//! The end-to-end latency model.
//!
//! A round-trip measurement over a routed path is composed of:
//!
//! * **propagation** — twice the path's fiber length at 2/3 c (the only
//!   component that carries geographic information),
//! * **deterministic node delays** — every node on the path contributes its
//!   `node_delay_ms` (hosts carry a last-mile delay of several milliseconds,
//!   routers a fraction of a millisecond). This is the *minimum queuing
//!   delay* that Octant's height computation (§2.2) estimates and removes,
//! * **stochastic jitter** — per-probe exponential queuing noise plus
//!   occasional congestion spikes. Taking the minimum over several
//!   time-dispersed probes (as the paper does) suppresses most of it.

use crate::routing::Path;
use crate::topology::Network;
use octant_geo::units::Latency;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the stochastic part of the latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Mean of the per-probe exponential jitter, in milliseconds.
    pub jitter_mean_ms: f64,
    /// Probability that a probe hits a congestion episode.
    pub spike_probability: f64,
    /// Mean additional delay of a congestion episode, in milliseconds.
    pub spike_mean_ms: f64,
    /// Probability that a probe is lost entirely (no answer).
    pub loss_probability: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            jitter_mean_ms: 1.5,
            spike_probability: 0.08,
            spike_mean_ms: 25.0,
            loss_probability: 0.01,
        }
    }
}

impl LatencyModel {
    /// A noise-free model: probes measure exactly the deterministic floor.
    pub fn noiseless() -> Self {
        LatencyModel {
            jitter_mean_ms: 0.0,
            spike_probability: 0.0,
            spike_mean_ms: 0.0,
            loss_probability: 0.0,
        }
    }

    /// Returns the model with every parameter forced into its valid range:
    /// probabilities clamped to `[0, 1]`, means floored at `0`.
    ///
    /// Call this once at construction time (the [`crate::probe::Prober`]
    /// does); [`LatencyModel::rtt_sample`] then only debug-asserts validity
    /// instead of re-clamping on every probe.
    pub fn normalized(mut self) -> Self {
        self.jitter_mean_ms = self.jitter_mean_ms.max(0.0);
        self.spike_probability = self.spike_probability.clamp(0.0, 1.0);
        self.spike_mean_ms = self.spike_mean_ms.max(0.0);
        self.loss_probability = self.loss_probability.clamp(0.0, 1.0);
        self
    }

    /// The deterministic floor of the round-trip time over `path`: twice the
    /// propagation delay plus every on-path node's minimum delay.
    pub fn rtt_floor(&self, net: &Network, path: &Path) -> Latency {
        let mut ms = 2.0 * path.propagation.ms();
        for &n in &path.nodes {
            ms += net.node(n).node_delay_ms;
        }
        Latency::from_ms(ms)
    }

    /// One probe's round-trip time: the floor plus sampled jitter. Returns
    /// `None` when the probe is lost.
    pub fn rtt_sample<R: Rng + ?Sized>(
        &self,
        net: &Network,
        path: &Path,
        rng: &mut R,
    ) -> Option<Latency> {
        debug_assert!(
            (0.0..=1.0).contains(&self.loss_probability)
                && (0.0..=1.0).contains(&self.spike_probability),
            "probabilities out of range — construct through LatencyModel::normalized"
        );
        if self.loss_probability > 0.0 && rng.gen_bool(self.loss_probability) {
            return None;
        }
        let mut ms = self.rtt_floor(net, path).ms();
        ms += sample_exponential(rng, self.jitter_mean_ms);
        if self.spike_probability > 0.0 && rng.gen_bool(self.spike_probability) {
            ms += sample_exponential(rng, self.spike_mean_ms);
        }
        Some(Latency::from_ms(ms))
    }
}

/// Sample from an exponential distribution with the given mean (0 mean yields
/// 0).
fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetworkBuilder, NetworkConfig};
    use crate::routing::RouteTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Network, Path) {
        let net = NetworkBuilder::planetlab(NetworkConfig::default()).build();
        let hosts = net.hosts();
        let mut table = RouteTable::new();
        let path = table.route(&net, hosts[0], hosts[25]).unwrap();
        (net, path)
    }

    #[test]
    fn floor_includes_propagation_and_node_delays() {
        let (net, path) = setup();
        let model = LatencyModel::noiseless();
        let floor = model.rtt_floor(&net, &path);
        let prop = 2.0 * path.propagation.ms();
        assert!(floor.ms() > prop, "node delays must add to the floor");
        let node_sum: f64 = path.nodes.iter().map(|&n| net.node(n).node_delay_ms).sum();
        assert!((floor.ms() - prop - node_sum).abs() < 1e-9);
    }

    #[test]
    fn samples_never_fall_below_the_floor() {
        let (net, path) = setup();
        let model = LatencyModel::default();
        let floor = model.rtt_floor(&net, &path).ms();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            if let Some(s) = model.rtt_sample(&net, &path, &mut rng) {
                assert!(s.ms() >= floor - 1e-9, "sample {s} below floor {floor}");
            }
        }
    }

    #[test]
    fn noiseless_model_is_deterministic() {
        let (net, path) = setup();
        let model = LatencyModel::noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        let a = model.rtt_sample(&net, &path, &mut rng).unwrap();
        let b = model.rtt_sample(&net, &path, &mut rng).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, model.rtt_floor(&net, &path));
    }

    #[test]
    fn min_of_many_probes_approaches_the_floor() {
        let (net, path) = setup();
        let model = LatencyModel::default();
        let floor = model.rtt_floor(&net, &path).ms();
        let mut rng = StdRng::seed_from_u64(5);
        let min = (0..20)
            .filter_map(|_| model.rtt_sample(&net, &path, &mut rng))
            .map(|l| l.ms())
            .fold(f64::INFINITY, f64::min);
        assert!(
            min - floor < 2.0,
            "minimum over 20 probes should sit close to the floor (excess {})",
            min - floor
        );
    }

    #[test]
    fn losses_occur_at_roughly_the_configured_rate() {
        let (net, path) = setup();
        let model = LatencyModel {
            loss_probability: 0.2,
            ..LatencyModel::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let lost = (0..2000)
            .filter(|_| model.rtt_sample(&net, &path, &mut rng).is_none())
            .count();
        let rate = lost as f64 / 2000.0;
        assert!((rate - 0.2).abs() < 0.04, "loss rate {rate}");
    }

    #[test]
    fn normalized_clamps_every_parameter_into_range() {
        let m = LatencyModel {
            jitter_mean_ms: -3.0,
            spike_probability: 1.7,
            spike_mean_ms: -1.0,
            loss_probability: -0.4,
        }
        .normalized();
        assert_eq!(m.jitter_mean_ms, 0.0);
        assert_eq!(m.spike_probability, 1.0);
        assert_eq!(m.spike_mean_ms, 0.0);
        assert_eq!(m.loss_probability, 0.0);
        // Already-valid models pass through untouched.
        let d = LatencyModel::default();
        assert_eq!(d.clone().normalized(), d);
    }

    #[test]
    fn exponential_sampler_mean_is_right() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean = (0..n)
            .map(|_| sample_exponential(&mut rng, 3.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "sampled mean {mean}");
        assert_eq!(sample_exponential(&mut rng, 0.0), 0.0);
        assert_eq!(sample_exponential(&mut rng, -1.0), 0.0);
    }
}
