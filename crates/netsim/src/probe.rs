//! The live prober: an [`ObservationProvider`] backed by the simulated
//! network.
//!
//! A [`Prober`] owns the network, the routing table, the latency model and a
//! seeded RNG; every `ping` draws fresh probe samples (so repeated
//! measurements show realistic variation), while `traceroute` reports
//! per-hop minimum RTTs the way repeated ICMP time-exceeded probing would.
//!
//! Lost probes can be retried from a bounded, separately-seeded retry stream
//! ([`Prober::with_retry_cap`]) so a ping still returns its nominal sample
//! count at loss rates well above a few percent — calibration stays
//! well-defined instead of quietly running on thin sample sets. Retries are
//! off by default and draw from their own RNG stream, so enabling them never
//! perturbs the main probe stream: every existing capture and golden dataset
//! stays byte-identical.

use crate::latency::LatencyModel;
use crate::observation::{HostDescriptor, ObservationProvider, PingObservation, TracerouteHop};
use crate::routing::{Path, RouteTable};
use crate::topology::{Network, NodeId, NodeKind};
use crate::whois::WhoisRegistry;
use octant_geo::point::GeoPoint;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of time-dispersed probes per ping, matching the paper's
/// "10 time-dispersed round-trip measurements using ICMP ping probes".
pub const DEFAULT_PROBES_PER_PING: usize = 10;

/// A live measurement source over a simulated network.
#[derive(Debug)]
pub struct Prober {
    network: Network,
    model: LatencyModel,
    whois: WhoisRegistry,
    probes_per_ping: usize,
    retry_cap: usize,
    routes: Mutex<RouteTable>,
    rng: Mutex<StdRng>,
    retry_rng: Mutex<StdRng>,
}

impl Prober {
    /// Creates a prober with the default latency model, a WHOIS registry with
    /// a 15 % error rate and 10 probes per ping.
    pub fn new(network: Network, seed: u64) -> Self {
        Prober::with_options(
            network,
            LatencyModel::default(),
            0.15,
            DEFAULT_PROBES_PER_PING,
            seed,
        )
    }

    /// Creates a prober with full control over the measurement options.
    pub fn with_options(
        network: Network,
        model: LatencyModel,
        whois_error_rate: f64,
        probes_per_ping: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0dd5);
        let whois = WhoisRegistry::generate(&network, whois_error_rate, &mut rng);
        let probes_per_ping = probes_per_ping.max(1);
        Prober {
            network,
            model: model.normalized(),
            whois,
            probes_per_ping,
            retry_cap: 0,
            routes: Mutex::new(RouteTable::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            retry_rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x0bad_105e)),
        }
    }

    /// Sets the retry budget for lost ping probes. The default of `0`
    /// disables retries (the historical lossy-subset behaviour, and what
    /// every golden capture pins); a budget of `probes_per_ping` keeps
    /// calibration well-defined at loss rates of 5 % and beyond. Retries
    /// draw from a dedicated stream, so turning them on only *appends*
    /// samples — the main probe stream is unchanged.
    pub fn with_retry_cap(mut self, cap: usize) -> Self {
        self.retry_cap = cap;
        self
    }

    /// The underlying network (ground truth — for evaluation only).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The latency model in use.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// The WHOIS registry in use.
    pub fn whois(&self) -> &WhoisRegistry {
        &self.whois
    }

    /// Number of probes each ping sends.
    pub fn probes_per_ping(&self) -> usize {
        self.probes_per_ping
    }

    fn route(&self, from: NodeId, to: NodeId) -> Option<Path> {
        self.routes.lock().route(&self.network, from, to)
    }
}

impl ObservationProvider for Prober {
    fn hosts(&self) -> Vec<HostDescriptor> {
        self.network
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| HostDescriptor {
                id: n.id,
                hostname: n.hostname.clone(),
                ip: n.ip,
            })
            .collect()
    }

    fn ping(&self, from: NodeId, to: NodeId) -> PingObservation {
        let path = match self.route(from, to) {
            Some(p) => p,
            None => return PingObservation::default(),
        };
        let mut samples = Vec::with_capacity(self.probes_per_ping);
        let mut lost = 0usize;
        {
            let mut rng = self.rng.lock();
            for _ in 0..self.probes_per_ping {
                match self.model.rtt_sample(&self.network, &path, &mut *rng) {
                    Some(s) => samples.push(s),
                    None => lost += 1,
                }
            }
        }
        // Bounded retry for lost probes: draw replacements from a dedicated
        // retry stream so the main probe stream stays byte-identical whether
        // or not retries happen. Retried probes can themselves be lost and
        // count against the budget, so the loop terminates at any loss rate.
        if lost > 0 && self.retry_cap > 0 {
            let mut retry_rng = self.retry_rng.lock();
            let mut budget = self.retry_cap;
            while lost > 0 && budget > 0 {
                budget -= 1;
                if let Some(s) = self.model.rtt_sample(&self.network, &path, &mut *retry_rng) {
                    samples.push(s);
                    lost -= 1;
                }
            }
        }
        PingObservation::new(samples)
    }

    fn traceroute(&self, from: NodeId, to: NodeId) -> Vec<TracerouteHop> {
        let path = match self.route(from, to) {
            Some(p) => p,
            None => return Vec::new(),
        };
        let mut rng = self.rng.lock();
        let mut hops = Vec::new();
        for &router in path.intermediate() {
            // RTT to the hop: probe the sub-path three times and keep the
            // minimum (traceroute implementations typically send 3 probes per
            // TTL).
            let sub = match self.routes.lock().route(&self.network, from, router) {
                Some(p) => p,
                None => continue,
            };
            let rtt = (0..3)
                .filter_map(|_| self.model.rtt_sample(&self.network, &sub, &mut *rng))
                .map(|l| l.ms())
                .fold(f64::INFINITY, f64::min);
            if !rtt.is_finite() {
                continue;
            }
            let node = self.network.node(router);
            hops.push(TracerouteHop {
                node: router,
                ip: node.ip,
                hostname: node.hostname.clone(),
                rtt: octant_geo::units::Latency::from_ms(rtt),
            });
        }
        hops
    }

    fn node_by_ip(&self, ip: [u8; 4]) -> Option<NodeId> {
        self.network.node_by_ip(ip).map(|n| n.id)
    }

    fn reverse_dns(&self, ip: [u8; 4]) -> Option<String> {
        self.network.node_by_ip(ip).map(|n| n.hostname.clone())
    }

    fn whois_city(&self, ip: [u8; 4]) -> Option<String> {
        self.whois.lookup(ip).map(|r| r.city_code.clone())
    }

    fn advertised_location(&self, id: NodeId) -> Option<GeoPoint> {
        let node = self.network.nodes().get(id.0 as usize)?;
        if node.kind == NodeKind::Host {
            Some(node.location)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetworkBuilder, NetworkConfig};
    use octant_geo::distance::great_circle_km;
    use octant_geo::units::{Distance, Latency};

    fn prober() -> Prober {
        let net = NetworkBuilder::planetlab(NetworkConfig::default()).build();
        Prober::new(net, 17)
    }

    #[test]
    fn hosts_are_exposed() {
        let p = prober();
        let hosts = p.hosts();
        assert_eq!(hosts.len(), 51);
        assert!(hosts.iter().all(|h| !h.hostname.is_empty()));
    }

    #[test]
    fn ping_returns_the_right_number_of_probes() {
        let p = prober();
        let hosts = p.hosts();
        let obs = p.ping(hosts[0].id, hosts[1].id);
        assert!(!obs.is_unreachable());
        assert!(obs.samples.len() <= DEFAULT_PROBES_PER_PING);
        let retrying = prober().with_retry_cap(DEFAULT_PROBES_PER_PING);
        let obs = retrying.ping(hosts[0].id, hosts[1].id);
        assert_eq!(
            obs.samples.len(),
            DEFAULT_PROBES_PER_PING,
            "bounded retry refills lost probes at the default loss rate"
        );
    }

    fn lossy_prober(loss: f64, seed: u64) -> Prober {
        let net = NetworkBuilder::planetlab(NetworkConfig::default()).build();
        let model = LatencyModel {
            loss_probability: loss,
            ..LatencyModel::default()
        };
        Prober::with_options(net, model, 0.15, DEFAULT_PROBES_PER_PING, seed)
    }

    #[test]
    fn retries_refill_lost_probes_at_high_loss() {
        let with_retry = lossy_prober(0.3, 23).with_retry_cap(DEFAULT_PROBES_PER_PING);
        let without = lossy_prober(0.3, 23);
        let hosts = with_retry.hosts();
        let mut refilled = 0usize;
        for i in 1..20 {
            let a = with_retry.ping(hosts[0].id, hosts[i].id);
            let b = without.ping(hosts[0].id, hosts[i].id);
            // The main stream is untouched by retries: the retried
            // observation starts with exactly the lossy subset, then appends.
            assert_eq!(&a.samples[..b.samples.len()], &b.samples[..]);
            assert!(a.samples.len() >= b.samples.len());
            refilled += a.samples.len() - b.samples.len();
        }
        assert!(
            refilled > 10,
            "at 30% loss the retry stream should refill many probes (got {refilled})"
        );
    }

    #[test]
    fn retry_stream_is_deterministic_per_seed() {
        let hosts = lossy_prober(0.3, 5).hosts();
        let a = lossy_prober(0.3, 5).with_retry_cap(DEFAULT_PROBES_PER_PING);
        let b = lossy_prober(0.3, 5).with_retry_cap(DEFAULT_PROBES_PER_PING);
        for i in 1..10 {
            assert_eq!(
                a.ping(hosts[0].id, hosts[i].id),
                b.ping(hosts[0].id, hosts[i].id)
            );
        }
    }

    #[test]
    fn ping_rtt_respects_the_speed_of_light() {
        let p = prober();
        let hosts = p.hosts();
        for i in [1usize, 10, 25, 40] {
            let a = hosts[0].id;
            let b = hosts[i].id;
            let obs = p.ping(a, b);
            let min = obs.min().unwrap();
            let direct =
                great_circle_km(p.network().node(a).location, p.network().node(b).location);
            let sol_bound = Distance::max_fiber_distance_for_rtt(min).km();
            assert!(
                sol_bound >= direct * 0.999,
                "speed-of-light bound violated: rtt {min}, bound {sol_bound:.0} km, direct {direct:.0} km"
            );
        }
    }

    #[test]
    fn ping_to_self_is_fast() {
        let p = prober();
        let h = p.hosts()[0].id;
        let obs = p.ping(h, h);
        assert!(obs.min().unwrap() < Latency::from_ms(20.0));
    }

    #[test]
    fn traceroute_reports_monotone_intermediate_hops() {
        let p = prober();
        let hosts = p.hosts();
        let hops = p.traceroute(hosts[0].id, hosts[30].id);
        assert!(
            hops.len() >= 2,
            "host-to-host paths traverse at least access+backbone routers"
        );
        // Hops must all be routers and their floor RTTs should broadly increase.
        for h in &hops {
            let node = p.network().node(h.node);
            assert_ne!(node.kind, NodeKind::Host);
            assert_eq!(node.ip, h.ip);
        }
        let end_to_end = p.ping(hosts[0].id, hosts[30].id).min().unwrap();
        let last_hop = hops.last().unwrap().rtt;
        assert!(
            last_hop.ms() <= end_to_end.ms() + 40.0,
            "last hop should not hugely exceed the end-to-end RTT"
        );
    }

    #[test]
    fn traceroute_to_self_is_empty() {
        let p = prober();
        let h = p.hosts()[0].id;
        assert!(p.traceroute(h, h).is_empty());
    }

    #[test]
    fn dns_and_whois_lookups() {
        let p = prober();
        let hosts = p.hosts();
        let first = &hosts[0];
        assert_eq!(p.reverse_dns(first.ip).unwrap(), first.hostname);
        assert_eq!(p.node_by_ip(first.ip), Some(first.id));
        assert!(p.node_by_ip([9, 9, 9, 9]).is_none());
        assert!(p.whois_city(first.ip).is_some());
        assert!(p.whois_city([9, 9, 9, 9]).is_none());
    }

    #[test]
    fn advertised_locations_only_for_hosts() {
        let p = prober();
        let h = p.hosts()[0].id;
        assert!(p.advertised_location(h).is_some());
        let router = p.network().routers()[0];
        assert!(p.advertised_location(router).is_none());
        assert!(p.advertised_location(NodeId(9999)).is_none());
    }

    #[test]
    fn measurements_vary_between_probes_but_not_below_floor() {
        let p = prober();
        let hosts = p.hosts();
        let a = p.ping(hosts[2].id, hosts[7].id);
        let b = p.ping(hosts[2].id, hosts[7].id);
        // Different probe draws: with jitter the full sample vectors should differ.
        assert_ne!(a.samples, b.samples);
        // But the minimum is stable to within the jitter scale.
        assert!((a.min().unwrap().ms() - b.min().unwrap().ms()).abs() < 10.0);
    }

    #[test]
    fn noiseless_prober_is_fully_deterministic() {
        let net = NetworkBuilder::planetlab(NetworkConfig::default()).build();
        let p = Prober::with_options(net, LatencyModel::noiseless(), 0.0, 3, 1);
        let hosts = p.hosts();
        let a = p.ping(hosts[0].id, hosts[1].id);
        let b = p.ping(hosts[0].id, hosts[1].id);
        assert_eq!(a, b);
        assert_eq!(a.samples.len(), 3);
    }
}
