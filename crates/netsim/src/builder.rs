//! Synthetic Internet topology generation.
//!
//! The generated network mirrors the structure that makes real-world
//! geolocation hard:
//!
//! * several competing backbone providers, each with routers in major cities,
//! * intra-provider links between nearby cities plus a handful of long-haul
//!   links, and inter-provider *peering* links only in some cities (which is
//!   what produces indirect, inflated routes — §2.3 of the paper),
//! * per-city access routers that hosts attach to through last-mile links
//!   with host-specific minimum queuing delays (what the paper's "height"
//!   computation recovers — §2.2).

use crate::dns;
use crate::topology::{Network, NodeId, NodeKind};
use octant_geo::cities::{self, City};
use octant_geo::distance::great_circle_km;
use octant_geo::point::GeoPoint;
use octant_geo::sites::Site;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of a host to place in the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// DNS hostname for the host.
    pub hostname: String,
    /// True physical location of the host.
    pub location: GeoPoint,
    /// Code of the host's city (see [`octant_geo::cities`]).
    pub city_code: String,
}

impl HostSpec {
    /// Builds a host specification from a built-in measurement site.
    pub fn from_site(site: &Site) -> Self {
        HostSpec {
            hostname: site.hostname.to_string(),
            location: site.location(),
            city_code: site.city_code.to_string(),
        }
    }
}

/// Tunable parameters of the synthetic Internet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// RNG seed; the same seed reproduces the same network bit-for-bit.
    pub seed: u64,
    /// Number of backbone providers.
    pub providers: u8,
    /// Cities with at least this metro population (thousands) receive a
    /// backbone router from each provider that covers their continent.
    pub backbone_min_population_k: u32,
    /// How many nearest same-provider neighbours each backbone router links to.
    pub intra_provider_neighbors: usize,
    /// Fraction of backbone cities that host an inter-provider peering link.
    pub peering_city_fraction: f64,
    /// Policy-cost multiplier applied to inter-provider (peering) links.
    pub peering_penalty: f64,
    /// Physical fiber-path stretch applied to every link's great-circle length.
    pub link_stretch: (f64, f64),
    /// Range of per-host last-mile round-trip delays in milliseconds.
    pub host_delay_ms: (f64, f64),
    /// Range of per-router processing delays in milliseconds.
    pub router_delay_ms: (f64, f64),
    /// Fraction of *backbone* routers whose DNS name does not reveal their
    /// city.
    pub undns_miss_rate: f64,
    /// Fraction of *access* routers whose DNS name does not reveal their
    /// city. Real access/aggregation gear is named far less systematically
    /// than backbone interfaces, which is what keeps last-hop DNS hints from
    /// trivially giving away the target's metro area.
    pub access_undns_miss_rate: f64,
    /// Fraction of routers whose DNS name embeds the *wrong* city (stale or
    /// misleading naming), giving DNS-hint-based techniques a realistic error
    /// tail.
    pub undns_wrong_city_rate: f64,
    /// Access-router sharing radius in kilometres. `0.0` (the default) gives
    /// every host its own access router — byte-identical topology generation
    /// to earlier versions of this crate. A positive radius makes a host
    /// whose home is within the radius of an already-created access router
    /// attach through that router instead, modelling multiple customers
    /// behind one metro aggregation router. That is the serving-workload
    /// shape where traceroute last hops are *shared across targets* (the
    /// regime `octant-service`'s router sub-localization cache amortizes).
    pub access_share_radius_km: f64,
    /// Fraction of hosts whose DNS name is replaced by an ISP-customer-style
    /// name embedding the host's city code
    /// (`cpe-7.nyc.res.as64502.octantsim.net`) — the reverse-DNS convention
    /// Octant's `DnsNameSource` mines for §2.5 naming hints. `0.0` (the
    /// default) keeps the caller-supplied hostnames and consumes no RNG
    /// draws, so existing topologies are byte-identical.
    pub host_dns_city_rate: f64,
    /// Fraction of access routers that are *multi-homed*: in addition to
    /// their provider's POPs they get an uplink to the nearest POP of a
    /// different provider, the way enterprise edges buy transit from two
    /// ASes. Multi-homing adds path diversity that bypasses peering
    /// penalties, so routes (and therefore measured RTTs) straddle provider
    /// boundaries. `0.0` (the default) consumes no RNG draws and keeps
    /// topologies byte-identical to earlier versions.
    pub multi_homing_rate: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            seed: 42,
            providers: 4,
            backbone_min_population_k: 1200,
            intra_provider_neighbors: 3,
            peering_city_fraction: 0.35,
            peering_penalty: 2.0,
            link_stretch: (1.05, 1.35),
            host_delay_ms: (0.2, 4.0),
            router_delay_ms: (0.05, 0.5),
            undns_miss_rate: 0.45,
            access_undns_miss_rate: 0.9,
            undns_wrong_city_rate: 0.05,
            access_share_radius_km: 0.0,
            host_dns_city_rate: 0.0,
            multi_homing_rate: 0.0,
        }
    }
}

/// Builds [`Network`]s from a [`NetworkConfig`] and a list of hosts.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    config: NetworkConfig,
    hosts: Vec<HostSpec>,
}

impl NetworkBuilder {
    /// Starts a builder with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        NetworkBuilder {
            config,
            hosts: Vec::new(),
        }
    }

    /// A builder pre-populated with the paper-equivalent 51 PlanetLab sites.
    pub fn planetlab(config: NetworkConfig) -> Self {
        let mut b = NetworkBuilder::new(config);
        for site in octant_geo::sites::planetlab_51() {
            b = b.add_host(HostSpec::from_site(site));
        }
        b
    }

    /// Adds a host to the network.
    pub fn add_host(mut self, host: HostSpec) -> Self {
        self.hosts.push(host);
        self
    }

    /// Adds every host in the slice.
    pub fn add_hosts(mut self, hosts: &[HostSpec]) -> Self {
        self.hosts.extend_from_slice(hosts);
        self
    }

    /// The configured hosts.
    pub fn hosts(&self) -> &[HostSpec] {
        &self.hosts
    }

    /// Generates the network.
    pub fn build(&self) -> Network {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut net = Network::new();

        // --- Backbone routers -------------------------------------------------
        let backbone_cities: Vec<&City> = cities::CITIES
            .iter()
            .filter(|c| c.population_k >= cfg.backbone_min_population_k)
            .collect();
        let mut backbone: Vec<(NodeId, &City, u8)> = Vec::new();
        for (ci, city) in backbone_cities.iter().enumerate() {
            // One router per city per provider "present" in that city; each
            // provider covers roughly half the backbone cities.
            for p in 0..cfg.providers {
                let present = (ci + p as usize).is_multiple_of(2) || rng.gen_bool(0.3);
                if !present {
                    continue;
                }
                let delay = rng.gen_range(cfg.router_delay_ms.0..=cfg.router_delay_ms.1);
                let hostname = dns::router_hostname(
                    city.code,
                    p,
                    backbone.len() as u32,
                    true,
                    &mut rng,
                    cfg.undns_miss_rate,
                );
                let ip = [10, p + 1, (ci / 250) as u8, (ci % 250) as u8 + 1];
                let id = net.add_node(
                    NodeKind::BackboneRouter,
                    city.location(),
                    city.code,
                    p,
                    hostname,
                    ip,
                    delay,
                );
                backbone.push((id, city, p));
            }
        }

        // --- Backbone links ----------------------------------------------------
        // Intra-provider: each router links to its nearest same-provider peers.
        for (i, &(id, city, p)) in backbone.iter().enumerate() {
            let mut same: Vec<(f64, NodeId)> = backbone
                .iter()
                .enumerate()
                .filter(|&(j, &(_, _, q))| j != i && q == p)
                .map(|(_, &(other, ocity, _))| {
                    (great_circle_km(city.location(), ocity.location()), other)
                })
                .collect();
            same.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            for &(_, other) in same.iter().take(cfg.intra_provider_neighbors) {
                let stretch = rng.gen_range(cfg.link_stretch.0..=cfg.link_stretch.1);
                net.add_link(id, other, stretch, 1.0);
            }
        }
        // Peering: in a fraction of cities, the providers present there peer.
        for (i, &(id, city, _)) in backbone.iter().enumerate() {
            if !rng.gen_bool(cfg.peering_city_fraction) {
                continue;
            }
            for &(other, ocity, _) in backbone.iter().skip(i + 1) {
                if ocity.code == city.code {
                    let stretch = rng.gen_range(cfg.link_stretch.0..=cfg.link_stretch.1);
                    net.add_link(id, other, stretch, cfg.peering_penalty);
                }
            }
        }
        // Connectivity patch-up: greedily connect components through their
        // geographically closest router pair (a cheap spanning structure).
        self.connect_components(&mut net, &mut rng);

        // --- Access routers and hosts ------------------------------------------
        // Access routers created so far, with the home location they serve,
        // for the opt-in sharing of access infrastructure between co-sited
        // hosts (see [`NetworkConfig::access_share_radius_km`]).
        let mut access_routers: Vec<(GeoPoint, NodeId, u8)> = Vec::new();
        for (hi, host) in self.hosts.iter().enumerate() {
            let home = cities::by_code(&host.city_code)
                .map(|c| c.location())
                .unwrap_or(host.location);
            // A host close enough to an existing access router attaches
            // through it (sharing disabled at the default radius of 0).
            // Reuse consumes no RNG draws, so topologies without co-sited
            // hosts are unaffected by the knob.
            let shared = if cfg.access_share_radius_km > 0.0 {
                access_routers
                    .iter()
                    .map(|&(loc, id, p)| (great_circle_km(home, loc), id, p))
                    .filter(|&(d, _, _)| d <= cfg.access_share_radius_km)
                    .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
            } else {
                None
            };
            if let Some((_, access, provider)) = shared {
                let host_delay = sample_last_mile(&mut rng, cfg.host_delay_ms);
                let hostname = host_dns_name(cfg, host, provider, hi, &mut rng);
                let host_ip = [128 + (hi / 200) as u8, (hi % 200) as u8 + 1, 13, 7];
                let host_id = net.add_node(
                    NodeKind::Host,
                    host.location,
                    host.city_code.clone(),
                    provider,
                    hostname,
                    host_ip,
                    host_delay,
                );
                let stretch = rng.gen_range(1.2..1.6);
                net.add_link(host_id, access, stretch, 1.0);
                continue;
            }
            // The host buys connectivity from one provider and its traffic is
            // backhauled to that provider's nearest point of presence — which
            // is why the last recognizable router on a path is frequently
            // *not* in the target's own city. Institutions usually pick a
            // provider with a nearby POP, so rank providers by how close
            // their nearest POP is and prefer (but don't guarantee) the
            // closest one.
            let mut provider_pops: Vec<(f64, NodeId, &City, u8)> = (0..cfg.providers.max(1))
                .filter_map(|p| {
                    backbone
                        .iter()
                        .filter(|&&(_, _, q)| q == p)
                        .map(|&(id, bcity, _)| {
                            (great_circle_km(home, bcity.location()), id, bcity, p)
                        })
                        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
                })
                .collect();
            provider_pops
                .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if provider_pops.is_empty() {
                provider_pops = backbone
                    .iter()
                    .map(|&(id, bcity, p)| (great_circle_km(home, bcity.location()), id, bcity, p))
                    .collect();
                provider_pops
                    .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            }
            let pick: f64 = rng.gen();
            let chosen = if pick < 0.7 || provider_pops.len() == 1 {
                0
            } else if pick < 0.92 || provider_pops.len() == 2 {
                1
            } else {
                2.min(provider_pops.len() - 1)
            };
            let (_, pop_router, pop_city, provider) = provider_pops[chosen];
            // Remaining POPs of the chosen provider, for the diversity uplink.
            let mut pops: Vec<(f64, NodeId, &City)> = backbone
                .iter()
                .filter(|&&(_, _, q)| q == provider)
                .map(|&(id, bcity, _)| (great_circle_km(home, bcity.location()), id, bcity))
                .collect();
            pops.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

            let access_delay = rng.gen_range(cfg.router_delay_ms.0..=cfg.router_delay_ms.1) * 2.0;
            // Router names occasionally embed a wrong city (stale naming).
            let named_city = if rng.gen_bool(cfg.undns_wrong_city_rate.clamp(0.0, 1.0)) {
                cities::CITIES[rng.gen_range(0..cities::CITIES.len())].code
            } else {
                pop_city.code
            };
            let access_name = dns::router_hostname(
                named_city,
                provider,
                1000 + hi as u32,
                false,
                &mut rng,
                cfg.access_undns_miss_rate,
            );
            let access_ip = [10, 200, (hi / 250) as u8, (hi % 250) as u8 + 1];
            let access = net.add_node(
                NodeKind::AccessRouter,
                pop_city.location(),
                pop_city.code,
                provider,
                access_name,
                access_ip,
                access_delay,
            );
            // Uplinks: the co-located POP backbone router, plus a second
            // nearby POP for path diversity.
            let stretch = rng.gen_range(cfg.link_stretch.0..=cfg.link_stretch.1);
            net.add_link(access, pop_router, stretch, 1.0);
            if let Some(&(_, second, _)) = pops.get(1) {
                let stretch = rng.gen_range(cfg.link_stretch.0..=cfg.link_stretch.1);
                net.add_link(access, second, stretch, 1.0);
            }
            // Multi-homing: a second transit uplink to the nearest POP of a
            // *different* provider (no RNG draws at the default rate of 0).
            if cfg.multi_homing_rate > 0.0 && rng.gen_bool(cfg.multi_homing_rate.clamp(0.0, 1.0)) {
                if let Some(&(_, foreign, _, _)) =
                    provider_pops.iter().find(|&&(_, _, _, q)| q != provider)
                {
                    let stretch = rng.gen_range(cfg.link_stretch.0..=cfg.link_stretch.1);
                    net.add_link(access, foreign, stretch, 1.0);
                }
            }
            access_routers.push((home, access, provider));

            // The host itself.
            let host_delay = sample_last_mile(&mut rng, cfg.host_delay_ms);
            let hostname = host_dns_name(cfg, host, provider, hi, &mut rng);
            let host_ip = [128 + (hi / 200) as u8, (hi % 200) as u8 + 1, 13, 7];
            let host_id = net.add_node(
                NodeKind::Host,
                host.location,
                host.city_code.clone(),
                provider,
                hostname,
                host_ip,
                host_delay,
            );
            let stretch = rng.gen_range(1.2..1.6);
            net.add_link(host_id, access, stretch, 1.0);
        }

        // Make absolutely sure the final graph is connected (hosts in remote
        // regions might still be isolated if the backbone skipped their
        // continent).
        self.connect_components(&mut net, &mut rng);
        net
    }

    /// Connects disconnected components by adding links between their
    /// geographically closest node pairs until the network is connected.
    fn connect_components(&self, net: &mut Network, rng: &mut StdRng) {
        loop {
            let comps = components(net);
            if comps.len() <= 1 {
                return;
            }
            // Connect the first component to its nearest other component.
            let base = &comps[0];
            let mut best: Option<(f64, NodeId, NodeId)> = None;
            for other in &comps[1..] {
                for &a in base {
                    for &b in other {
                        let d = great_circle_km(net.node(a).location, net.node(b).location);
                        if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                            best = Some((d, a, b));
                        }
                    }
                }
            }
            if let Some((_, a, b)) = best {
                let stretch =
                    rng.gen_range(self.config.link_stretch.0..=self.config.link_stretch.1);
                net.add_link(a, b, stretch, 1.0);
            } else {
                return;
            }
        }
    }
}

/// The DNS name a host is created with: the caller-supplied hostname, or —
/// with probability [`NetworkConfig::host_dns_city_rate`] — an
/// ISP-customer-style name embedding the host's city code. Consumes no RNG
/// draws when the knob is at its default of `0.0`, keeping old topologies
/// byte-identical.
fn host_dns_name(
    cfg: &NetworkConfig,
    host: &HostSpec,
    provider: u8,
    index: usize,
    rng: &mut StdRng,
) -> String {
    if cfg.host_dns_city_rate > 0.0 && rng.gen_bool(cfg.host_dns_city_rate.clamp(0.0, 1.0)) {
        dns::customer_hostname(&host.city_code, provider, index)
    } else {
        host.hostname.clone()
    }
}

/// Connected components of the network, as lists of node ids.
fn components(net: &Network) -> Vec<Vec<NodeId>> {
    let n = net.node_count();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![NodeId(start as u32)];
        seen[start] = true;
        while let Some(id) = stack.pop() {
            comp.push(id);
            for &li in net.incident_links(id) {
                let l = net.links()[li];
                let other = if l.a == id { l.b } else { l.a };
                if !seen[other.0 as usize] {
                    seen[other.0 as usize] = true;
                    stack.push(other);
                }
            }
        }
        out.push(comp);
    }
    out
}

/// Last-mile delays follow a skewed distribution: most hosts are close to the
/// low end (well-connected universities) with a long tail of slower access
/// links.
fn sample_last_mile(rng: &mut StdRng, range: (f64, f64)) -> f64 {
    let (lo, hi) = range;
    let u: f64 = rng.gen::<f64>();
    lo + (hi - lo) * u * u
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::sites;

    fn default_net() -> Network {
        NetworkBuilder::planetlab(NetworkConfig::default()).build()
    }

    #[test]
    fn planetlab_network_has_expected_shape() {
        let net = default_net();
        assert_eq!(net.hosts().len(), 51);
        assert!(
            net.routers().len() > 60,
            "expected a substantial router backbone, got {}",
            net.routers().len()
        );
        assert!(
            net.link_count() > net.node_count(),
            "backbone should be more than a tree"
        );
        assert!(net.is_connected());
    }

    #[test]
    fn build_is_deterministic_for_a_seed() {
        let a = default_net();
        let b = default_net();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.link_count(), b.link_count());
        assert_eq!(a.nodes()[10].hostname, b.nodes()[10].hostname);
        assert_eq!(a.nodes()[10].node_delay_ms, b.nodes()[10].node_delay_ms);
        // A different seed produces a different network.
        let other = NetworkBuilder::planetlab(NetworkConfig {
            seed: 7,
            ..NetworkConfig::default()
        })
        .build();
        let delays_a: Vec<f64> = a.hosts().iter().map(|&h| a.node(h).node_delay_ms).collect();
        let delays_c: Vec<f64> = other
            .hosts()
            .iter()
            .map(|&h| other.node(h).node_delay_ms)
            .collect();
        assert_ne!(delays_a, delays_c);
    }

    #[test]
    fn hosts_are_at_their_site_locations() {
        let net = default_net();
        for (host_id, site) in net.hosts().iter().zip(sites::planetlab_51()) {
            let node = net.node(*host_id);
            assert_eq!(node.hostname, site.hostname);
            assert!(great_circle_km(node.location, site.location()) < 1.0);
            assert_eq!(node.kind, NodeKind::Host);
        }
    }

    #[test]
    fn host_delays_are_within_configured_range() {
        let cfg = NetworkConfig::default();
        let net = default_net();
        for &h in &net.hosts() {
            let d = net.node(h).node_delay_ms;
            assert!(
                d >= cfg.host_delay_ms.0 - 1e-9 && d <= cfg.host_delay_ms.1 + 1e-9,
                "delay {d}"
            );
        }
    }

    #[test]
    fn co_sited_hosts_share_an_access_router_when_enabled() {
        let site = &sites::planetlab_51()[0];
        let co_sited = |share_km: f64| {
            let mut builder = NetworkBuilder::new(NetworkConfig {
                access_share_radius_km: share_km,
                ..NetworkConfig::default()
            });
            for i in 0..4 {
                builder = builder.add_host(HostSpec {
                    hostname: format!("host{i}.{}", site.hostname),
                    // A few km of scatter, like customers across one metro.
                    location: GeoPoint::new(site.lat + 0.02 * i as f64, site.lon),
                    city_code: site.city_code.to_string(),
                });
            }
            builder.build()
        };
        let access_of = |net: &Network, h: NodeId| {
            let li = net.incident_links(h)[0];
            let link = net.links()[li];
            if link.a == h {
                link.b
            } else {
                link.a
            }
        };

        // Default (0): every host gets its own access router.
        let isolated = co_sited(0.0);
        let mut accesses: Vec<NodeId> = isolated
            .hosts()
            .iter()
            .map(|&h| access_of(&isolated, h))
            .collect();
        accesses.dedup();
        assert_eq!(accesses.len(), 4, "no sharing at the default radius");

        // Sharing enabled: all four co-sited hosts attach through one router.
        let shared = co_sited(25.0);
        let accesses: Vec<NodeId> = shared
            .hosts()
            .iter()
            .map(|&h| access_of(&shared, h))
            .collect();
        assert!(
            accesses.iter().all(|&a| a == accesses[0]),
            "co-sited hosts must share the access router"
        );
        assert_eq!(
            shared.node_count() + 3,
            isolated.node_count(),
            "sharing saves exactly the three duplicate access routers"
        );
        assert!(shared.is_connected());
    }

    #[test]
    fn every_host_attaches_through_a_regional_access_router() {
        let net = default_net();
        for &h in &net.hosts() {
            let links = net.incident_links(h);
            assert_eq!(
                links.len(),
                1,
                "hosts attach through exactly one access link"
            );
            let l = net.links()[links[0]];
            let other = if l.a == h { l.b } else { l.a };
            assert_eq!(net.node(other).kind, NodeKind::AccessRouter);
            // The access POP is a regional backhaul target: in the same
            // region, not on another continent.
            assert!(
                l.length.km() < 3000.0,
                "access backhaul is {:.0} km",
                l.length.km()
            );
        }
    }

    #[test]
    fn host_dns_city_rate_rewrites_hostnames_to_parsable_names() {
        // Default: caller hostnames are kept verbatim (pinned by
        // `hosts_are_at_their_site_locations` too), and the generated
        // topology is byte-identical to the pre-knob builder.
        let plain = default_net();
        for (&h, site) in plain.hosts().iter().zip(sites::planetlab_51()) {
            assert_eq!(plain.node(h).hostname, site.hostname);
        }

        // Full rewrite: every host name embeds its own city code.
        let renamed = NetworkBuilder::planetlab(NetworkConfig {
            host_dns_city_rate: 1.0,
            ..NetworkConfig::default()
        })
        .build();
        for &h in &renamed.hosts() {
            let node = renamed.node(h);
            let city = dns::parse_router_city(&node.hostname)
                .unwrap_or_else(|| panic!("{} should parse", node.hostname));
            assert_eq!(city.code, node.city_code, "{}", node.hostname);
        }

        // A partial rate renames some hosts but not all.
        let partial = NetworkBuilder::planetlab(NetworkConfig {
            host_dns_city_rate: 0.5,
            ..NetworkConfig::default()
        })
        .build();
        let renamed_count = partial
            .hosts()
            .iter()
            .filter(|&&h| partial.node(h).hostname.starts_with("cpe-"))
            .count();
        assert!(renamed_count > 5 && renamed_count < 46, "{renamed_count}");
    }

    #[test]
    fn multi_homing_adds_cross_provider_uplinks() {
        let multi = NetworkBuilder::planetlab(NetworkConfig {
            multi_homing_rate: 1.0,
            ..NetworkConfig::default()
        })
        .build();
        let plain = default_net();
        // Same nodes, strictly more links: one extra uplink per multi-homed
        // access router (hosts whose closest foreign POP exists).
        assert_eq!(multi.node_count(), plain.node_count());
        assert!(
            multi.link_count() > plain.link_count() + 20,
            "expected many extra transit links ({} vs {})",
            multi.link_count(),
            plain.link_count()
        );
        assert!(multi.is_connected());
        // Some access router now borders two providers.
        let crosses = multi.links().iter().any(|l| {
            let (a, b) = (multi.node(l.a), multi.node(l.b));
            a.kind == NodeKind::AccessRouter
                && b.kind == NodeKind::BackboneRouter
                && a.provider != b.provider
        });
        assert!(crosses, "expected at least one cross-provider uplink");
        // Deterministic for a seed.
        let again = NetworkBuilder::planetlab(NetworkConfig {
            multi_homing_rate: 1.0,
            ..NetworkConfig::default()
        })
        .build();
        assert_eq!(multi.link_count(), again.link_count());
    }

    #[test]
    fn ips_are_unique() {
        let net = default_net();
        let mut seen = std::collections::HashSet::new();
        for n in net.nodes() {
            assert!(
                seen.insert(n.ip),
                "duplicate IP {:?} for {}",
                n.ip,
                n.hostname
            );
        }
    }

    #[test]
    fn custom_hosts_can_be_added() {
        let net = NetworkBuilder::new(NetworkConfig::default())
            .add_host(HostSpec {
                hostname: "target.example.net".into(),
                location: GeoPoint::new(39.74, -104.99),
                city_code: "den".into(),
            })
            .add_hosts(&[HostSpec {
                hostname: "other.example.net".into(),
                location: GeoPoint::new(47.61, -122.33),
                city_code: "sea".into(),
            }])
            .build();
        assert_eq!(net.hosts().len(), 2);
        assert!(net.host_by_name("target.example.net").is_some());
        assert!(net.is_connected());
    }

    #[test]
    fn larger_site_set_builds_a_connected_network() {
        let mut b = NetworkBuilder::new(NetworkConfig {
            seed: 3,
            ..NetworkConfig::default()
        });
        for site in sites::all_sites() {
            b = b.add_host(HostSpec::from_site(site));
        }
        let net = b.build();
        assert_eq!(net.hosts().len(), sites::all_sites().len());
        assert!(net.is_connected());
    }
}
