//! The observation interface Octant is allowed to use.
//!
//! The localization algorithms never see the simulated topology or any
//! ground-truth coordinates (except the landmarks' own advertised positions);
//! they interact with the network exclusively through this trait — pings,
//! traceroutes, reverse DNS and WHOIS — exactly the information the paper's
//! deployment had access to.

use crate::topology::NodeId;
use octant_geo::point::GeoPoint;
use octant_geo::units::Latency;
use serde::{Deserialize, Serialize};

/// A host visible to the measurement infrastructure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostDescriptor {
    /// Node id of the host.
    pub id: NodeId,
    /// DNS hostname.
    pub hostname: String,
    /// IPv4 address.
    pub ip: [u8; 4],
}

/// The result of a `ping` measurement: the RTT of each probe that was
/// answered. An empty sample set means the target was unreachable.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PingObservation {
    /// Round-trip times of the answered probes, in probe order.
    pub samples: Vec<Latency>,
}

impl PingObservation {
    /// Creates an observation from samples.
    pub fn new(samples: Vec<Latency>) -> Self {
        PingObservation { samples }
    }

    /// `true` when no probe was answered.
    pub fn is_unreachable(&self) -> bool {
        self.samples.is_empty()
    }

    /// The minimum RTT — the standard estimator for the propagation+floor
    /// component, used throughout Octant.
    pub fn min(&self) -> Option<Latency> {
        self.samples.iter().copied().reduce(Latency::min)
    }

    /// The median RTT.
    pub fn median(&self) -> Option<Latency> {
        if self.samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.samples.iter().map(|l| l.ms()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(Latency::from_ms(v[v.len() / 2]))
    }

    /// The mean RTT.
    pub fn mean(&self) -> Option<Latency> {
        if self.samples.is_empty() {
            return None;
        }
        Some(Latency::from_ms(
            self.samples.iter().map(|l| l.ms()).sum::<f64>() / self.samples.len() as f64,
        ))
    }
}

/// One hop of a traceroute: the router answering at that TTL, and the
/// (minimum) RTT observed to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracerouteHop {
    /// Node id of the router (resolvable via
    /// [`ObservationProvider::node_by_ip`] as well).
    pub node: NodeId,
    /// The router's IPv4 address.
    pub ip: [u8; 4],
    /// The router's DNS name (what a reverse lookup would return).
    pub hostname: String,
    /// Minimum RTT from the traceroute source to this hop.
    pub rtt: Latency,
}

/// The measurement interface available to geolocalization algorithms.
pub trait ObservationProvider {
    /// The hosts that can act as landmarks or targets.
    fn hosts(&self) -> Vec<HostDescriptor>;

    /// Sends a fixed number of time-dispersed probes from `from` to `to` and
    /// reports the answered RTTs.
    fn ping(&self, from: NodeId, to: NodeId) -> PingObservation;

    /// Runs a traceroute from `from` to `to`, reporting each intermediate
    /// router hop (the destination itself is not included).
    fn traceroute(&self, from: NodeId, to: NodeId) -> Vec<TracerouteHop>;

    /// Resolves an IP address to the node id it belongs to (if the address is
    /// known to the measurement infrastructure).
    fn node_by_ip(&self, ip: [u8; 4]) -> Option<NodeId>;

    /// Reverse DNS lookup.
    fn reverse_dns(&self, ip: [u8; 4]) -> Option<String>;

    /// WHOIS lookup for the IP's prefix, returning the registered city code
    /// (which may be stale or wrong — exactly like the real database).
    fn whois_city(&self, ip: [u8; 4]) -> Option<String>;

    /// The advertised (ground-truth) location of a host used as a landmark.
    /// Returns `None` for nodes whose position is not published.
    ///
    /// In the paper's evaluation every PlanetLab node's true position is
    /// known externally but is *only* consulted when the node serves as a
    /// landmark — never when it is the current target.
    fn advertised_location(&self, id: NodeId) -> Option<GeoPoint>;
}

/// Forwarding impls so shared handles to a provider are providers
/// themselves. A long-lived serving layer keeps one replay-stable dataset
/// behind an [`std::sync::Arc`] and hands cheap clones to worker threads and
/// model-refresh tasks; `&P` forwarding additionally lets borrowed providers
/// flow through generic `P: ObservationProvider` entry points.
macro_rules! forward_observation_provider {
    ($($t:ty),+) => {$(
        impl<P: ObservationProvider + ?Sized> ObservationProvider for $t {
            fn hosts(&self) -> Vec<HostDescriptor> {
                (**self).hosts()
            }
            fn ping(&self, from: NodeId, to: NodeId) -> PingObservation {
                (**self).ping(from, to)
            }
            fn traceroute(&self, from: NodeId, to: NodeId) -> Vec<TracerouteHop> {
                (**self).traceroute(from, to)
            }
            fn node_by_ip(&self, ip: [u8; 4]) -> Option<NodeId> {
                (**self).node_by_ip(ip)
            }
            fn reverse_dns(&self, ip: [u8; 4]) -> Option<String> {
                (**self).reverse_dns(ip)
            }
            fn whois_city(&self, ip: [u8; 4]) -> Option<String> {
                (**self).whois_city(ip)
            }
            fn advertised_location(&self, id: NodeId) -> Option<GeoPoint> {
                (**self).advertised_location(id)
            }
        }
    )+};
}

forward_observation_provider!(&P, std::sync::Arc<P>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_observation_statistics() {
        let obs = PingObservation::new(vec![
            Latency::from_ms(20.0),
            Latency::from_ms(12.0),
            Latency::from_ms(35.0),
            Latency::from_ms(13.0),
            Latency::from_ms(12.5),
        ]);
        assert!(!obs.is_unreachable());
        assert_eq!(obs.min().unwrap().ms(), 12.0);
        assert_eq!(obs.median().unwrap().ms(), 13.0);
        assert!((obs.mean().unwrap().ms() - 18.5).abs() < 1e-9);
    }

    #[test]
    fn empty_observation_is_unreachable() {
        let obs = PingObservation::default();
        assert!(obs.is_unreachable());
        assert!(obs.min().is_none());
        assert!(obs.median().is_none());
        assert!(obs.mean().is_none());
    }

    #[test]
    fn single_sample_statistics_coincide() {
        let obs = PingObservation::new(vec![Latency::from_ms(7.0)]);
        assert_eq!(obs.min(), obs.median());
        assert_eq!(obs.min(), obs.mean());
    }
}
