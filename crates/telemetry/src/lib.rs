//! # octant-telemetry
//!
//! Workspace-wide observability for the Octant reproduction, in the spirit
//! of "instrument first, then optimize": the stages that govern Octant's
//! accuracy and cost (per-source constraint generation, solver chunked
//! intersections, dilation, simplification, serve-loop queueing) need
//! trustworthy timing before any of them is worth attacking.
//!
//! Three pieces, all offline and dependency-free (consistent with the
//! workspace's compat-shim policy):
//!
//! * [`span`](crate::span()) / [`SpanGuard`] — a lightweight tracing core
//!   with monotonic timing, a thread-local span stack, **self-time**
//!   accounting, and a pluggable [`Collector`] ([`NullCollector`],
//!   [`RecordingCollector`], [`JsonLinesCollector`]). Disabled (the
//!   default), a span costs one relaxed atomic load.
//! * [`MetricsRegistry`] — process-wide named counters, gauges, and
//!   histograms under stable dotted names (`router_cache.hits`,
//!   `region.band_merges`, `service.shard0.queue_depth`, …), with a
//!   serializable [`MetricsSnapshot`] tree. Components own their handles
//!   (exact instance counters); the registry sums per name (exact process
//!   totals) — one bump, one code path.
//! * [`StageProfile`] / [`begin_capture`] — per-request stage profiles:
//!   wrap a capture around one solve and get back each stage's wall time
//!   and call count, with stage sums ≤ measured wall time by construction.
//!
//! [`LatencyHistogram`] (the log-linear histogram previously private to
//! `octant-service`) lives here so SLO latency quantiles and per-stage
//! breakdowns share one implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod metrics;
mod profile;
mod span;

pub use histogram::{LatencyHistogram, LatencySummary};
pub use metrics::{
    summary_json, Counter, Gauge, HistogramHandle, MetricsRegistry, MetricsSnapshot,
};
pub use profile::{begin_capture, CaptureGuard, Stage, StageProfile};
pub use span::{
    clear_collector, set_collector, span, tracing_active, Collector, JsonLinesCollector,
    NullCollector, RecordingCollector, SpanGuard, SpanRecord,
};

/// Serializes unit tests that toggle the process-wide tracing interest
/// counter or collector, so they cannot observe each other's state.
#[cfg(test)]
pub(crate) static TEST_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
