//! The span/tracing core: monotonic timed spans on a thread-local stack,
//! with **self-time** accounting and a pluggable [`Collector`] sink.
//!
//! ## Cost model
//!
//! Instrumented code calls [`span`] unconditionally; whether anything
//! happens is decided by one process-wide relaxed atomic load (the
//! *interest* counter, raised while a collector is installed or a
//! [`crate::profile`] capture is active on any thread). While the counter is
//! zero — the default — [`span`] returns an inert guard without reading the
//! clock or touching the thread-local stack, so always-on instrumentation
//! in hot paths costs one predictable load.
//!
//! ## Self-time semantics
//!
//! Each open span accumulates the elapsed time of its direct children; on
//! close, a span reports both its wall time and its **self time** (wall
//! minus children). Self times of the spans in a tree partition the root's
//! wall time exactly, which is what lets stage profiles promise
//! "stage sums ≤ wall" by construction instead of by luck.

use std::cell::RefCell;
use std::io::Write;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Process-wide count of reasons to time spans: one while a collector is
/// installed, plus one per active profile capture. Zero means [`span`] is a
/// no-op.
static INTEREST: AtomicU32 = AtomicU32::new(0);

/// The installed collector, if any. A `RwLock` because the read path (every
/// span close while tracing is active) vastly outnumbers installs.
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);

thread_local! {
    /// The calling thread's stack of open spans.
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// One open span on the thread-local stack.
struct Frame {
    name: &'static str,
    start: Instant,
    /// Total elapsed time of already-closed direct children.
    child_elapsed: Duration,
}

/// `true` while at least one collector or profile capture is live — the
/// single relaxed load [`span`] is gated on.
pub fn tracing_active() -> bool {
    INTEREST.load(Ordering::Relaxed) != 0
}

/// Raises the interest counter (a capture or collector went live).
pub(crate) fn interest_add() {
    INTEREST.fetch_add(1, Ordering::Relaxed);
}

/// Lowers the interest counter (a capture finished / collector removed).
pub(crate) fn interest_sub() {
    INTEREST.fetch_sub(1, Ordering::Relaxed);
}

/// Opens a span named `name`. The returned guard closes the span when
/// dropped; bind it (`let _span = span("...")`) so it lives to the end of
/// the timed scope. While tracing is inactive this is one relaxed atomic
/// load and the guard is inert.
///
/// Span names are `&'static str` by design: stage identity is a code-level
/// property, and static names keep the disabled path allocation-free.
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_active() {
        return SpanGuard {
            active: false,
            _not_send: PhantomData,
        };
    }
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame {
            name,
            start: Instant::now(),
            child_elapsed: Duration::ZERO,
        })
    });
    SpanGuard {
        active: true,
        _not_send: PhantomData,
    }
}

/// Closes its span on drop. Not `Send`: a span measures work on the thread
/// that opened it, and the LIFO drop order of stack-bound guards is what
/// keeps the thread-local span stack well-nested.
pub struct SpanGuard {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// `true` when the span is actually being timed (tracing was active
    /// when it opened).
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let record = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack
                .pop()
                .expect("span guards drop in LIFO order (guards are not Send)");
            let wall = frame.start.elapsed();
            let parent = stack.last_mut().map(|p| {
                p.child_elapsed += wall;
                p.name
            });
            SpanRecord {
                name: frame.name,
                parent,
                depth: stack.len(),
                wall,
                self_time: wall.saturating_sub(frame.child_elapsed),
            }
        });
        crate::profile::record_stage(record.name, record.self_time);
        let guard = COLLECTOR.read().unwrap_or_else(|e| e.into_inner());
        if let Some(collector) = guard.as_ref() {
            collector.record(&record);
        }
    }
}

/// One closed span, as delivered to a [`Collector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SpanRecord {
    /// The span's static name.
    pub name: &'static str,
    /// The name of the enclosing span still open on the same thread, if any.
    pub parent: Option<&'static str>,
    /// Nesting depth at close time (0 = no enclosing span).
    pub depth: usize,
    /// Wall time from open to close.
    pub wall: Duration,
    /// Wall time minus the elapsed time of direct children — the span's own
    /// share. Self times of a span tree sum to the root's wall time.
    pub self_time: Duration,
}

/// A sink for closed spans. Implementations must be cheap and non-blocking
/// where possible: `record` runs inline on the traced thread.
pub trait Collector: Send + Sync {
    /// Receives one closed span.
    fn record(&self, span: &SpanRecord);
}

/// The do-nothing sink: installing it exercises the full span machinery
/// (timing, stacks, self-time) while discarding every record — the
/// reference point for overhead measurements and bit-identity checks.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn record(&self, _span: &SpanRecord) {}
}

/// An in-memory sink that appends every record to a vector — the test and
/// debugging collector. Clone the `Arc` you install to inspect it later.
#[derive(Debug, Default)]
pub struct RecordingCollector {
    records: Mutex<Vec<SpanRecord>>,
}

impl RecordingCollector {
    /// An empty recorder.
    pub fn new() -> Self {
        RecordingCollector::default()
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.records.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Collector for RecordingCollector {
    fn record(&self, span: &SpanRecord) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(*span);
    }
}

/// A sink that writes one JSON object per closed span to a writer
/// (`{"name":..,"parent":..,"depth":..,"wall_us":..,"self_us":..}` lines) —
/// the poor man's trace file, readable by any JSONL tool.
pub struct JsonLinesCollector {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesCollector {
    /// Wraps `writer`; records are written (and flushed) per span.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        JsonLinesCollector {
            writer: Mutex::new(Box::new(writer)),
        }
    }
}

impl std::fmt::Debug for JsonLinesCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesCollector").finish_non_exhaustive()
    }
}

impl Collector for JsonLinesCollector {
    fn record(&self, span: &SpanRecord) {
        let parent = match span.parent {
            Some(p) => format!("\"{}\"", crate::metrics::escape_json(p)),
            None => "null".to_string(),
        };
        let line = format!(
            "{{\"name\":\"{}\",\"parent\":{},\"depth\":{},\"wall_us\":{},\"self_us\":{}}}\n",
            crate::metrics::escape_json(span.name),
            parent,
            span.depth,
            span.wall.as_micros(),
            span.self_time.as_micros(),
        );
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// Installs `collector` as the process-wide span sink, replacing any
/// previous one, and activates tracing. Pair with [`clear_collector`].
pub fn set_collector(collector: Arc<dyn Collector>) {
    let mut guard = COLLECTOR.write().unwrap_or_else(|e| e.into_inner());
    if guard.is_none() {
        interest_add();
    }
    *guard = Some(collector);
}

/// Removes the installed collector (if any), deactivating tracing unless
/// profile captures are still live.
pub fn clear_collector() {
    let mut guard = COLLECTOR.write().unwrap_or_else(|e| e.into_inner());
    if guard.take().is_some() {
        interest_sub();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        let _lock = crate::TEST_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!tracing_active());
        let guard = span("never.recorded");
        assert!(!guard.is_active());
        drop(guard);
        // The stack stayed untouched.
        STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn nested_spans_report_parent_depth_and_self_time() {
        let _lock = crate::TEST_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let recorder = Arc::new(RecordingCollector::new());
        set_collector(recorder.clone());
        {
            let _outer = span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        clear_collector();
        let records = recorder.take();
        assert_eq!(records.len(), 2);
        // Children close (and record) before parents.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[0].parent, Some("outer"));
        assert_eq!(records[0].depth, 1);
        assert_eq!(records[1].name, "outer");
        assert_eq!(records[1].parent, None);
        assert_eq!(records[1].depth, 0);
        // The parent's self time excludes the child's wall time.
        assert!(records[1].wall >= records[0].wall);
        assert_eq!(
            records[1].self_time,
            records[1].wall.saturating_sub(records[0].wall)
        );
    }

    #[test]
    fn json_lines_collector_writes_one_line_per_span() {
        let _lock = crate::TEST_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        set_collector(Arc::new(JsonLinesCollector::new(buf.clone())));
        {
            let _a = span("alpha");
            let _b = span("beta");
        }
        clear_collector();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"beta\""));
        assert!(lines[0].contains("\"parent\":\"alpha\""));
        assert!(lines[1].contains("\"name\":\"alpha\""));
        assert!(lines[1].contains("\"parent\":null"));
    }
}
