//! Log-linear latency histograms.
//!
//! [`LatencyHistogram`] records durations into power-of-two buckets
//! subdivided 16 ways (HdrHistogram-style), so every recorded value lands in
//! a bucket whose upper bound overestimates it by at most 1/16 ≈ 6.25% —
//! accurate enough for p50/p99/p999 SLO reporting at a fixed 976-slot
//! footprint, with O(1) record and O(buckets) quantile extraction. The type
//! started life inside `octant-service` (each data-plane shard owns one,
//! merged by the control plane); it lives here so per-stage timing
//! breakdowns and the metrics registry can share the exact same histogram.

use std::time::Duration;

/// Values below this many microseconds get exact one-microsecond buckets.
const LINEAR_MAX: u64 = 16;
/// log2 of the sub-bucket fan-out per power-of-two range.
const SUB_BITS: u32 = 4;
/// Total bucket count: 16 linear + 16 per power-of-two range above 2^4.
const BUCKETS: usize = (LINEAR_MAX as usize) + ((64 - SUB_BITS as usize) << SUB_BITS);

/// A mergeable log-linear histogram of latencies (microsecond resolution,
/// ≤ 6.25% relative bucket error above 16 µs), with an exact running total.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    max_us: u64,
    total_us: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            max_us: 0,
            total_us: 0,
        }
    }
}

/// Bucket index of a microsecond value.
fn index_of(us: u64) -> usize {
    if us < LINEAR_MAX {
        us as usize
    } else {
        // Most significant bit position (≥ SUB_BITS here), then the next
        // SUB_BITS bits select the sub-bucket within the power-of-two range.
        let msb = 63 - us.leading_zeros();
        let sub = ((us >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
        LINEAR_MAX as usize + (((msb - SUB_BITS) as usize) << SUB_BITS) + sub
    }
}

/// Inclusive upper bound (µs) of the values mapping to bucket `index`.
fn upper_bound_of(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        index as u64
    } else {
        let range = (index - LINEAR_MAX as usize) >> SUB_BITS;
        let sub = (index - LINEAR_MAX as usize) & ((1 << SUB_BITS) - 1);
        // First value of the next sub-bucket, minus one (u128: the topmost
        // buckets' bounds overflow u64).
        ((((1u128 << SUB_BITS) + sub as u128 + 1) << range) - 1).min(u64::MAX as u128) as u64
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[index_of(us)] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
        self.total_us += us as u128;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest recorded latency (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// The exact sum of every recorded latency — the quantity per-stage
    /// breakdowns divide by to compute each stage's share of the total.
    pub fn total(&self) -> Duration {
        let us = self.total_us.min(u64::MAX as u128) as u64;
        Duration::from_micros(us)
    }

    /// Folds another histogram's observations into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.max_us = self.max_us.max(other.max_us);
        self.total_us += other.total_us;
    }

    /// The latency at quantile `q` (e.g. `0.99`), as the containing bucket's
    /// upper bound capped at the exact observed maximum. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        // Rank of the q-quantile observation, 1-based, clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_micros(upper_bound_of(i).min(self.max_us));
            }
        }
        Duration::from_micros(self.max_us)
    }

    /// The standard SLO summary (p50 / p99 / p999 / max) of this histogram.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

/// The quantile snapshot a histogram reduces to in aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct LatencySummary {
    /// Number of latencies recorded.
    pub count: u64,
    /// Median request latency.
    pub p50: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// 99.9th-percentile request latency.
    pub p999: Duration,
    /// Largest recorded request latency (exact).
    pub max: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range_without_gaps() {
        // Every probe value maps to a bucket whose bound is >= the value and
        // within 6.25% relative error above the linear range.
        let mut probe = 1u64;
        while probe < u64::MAX / 3 {
            for v in [probe, probe + 1, probe.saturating_mul(3) / 2] {
                let idx = index_of(v);
                assert!(idx < BUCKETS, "index {idx} out of range for {v}");
                let ub = upper_bound_of(idx);
                assert!(ub >= v, "bucket bound {ub} below value {v}");
                if v >= LINEAR_MAX {
                    assert!(
                        (ub - v) as f64 <= v as f64 / 16.0 + 1.0,
                        "bucket bound {ub} too far above {v}"
                    );
                }
            }
            probe = probe.saturating_mul(2);
        }
        // Bucket indices are monotone in the value.
        for v in 0..4096u64 {
            assert!(index_of(v + 1) >= index_of(v));
        }
    }

    #[test]
    fn quantiles_of_a_known_population() {
        let mut h = LatencyHistogram::new();
        // 1000 observations: 1..=1000 milliseconds.
        for ms in 1..=1000u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), Duration::from_millis(1000));
        // The running total is exact: 1+2+..+1000 ms.
        assert_eq!(h.total(), Duration::from_millis(500_500));
        let s = h.summary();
        // Bucketed quantiles overestimate by at most 1/16.
        let p50_ms = s.p50.as_secs_f64() * 1e3;
        let p99_ms = s.p99.as_secs_f64() * 1e3;
        let p999_ms = s.p999.as_secs_f64() * 1e3;
        assert!((500.0..=535.0).contains(&p50_ms), "p50 = {p50_ms}");
        assert!((990.0..=1000.0).contains(&p99_ms), "p99 = {p99_ms}");
        assert!((999.0..=1000.0).contains(&p999_ms), "p999 = {p999_ms}");
        assert!(s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }

    #[test]
    fn empty_and_single_observation_edge_cases() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile(0.5), Duration::ZERO);
        assert_eq!(empty.summary().count, 0);
        assert_eq!(empty.total(), Duration::ZERO);

        let mut one = LatencyHistogram::new();
        one.record(Duration::from_micros(7));
        // Sub-linear values are exact.
        assert_eq!(one.quantile(0.0), Duration::from_micros(7));
        assert_eq!(one.quantile(1.0), Duration::from_micros(7));
        assert_eq!(one.total(), Duration::from_micros(7));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500u64 {
            let d = Duration::from_micros(i * 37 + 5);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.total(), whole.total());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q = {q}");
        }
    }
}
