//! Per-request stage profiles: a thread-local capture that folds the
//! **self time** of every span closed on the capturing thread into a named
//! stage table.
//!
//! Because self times of a span tree partition the root's wall time (see
//! [`crate::span`]), a capture wrapped around one top-level span yields a
//! [`StageProfile`] whose stage sum equals that span's wall time — stage
//! sums can never exceed the measured wall time by construction.
//!
//! Captures are thread-local on purpose: Octant's batch engine fans
//! requests out one-target-per-worker (each target's solve runs entirely on
//! one thread), so a capture opened inside the per-target closure observes
//! exactly that target's stages and nothing from its neighbours.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Duration;

thread_local! {
    /// The calling thread's open capture, if any.
    static CAPTURE: RefCell<Option<StageProfile>> = const { RefCell::new(None) };
}

/// One named stage of a profile: accumulated self-wall-time and call count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// The stage (span) name.
    pub name: &'static str,
    /// Accumulated self time across all calls.
    pub wall: Duration,
    /// Number of spans folded into this stage.
    pub calls: u64,
}

/// A per-request breakdown: stages in first-observed order, each with its
/// accumulated wall time and call count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageProfile {
    stages: Vec<Stage>,
}

impl StageProfile {
    /// The stages, in first-observed order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The stage named `name`, if observed.
    pub fn stage(&self, name: &str) -> Option<&Stage> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Sum of every stage's wall time.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// `true` when no stage has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Folds `wall` and `calls` into the stage named `name`, appending the
    /// stage if it is new.
    pub fn add(&mut self, name: &'static str, wall: Duration, calls: u64) {
        match self.stages.iter_mut().find(|s| s.name == name) {
            Some(stage) => {
                stage.wall += wall;
                stage.calls += calls;
            }
            None => self.stages.push(Stage { name, wall, calls }),
        }
    }

    /// Like [`StageProfile::add`], but a new stage is inserted at the
    /// front — used for stages that logically precede everything already
    /// captured (e.g. queue wait before the solve).
    pub fn prepend(&mut self, name: &'static str, wall: Duration, calls: u64) {
        match self.stages.iter_mut().find(|s| s.name == name) {
            Some(stage) => {
                stage.wall += wall;
                stage.calls += calls;
            }
            None => self.stages.insert(0, Stage { name, wall, calls }),
        }
    }

    /// Folds every stage of `other` into this profile.
    pub fn merge(&mut self, other: &StageProfile) {
        for stage in &other.stages {
            self.add(stage.name, stage.wall, stage.calls);
        }
    }
}

/// Starts capturing span self-times on the calling thread, activating
/// tracing process-wide for the capture's lifetime. Finish with
/// [`CaptureGuard::finish`]; dropping the guard without finishing discards
/// the capture. A nested capture shadows the outer one until it ends.
pub fn begin_capture() -> CaptureGuard {
    crate::span::interest_add();
    let prev = CAPTURE.with(|c| c.borrow_mut().replace(StageProfile::default()));
    CaptureGuard {
        prev,
        finished: false,
        _not_send: PhantomData,
    }
}

/// Folds one closed span's self time into the thread's open capture, if
/// any. Called by the span core on every close while tracing is active.
pub(crate) fn record_stage(name: &'static str, self_time: Duration) {
    CAPTURE.with(|c| {
        if let Some(profile) = c.borrow_mut().as_mut() {
            profile.add(name, self_time, 1);
        }
    });
}

/// An open profile capture on the current thread; see [`begin_capture`].
/// Not `Send`: the capture belongs to the thread whose spans it observes.
pub struct CaptureGuard {
    prev: Option<StageProfile>,
    finished: bool,
    _not_send: PhantomData<*const ()>,
}

impl CaptureGuard {
    /// Ends the capture and returns the accumulated profile, restoring any
    /// outer capture that was shadowed.
    pub fn finish(mut self) -> StageProfile {
        self.finished = true;
        crate::span::interest_sub();
        CAPTURE
            .with(|c| std::mem::replace(&mut *c.borrow_mut(), self.prev.take()))
            .unwrap_or_default()
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if !self.finished {
            crate::span::interest_sub();
            CAPTURE.with(|c| *c.borrow_mut() = self.prev.take());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::span;

    #[test]
    fn capture_partitions_the_top_span_wall_time() {
        let _lock = crate::TEST_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let capture = begin_capture();
        let start = std::time::Instant::now();
        {
            let _top = span("top");
            std::thread::sleep(Duration::from_millis(2));
            for _ in 0..2 {
                let _child = span("child");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let wall = start.elapsed();
        let profile = capture.finish();
        assert_eq!(profile.stages().len(), 2);
        assert_eq!(profile.stage("child").unwrap().calls, 2);
        assert_eq!(profile.stage("top").unwrap().calls, 1);
        // Self times partition the top span's wall: the sum can never
        // exceed the wall time measured around the whole scope.
        assert!(profile.total() <= wall, "{:?} > {wall:?}", profile.total());
        assert!(profile.total() >= Duration::from_millis(3));
    }

    #[test]
    fn unfinished_capture_is_discarded_and_interest_released() {
        let _lock = crate::TEST_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        {
            let _capture = begin_capture();
            let _span = span("dropped.with.capture");
        }
        // Interest returned to zero: new spans are inert again.
        assert!(!crate::span::tracing_active());
        CAPTURE.with(|c| assert!(c.borrow().is_none()));
    }

    #[test]
    fn nested_capture_shadows_and_restores_the_outer_one() {
        let _lock = crate::TEST_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let outer = begin_capture();
        {
            let _outer_span = span("outer.stage");
        }
        let inner = begin_capture();
        {
            let _inner_span = span("inner.stage");
        }
        let inner_profile = inner.finish();
        {
            let _outer_span = span("outer.stage");
        }
        let outer_profile = outer.finish();
        assert!(inner_profile.stage("inner.stage").is_some());
        assert!(inner_profile.stage("outer.stage").is_none());
        assert_eq!(outer_profile.stage("outer.stage").unwrap().calls, 2);
        assert!(outer_profile.stage("inner.stage").is_none());
    }

    #[test]
    fn merge_and_prepend_accumulate_by_name() {
        let mut a = StageProfile::default();
        a.add("solve", Duration::from_millis(5), 1);
        let mut b = StageProfile::default();
        b.add("solve", Duration::from_millis(3), 1);
        b.add("source.latency", Duration::from_millis(2), 4);
        a.merge(&b);
        assert_eq!(a.stage("solve").unwrap().wall, Duration::from_millis(8));
        assert_eq!(a.stage("solve").unwrap().calls, 2);
        a.prepend("queue_wait", Duration::from_millis(1), 1);
        assert_eq!(a.stages()[0].name, "queue_wait");
        assert_eq!(a.total(), Duration::from_millis(11));
    }
}
