//! The process-wide metrics registry: named counters, gauges, and
//! histograms under stable dotted names, with a serializable snapshot.
//!
//! ## Handle model
//!
//! [`MetricsRegistry::counter`] (and friends) return an owned **handle**
//! backed by its own atomic; the registry keeps only a weak reference. Many
//! handles may share one name — each cache instance, shard, or thread bumps
//! its own cacheline-private atomic, and [`MetricsRegistry::snapshot`] sums
//! the live handles per name. When the last clone of a counter or histogram
//! handle drops, its final value is folded into a per-name *retired*
//! accumulator, so process totals never regress when a component (say, a
//! service's router cache) is torn down. Gauges are instantaneous by
//! nature, so a dropped gauge simply leaves the sum.
//!
//! This is what lets a component keep exact *instance* counters (its own
//! handle) while the registry reports exact *process* totals — one bump,
//! one code path, two views.

use crate::histogram::{LatencyHistogram, LatencySummary};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

/// Backing cell of a [`Counter`]: the live value plus the per-name retired
/// accumulator the value folds into when the last handle drops.
#[derive(Debug)]
struct CounterCell {
    value: AtomicU64,
    retired: Arc<AtomicU64>,
}

impl Drop for CounterCell {
    fn drop(&mut self) {
        let v = self.value.load(Ordering::Relaxed);
        if v > 0 {
            self.retired.fetch_add(v, Ordering::Relaxed);
        }
    }
}

/// A monotonically increasing counter handle. Clones share one cell; bumps
/// are one relaxed atomic add.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<CounterCell>,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// This handle's own value (not the per-name process total; for that,
    /// see [`MetricsRegistry::counter_value`]).
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed gauge handle (queue depths, resident entries).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is currently lower (high-water marks).
    pub fn raise_to(&self, v: i64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// This handle's own value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Backing cell of a [`HistogramHandle`]; folds into the per-name retained
/// histogram on drop, mirroring [`CounterCell`].
#[derive(Debug)]
struct HistogramCell {
    hist: Mutex<LatencyHistogram>,
    retired: Arc<Mutex<LatencyHistogram>>,
}

impl Drop for HistogramCell {
    fn drop(&mut self) {
        let hist = self.hist.get_mut().unwrap_or_else(|e| e.into_inner());
        if hist.count() > 0 {
            self.retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .merge(hist);
        }
    }
}

/// A named latency-histogram handle; records are one short mutex-guarded
/// bucket bump.
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    cell: Arc<HistogramCell>,
}

impl HistogramHandle {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        self.cell
            .hist
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(d);
    }

    /// Folds a whole histogram in.
    pub fn merge(&self, other: &LatencyHistogram) {
        self.cell
            .hist
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(other);
    }

    /// A copy of this handle's own histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.cell
            .hist
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Per-name registry slot for counters.
#[derive(Debug)]
struct CounterSlot {
    live: Vec<Weak<CounterCell>>,
    retired: Arc<AtomicU64>,
}

impl Default for CounterSlot {
    fn default() -> Self {
        CounterSlot {
            live: Vec::new(),
            retired: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Per-name registry slot for histograms.
struct HistogramSlot {
    live: Vec<Weak<HistogramCell>>,
    retired: Arc<Mutex<LatencyHistogram>>,
}

impl Default for HistogramSlot {
    fn default() -> Self {
        HistogramSlot {
            live: Vec::new(),
            retired: Arc::new(Mutex::new(LatencyHistogram::new())),
        }
    }
}

/// The registry of named metrics; usually used through
/// [`MetricsRegistry::global`]. See the module docs for the handle model.
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, CounterSlot>>,
    gauges: Mutex<BTreeMap<String, Vec<Weak<AtomicI64>>>>,
    histograms: Mutex<BTreeMap<String, HistogramSlot>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry (for isolated tests; production code shares
    /// [`MetricsRegistry::global`]).
    pub const fn new() -> Self {
        MetricsRegistry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide registry every Octant component registers into.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: MetricsRegistry = MetricsRegistry::new();
        &GLOBAL
    }

    /// Creates a fresh counter handle registered under `name` (dotted
    /// lower-case, e.g. `"router_cache.hits"`).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let slot = map.entry(name.to_string()).or_default();
        let cell = Arc::new(CounterCell {
            value: AtomicU64::new(0),
            retired: slot.retired.clone(),
        });
        slot.live.retain(|w| w.strong_count() > 0);
        slot.live.push(Arc::downgrade(&cell));
        Counter { cell }
    }

    /// Creates a fresh gauge handle registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        let slot = map.entry(name.to_string()).or_default();
        let cell = Arc::new(AtomicI64::new(0));
        slot.retain(|w| w.strong_count() > 0);
        slot.push(Arc::downgrade(&cell));
        Gauge { cell }
    }

    /// Creates a fresh histogram handle registered under `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        let slot = map.entry(name.to_string()).or_default();
        let cell = Arc::new(HistogramCell {
            hist: Mutex::new(LatencyHistogram::new()),
            retired: slot.retired.clone(),
        });
        slot.live.retain(|w| w.strong_count() > 0);
        slot.live.push(Arc::downgrade(&cell));
        HistogramHandle { cell }
    }

    /// The process total for counter `name`: retired value plus the sum of
    /// every live handle. Zero when the name was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.get(name).map_or(0, |slot| {
            slot.retired.load(Ordering::Relaxed)
                + slot
                    .live
                    .iter()
                    .filter_map(|w| w.upgrade())
                    .map(|c| c.value.load(Ordering::Relaxed))
                    .sum::<u64>()
        })
    }

    /// A point-in-time view of every metric, names sorted, dead handles
    /// pruned. Counter and histogram totals include retired contributions.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            map.iter_mut()
                .map(|(name, slot)| {
                    slot.live.retain(|w| w.strong_count() > 0);
                    let total = slot.retired.load(Ordering::Relaxed)
                        + slot
                            .live
                            .iter()
                            .filter_map(|w| w.upgrade())
                            .map(|c| c.value.load(Ordering::Relaxed))
                            .sum::<u64>();
                    (name.clone(), total)
                })
                .collect()
        };
        let gauges = {
            let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            map.iter_mut()
                .map(|(name, slot)| {
                    slot.retain(|w| w.strong_count() > 0);
                    let total = slot
                        .iter()
                        .filter_map(|w| w.upgrade())
                        .map(|c| c.load(Ordering::Relaxed))
                        .sum::<i64>();
                    (name.clone(), total)
                })
                .collect()
        };
        let histograms = {
            let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            map.iter_mut()
                .map(|(name, slot)| {
                    slot.live.retain(|w| w.strong_count() > 0);
                    let mut merged = slot
                        .retired
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .clone();
                    for cell in slot.live.iter().filter_map(|w| w.upgrade()) {
                        merged.merge(&cell.hist.lock().unwrap_or_else(|e| e.into_inner()));
                    }
                    (name.clone(), merged.summary())
                })
                .collect()
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time view of a [`MetricsRegistry`]: flat sorted name/value
/// lists, renderable as a nested JSON tree via
/// [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, process total)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, summed value)` for every registered gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, merged summary)` for every registered histogram, sorted.
    pub histograms: Vec<(String, LatencySummary)>,
}

impl MetricsSnapshot {
    /// The total for counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders the snapshot as a JSON tree: dotted names become nested
    /// objects (`"router_cache.hits"` → `{"router_cache":{"hits":N}}`),
    /// histograms become `{count, p50_ms, p99_ms, p999_ms, max_ms}` leaves.
    pub fn to_json(&self) -> String {
        let mut root: BTreeMap<String, Node> = BTreeMap::new();
        for (name, v) in &self.counters {
            insert(&mut root, name, v.to_string());
        }
        for (name, v) in &self.gauges {
            insert(&mut root, name, v.to_string());
        }
        for (name, s) in &self.histograms {
            insert(&mut root, name, summary_json(s));
        }
        render(&root)
    }
}

/// Renders a [`LatencySummary`] as a JSON object (milliseconds).
pub fn summary_json(s: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"max_ms\": {:.3}}}",
        s.count,
        s.p50.as_secs_f64() * 1e3,
        s.p99.as_secs_f64() * 1e3,
        s.p999.as_secs_f64() * 1e3,
        s.max.as_secs_f64() * 1e3,
    )
}

/// A node of the dotted-name JSON tree: a pre-rendered leaf value or a
/// nested object.
enum Node {
    Leaf(String),
    Branch(BTreeMap<String, Node>),
}

/// Inserts `value` at dotted path `name`, creating branches as needed. If a
/// segment collides with an existing leaf, the remaining path is kept flat
/// under the current level (metric names are chosen not to collide; this
/// just keeps the renderer total).
fn insert(map: &mut BTreeMap<String, Node>, name: &str, value: String) {
    let mut current = map;
    let mut parts = name.split('.').peekable();
    while let Some(part) = parts.next() {
        if parts.peek().is_none() {
            current.insert(part.to_string(), Node::Leaf(value));
            return;
        }
        let needs_flat = matches!(current.get(part), Some(Node::Leaf(_)));
        if needs_flat {
            let rest: Vec<&str> = std::iter::once(part).chain(parts).collect();
            current.insert(rest.join("."), Node::Leaf(value));
            return;
        }
        current = match current
            .entry(part.to_string())
            .or_insert_with(|| Node::Branch(BTreeMap::new()))
        {
            Node::Branch(b) => b,
            Node::Leaf(_) => unreachable!("leaf collisions handled above"),
        };
    }
}

/// Escapes a string for embedding in a JSON document.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render(map: &BTreeMap<String, Node>) -> String {
    let mut out = String::from("{");
    for (i, (key, node)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(&escape_json(key));
        out.push_str("\": ");
        match node {
            Node::Leaf(v) => out.push_str(v),
            Node::Branch(b) => out.push_str(&render(b)),
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_a_name_and_snapshot_sums_them() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("cache.hits");
        let b = reg.counter("cache.hits");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 3, "instance view stays exact");
        assert_eq!(reg.counter_value("cache.hits"), 7);
        assert_eq!(reg.snapshot().counter("cache.hits"), Some(7));
    }

    #[test]
    fn dropping_a_counter_retires_its_value() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("work.done");
        a.add(10);
        drop(a);
        let b = reg.counter("work.done");
        b.add(5);
        assert_eq!(reg.counter_value("work.done"), 15);
        // Gauges, by contrast, drop their contribution with the handle.
        let g = reg.gauge("queue.depth");
        g.set(7);
        assert_eq!(reg.snapshot().gauge("queue.depth"), Some(7));
        drop(g);
        assert_eq!(reg.snapshot().gauge("queue.depth"), Some(0));
    }

    #[test]
    fn gauge_supports_set_add_and_high_water() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.raise_to(10);
        g.raise_to(4);
        assert_eq!(g.get(), 10);
        g.set(1);
        assert_eq!(reg.snapshot().gauge("depth"), Some(1));
    }

    #[test]
    fn histograms_merge_across_handles_and_retire_on_drop() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram("stage.solve");
        let b = reg.histogram("stage.solve");
        a.record(Duration::from_millis(10));
        b.record(Duration::from_millis(20));
        let snap = reg.snapshot();
        let (_, s) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "stage.solve")
            .unwrap();
        assert_eq!(s.count, 2);
        drop(a);
        drop(b);
        let snap = reg.snapshot();
        let (_, s) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "stage.solve")
            .unwrap();
        assert_eq!(s.count, 2, "dropped handles fold into the retired slot");
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let reg = MetricsRegistry::new();
        let b = reg.counter("b.two");
        let a = reg.counter("a.one");
        a.inc();
        b.add(2);
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1, s2);
        let names: Vec<&str> = s1.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.one", "b.two"]);
    }

    #[test]
    fn json_tree_nests_dotted_names() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("router_cache.hits");
        c.add(12);
        let m = reg.counter("router_cache.misses");
        m.add(3);
        let g = reg.gauge("service.shard0.queue_depth");
        g.set(4);
        let json = reg.snapshot().to_json();
        assert_eq!(
            json,
            "{\"router_cache\": {\"hits\": 12, \"misses\": 3}, \
             \"service\": {\"shard0\": {\"queue_depth\": 4}}}"
        );
    }
}
