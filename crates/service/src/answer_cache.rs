//! The per-target-prefix answer memo sitting **in front of** the pipeline.
//!
//! [`crate::RouterCache`] memoizes work *behind* the solve (router
//! sub-localizations shared by many targets); [`AnswerCache`] memoizes the
//! solve itself. Repeat lookups for the same target /24 — the dominant
//! pattern a production geolocation service sees, since a prefix's hosts
//! share routing and the same clients re-resolve the same prefixes — are
//! answered with the previously computed estimate, skipping the entire
//! constraint pipeline.
//!
//! ## Key and invalidation semantics
//!
//! Entries are keyed `(model epoch, target /24 prefix, evidence
//! selection)`:
//!
//! * **epoch** — answers are only ever replayed against the exact model
//!   that produced them. A [`crate::ModelRegistry`] refresh bumps the
//!   epoch, so every existing entry silently stops matching; refresh
//!   maintenance then drops retired epochs eagerly
//!   ([`AnswerCache::retire_epochs_before`], same retention policy as the
//!   router cache).
//! * **/24 prefix** — targets whose IP the provider knows are keyed by
//!   their /24 ([`TargetKey::Prefix`]); unknown-IP targets fall back to
//!   their node id ([`TargetKey::Node`]). Prefix keying encodes the
//!   serving-tier assumption that a /24 localizes as a unit (hosts of one
//!   /24 share access infrastructure — the same assumption behind
//!   [`crate::ShardRouter`]'s prefix routing).
//! * **evidence** — requests that disable or re-weight pipeline sources
//!   run a different pipeline and get their own entries
//!   ([`EvidenceKey`]); option sets are compared verbatim, so two
//!   requests share an entry only when their adjusted pipelines are
//!   constructed identically. Profiled requests bypass the memo entirely
//!   (their estimates carry request-specific wall-time profiles).
//!
//! Against a replay-stable provider a hit is **bit-identical** to a fresh
//! solve (pinned by `tests/ingest_parity.rs`): same epoch means same
//! model, same evidence means same pipeline, and the solve is a pure
//! function of both.
//!
//! Counters are registered under `answer_cache.*` in
//! [`MetricsRegistry::global`].

use crate::service::LocalizeOptions;
use octant::{LocationEstimate, SourceId};
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use octant_telemetry::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Sizing and retention knobs of an [`AnswerCache`].
///
/// `#[non_exhaustive]`: construct via [`AnswerCacheConfig::default`] and
/// the builder-style `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct AnswerCacheConfig {
    /// Master switch. Enabled by default: with a replay-stable provider a
    /// hit is bit-identical to a fresh solve. Disable for providers whose
    /// repeat measurements should influence repeat answers within an epoch.
    pub enabled: bool,
    /// Soft capacity cap. When an insert pushes the cache past this size,
    /// entries from **retired** epochs are evicted first (oldest first,
    /// deterministically); current-epoch entries are evicted only when no
    /// retired entries remain.
    pub max_entries: usize,
    /// How many epochs refresh-maintenance keeps (the service drops
    /// everything older than `current_epoch - keep_epochs + 1` after a
    /// model refresh). Minimum 1.
    pub keep_epochs: u64,
}

impl Default for AnswerCacheConfig {
    fn default() -> Self {
        AnswerCacheConfig {
            enabled: true,
            max_entries: 8192,
            keep_epochs: 1,
        }
    }
}

octant::config_setters!(AnswerCacheConfig {
    /// Enables or disables the answer memo.
    with_enabled: enabled: bool,
    /// Sets the soft entry cap.
    with_max_entries: max_entries: usize,
    /// Sets how many epochs refresh-maintenance retains.
    with_keep_epochs: keep_epochs: u64,
});

/// Counter snapshot of an [`AnswerCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct AnswerCacheStats {
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that fell through to the solve pipeline.
    pub misses: u64,
    /// Entries written after a successful solve.
    pub insertions: u64,
    /// Entries removed by epoch retirement or the capacity cap.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl AnswerCacheStats {
    /// Fraction of lookups answered from the memo (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How a target is identified in an answer key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TargetKey {
    /// The target's /24 IP prefix (the first three octets), for targets
    /// whose address the provider's host table lists.
    Prefix([u8; 3]),
    /// Fallback for targets with no known address: the node id itself.
    Node(NodeId),
}

/// The canonicalized evidence selection of a request: the part of
/// [`LocalizeOptions`] that changes which pipeline answers the request.
/// Weight scales keep their f64 bit patterns (and their order — the
/// adjusted pipeline is constructed from the options verbatim, so only
/// verbatim-equal options are guaranteed the same pipeline).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EvidenceKey {
    disabled: Vec<SourceId>,
    scales: Vec<(SourceId, u64)>,
}

impl EvidenceKey {
    /// Builds the key for a request's options.
    pub fn from_options(options: &LocalizeOptions) -> Self {
        EvidenceKey {
            disabled: options.disabled_sources.clone(),
            scales: options
                .weight_scales
                .iter()
                .map(|&(id, scale)| (id, scale.to_bits()))
                .collect(),
        }
    }
}

/// A full answer-memo key. Epoch leads so the derived `Ord` retires oldest
/// epochs first under the capacity cap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AnswerKey {
    /// The model epoch the answer was computed against.
    pub epoch: u64,
    /// The target identity (prefix or node fallback).
    pub target: TargetKey,
    /// The request's evidence selection (`None` = the base pipeline).
    pub evidence: Option<EvidenceKey>,
}

/// The target → /24 prefix table, built once from the provider's (static)
/// host list — the same provider facts [`crate::ShardRouter`] routes on.
#[derive(Debug, Default)]
pub struct PrefixTable {
    by_target: HashMap<NodeId, [u8; 3]>,
}

impl PrefixTable {
    /// Builds the table over `provider`'s hosts.
    pub fn build(provider: &dyn ObservationProvider) -> Self {
        PrefixTable {
            by_target: provider
                .hosts()
                .into_iter()
                .map(|h| (h.id, [h.ip[0], h.ip[1], h.ip[2]]))
                .collect(),
        }
    }

    /// The answer-key identity of `target`: its /24 prefix when the host
    /// table lists it, the node id otherwise.
    pub fn target_key(&self, target: NodeId) -> TargetKey {
        match self.by_target.get(&target) {
            Some(&prefix) => TargetKey::Prefix(prefix),
            None => TargetKey::Node(target),
        }
    }
}

/// The epoch-aware answer memo. See the module docs for semantics.
#[derive(Debug)]
pub struct AnswerCache {
    config: AnswerCacheConfig,
    entries: Mutex<HashMap<AnswerKey, Arc<LocationEstimate>>>,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

impl Default for AnswerCache {
    fn default() -> Self {
        let registry = MetricsRegistry::global();
        AnswerCache {
            config: AnswerCacheConfig::default(),
            entries: Mutex::new(HashMap::new()),
            hits: registry.counter("answer_cache.hits"),
            misses: registry.counter("answer_cache.misses"),
            insertions: registry.counter("answer_cache.insertions"),
            evictions: registry.counter("answer_cache.evictions"),
        }
    }
}

impl AnswerCache {
    /// Creates a cache with the given configuration.
    pub fn new(config: AnswerCacheConfig) -> Self {
        AnswerCache {
            config,
            ..AnswerCache::default()
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> AnswerCacheConfig {
        self.config
    }

    /// `true` when the memo is consulted at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Looks up an answer, counting a hit or a miss.
    pub fn lookup(&self, key: &AnswerKey) -> Option<Arc<LocationEstimate>> {
        let found = self.entries.lock().get(key).cloned();
        match &found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        found
    }

    /// Stores a freshly solved answer, evicting over-cap entries
    /// (retired-epoch entries first, oldest first, deterministically).
    pub fn insert(&self, key: AnswerKey, estimate: Arc<LocationEstimate>) {
        let mut map = self.entries.lock();
        let epoch = key.epoch;
        if map.insert(key, estimate).is_none() {
            self.insertions.inc();
        }
        if map.len() > self.config.max_entries {
            let over = map.len() - self.config.max_entries;
            let mut victims: Vec<AnswerKey> = map.keys().cloned().collect();
            victims.sort_unstable();
            // Oldest epochs sort first; within the current epoch the
            // deterministic key order still breaks ties, but retired
            // entries are always consumed before current-epoch ones.
            let mut evicted = 0u64;
            for key in victims
                .iter()
                .filter(|k| k.epoch != epoch)
                .chain(victims.iter().filter(|k| k.epoch == epoch))
                .take(over)
            {
                map.remove(key);
                evicted += 1;
            }
            if evicted > 0 {
                self.evictions.add(evicted);
            }
        }
    }

    /// Drops every entry whose epoch is strictly below `min_epoch`
    /// (model-refresh maintenance). Returns the number removed.
    pub fn retire_epochs_before(&self, min_epoch: u64) -> usize {
        let removed = {
            let mut map = self.entries.lock();
            let before = map.len();
            map.retain(|k, _| k.epoch >= min_epoch);
            before - map.len()
        };
        if removed > 0 {
            self.evictions.add(removed as u64);
        }
        removed
    }

    /// Number of resident entries belonging to `epoch`.
    pub fn entries_for_epoch(&self, epoch: u64) -> usize {
        self.entries
            .lock()
            .keys()
            .filter(|k| k.epoch == epoch)
            .count()
    }

    /// Number of resident entries across all epochs.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A counter snapshot.
    pub fn stats(&self) -> AnswerCacheStats {
        AnswerCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dataset;

    fn key(epoch: u64, prefix: [u8; 3]) -> AnswerKey {
        AnswerKey {
            epoch,
            target: TargetKey::Prefix(prefix),
            evidence: None,
        }
    }

    #[test]
    fn lookup_miss_insert_hit_roundtrip() {
        let cache = AnswerCache::default();
        let k = key(1, [128, 1, 13]);
        assert!(cache.lookup(&k).is_none());
        let estimate = Arc::new(LocationEstimate::unknown());
        cache.insert(k.clone(), estimate.clone());
        let back = cache.lookup(&k).expect("inserted answer is resident");
        assert!(Arc::ptr_eq(&back, &estimate), "hits share the Arc");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let cache = AnswerCache::default();
        cache.insert(key(1, [128, 1, 13]), Arc::new(LocationEstimate::unknown()));
        assert!(
            cache.lookup(&key(2, [128, 1, 13])).is_none(),
            "a refreshed epoch must never replay an old answer"
        );
        assert_eq!(cache.retire_epochs_before(2), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn evidence_selection_partitions_entries() {
        let cache = AnswerCache::default();
        let base = key(1, [10, 0, 0]);
        let ablated = AnswerKey {
            evidence: Some(EvidenceKey::from_options(
                &LocalizeOptions::default().without_source(SourceId::Router),
            )),
            ..base.clone()
        };
        cache.insert(base.clone(), Arc::new(LocationEstimate::unknown()));
        assert!(cache.lookup(&ablated).is_none());
        cache.insert(ablated.clone(), Arc::new(LocationEstimate::unknown()));
        assert_eq!(cache.len(), 2);
        // A deadline does not change the evidence key.
        let with_deadline = AnswerKey {
            evidence: Some(EvidenceKey::from_options(
                &LocalizeOptions::default()
                    .without_source(SourceId::Router)
                    .with_deadline(std::time::Duration::from_secs(1)),
            )),
            ..base
        };
        assert!(cache.lookup(&with_deadline).is_some());
    }

    #[test]
    fn capacity_cap_evicts_retired_epochs_first() {
        let cache = AnswerCache::new(AnswerCacheConfig::default().with_max_entries(4));
        for i in 0..4u8 {
            cache.insert(key(1, [1, i, 0]), Arc::new(LocationEstimate::unknown()));
        }
        for i in 0..3u8 {
            cache.insert(key(2, [2, i, 0]), Arc::new(LocationEstimate::unknown()));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(
            cache.entries_for_epoch(2),
            3,
            "current-epoch entries survive while retired ones remain"
        );
        assert_eq!(cache.stats().evictions, 3);
    }

    #[test]
    fn prefix_table_keys_known_hosts_by_slash24() {
        let ds = dataset(6, 7);
        let table = PrefixTable::build(&ds);
        for h in ds.hosts() {
            assert_eq!(
                table.target_key(h.id),
                TargetKey::Prefix([h.ip[0], h.ip[1], h.ip[2]])
            );
        }
        let unknown = NodeId(987_654);
        assert_eq!(table.target_key(unknown), TargetKey::Node(unknown));
    }
}
