//! Serving-tier statistics: monotonic counters, point-in-time gauges, and
//! latency quantiles — kept in **separate sections** so aggregation across
//! shards is well-defined (counters sum, gauges are reported per shard,
//! histograms merge).
//!
//! The pre-sharding `ServiceStats` mixed a point-in-time `queue_depth` gauge
//! into a struct of monotonic counters, which had no correct cross-shard
//! aggregation (summing gauges sampled at different instants reports a depth
//! no shard ever had — and hides which shard is backed up). The split types
//! here fix that asymmetry: [`ServiceCounters`] is strictly monotonic and
//! sums, [`QueueSnapshot`] is strictly instantaneous and stays per-shard.

use crate::answer_cache::AnswerCacheStats;
use crate::cache::RouterCacheStats;
use octant_telemetry::{LatencySummary, MetricsSnapshot};
use std::time::Duration;

/// Monotonic serving counters. Within a [`ShardStats`] these are one
/// shard's; in [`ServiceStats`] they are the sum over all shards.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct ServiceCounters {
    /// Micro-batches solved.
    pub batches: u64,
    /// Targets solved and delivered as [`ServeOutcome::Served`].
    ///
    /// [`ServeOutcome::Served`]: crate::ServeOutcome::Served
    pub targets_served: u64,
    /// Largest micro-batch drained (a high-water mark: monotonic, but maxes
    /// rather than sums across shards).
    pub largest_batch: usize,
    /// Micro-batches whose solve panicked; their targets were answered with
    /// unknown estimates instead of hanging the request.
    pub failed_batches: u64,
    /// Targets shed at admission because the shard's bounded queue was full.
    pub shed_queue_full: u64,
    /// Targets shed at drain time because their deadline expired while they
    /// waited in the queue (they were never solved).
    pub deadline_expired: u64,
}

impl ServiceCounters {
    /// Total shed targets across every reason (queue-full + deadline).
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.deadline_expired
    }

    /// Folds another shard's counters into this aggregate: counters sum,
    /// the high-water mark maxes.
    pub fn absorb(&mut self, other: &ServiceCounters) {
        self.batches += other.batches;
        self.targets_served += other.targets_served;
        self.largest_batch = self.largest_batch.max(other.largest_batch);
        self.failed_batches += other.failed_batches;
        self.shed_queue_full += other.shed_queue_full;
        self.deadline_expired += other.deadline_expired;
    }
}

/// A point-in-time gauge of one shard's queue. Never summed across shards:
/// each snapshot is taken under that shard's queue lock, and depths sampled
/// at different instants do not add up to anything meaningful.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct QueueSnapshot {
    /// The shard this gauge was sampled from.
    pub shard: usize,
    /// Targets waiting in the shard's queue at sampling time.
    pub depth: usize,
}

/// One data-plane shard's statistics: its own counters, its queue gauge,
/// and its latency quantiles.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// The shard's monotonic counters.
    pub counters: ServiceCounters,
    /// The shard's queue gauge.
    pub queue: QueueSnapshot,
    /// Quantiles of the shard's served-request latencies
    /// (enqueue → completion).
    pub latency: LatencySummary,
}

/// The aggregate statistics snapshot of a serving tier.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Current model epoch.
    pub epoch: u64,
    /// Counters summed over every shard (the high-water mark maxes).
    pub counters: ServiceCounters,
    /// Per-shard queue gauges (one entry per shard, in shard order).
    pub queues: Vec<QueueSnapshot>,
    /// Quantiles of the merged per-shard latency histograms.
    pub latency: LatencySummary,
    /// Router cache counters, summed over every cache slice.
    pub cache: RouterCacheStats,
    /// Answer-memo counters (the per-target-prefix estimate cache in front
    /// of the pipeline).
    pub answers: AnswerCacheStats,
}

impl ServiceStats {
    /// Total queued targets across all shards. A convenience for tests and
    /// single-shard callers; remember each addend is a gauge sampled under
    /// its own shard's lock, not one instant's global depth.
    pub fn queue_depth_total(&self) -> usize {
        self.queues.iter().map(|q| q.depth).sum()
    }

    /// Fraction of finished targets that were shed rather than served
    /// (0 when nothing has finished).
    pub fn shed_rate(&self) -> f64 {
        let total = self.counters.targets_served + self.counters.shed();
        if total == 0 {
            0.0
        } else {
            self.counters.shed() as f64 / total as f64
        }
    }
}

/// One merged per-stage wall-time row of a [`StatsReport`]: how much serve
/// wall time the stage accumulated across every shard, with quantiles over
/// its per-observation samples.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct StageBreakdown {
    /// The stage name (`queue_wait`, `solve`, `source.latency`, …).
    pub name: &'static str,
    /// Number of observations folded in.
    pub count: u64,
    /// Total wall time across all observations.
    pub total: Duration,
    /// Quantiles of the per-observation wall times.
    pub latency: LatencySummary,
}

/// The full observability export of a serving tier: the aggregate
/// [`ServiceStats`], the merged per-stage breakdown, and a snapshot of the
/// process-wide metrics registry. Produced by
/// `ShardedService::stats_report`; render with [`StatsReport::to_json`] or
/// `Display`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct StatsReport {
    /// Counters, queue gauges, latency quantiles, cache counters.
    pub stats: ServiceStats,
    /// Per-stage wall-time rows, merged over every shard, in first-observed
    /// order (`queue_wait` leads when present).
    pub stage_breakdown: Vec<StageBreakdown>,
    /// A point-in-time snapshot of
    /// [`octant_telemetry::MetricsRegistry::global`].
    pub registry: MetricsSnapshot,
}

impl StatsReport {
    /// Renders the report as a single JSON object (hand-rolled; the
    /// workspace is offline, so there is no serializer dependency).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let mut out = String::from("{");
        out.push_str(&format!("\"epoch\": {}", s.epoch));
        out.push_str(&format!(
            ", \"counters\": {{\"batches\": {}, \"targets_served\": {}, \"largest_batch\": {}, \
             \"failed_batches\": {}, \"shed_queue_full\": {}, \"deadline_expired\": {}}}",
            s.counters.batches,
            s.counters.targets_served,
            s.counters.largest_batch,
            s.counters.failed_batches,
            s.counters.shed_queue_full,
            s.counters.deadline_expired,
        ));
        out.push_str(", \"queues\": [");
        for (i, q) in s.queues.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"shard\": {}, \"depth\": {}}}",
                q.shard, q.depth
            ));
        }
        out.push(']');
        out.push_str(&format!(
            ", \"latency\": {}",
            octant_telemetry::summary_json(&s.latency)
        ));
        out.push_str(&format!(
            ", \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}}}",
            s.cache.hits, s.cache.misses, s.cache.evictions, s.cache.entries,
        ));
        out.push_str(&format!(
            ", \"answer_cache\": {{\"hits\": {}, \"misses\": {}, \"insertions\": {}, \
             \"evictions\": {}, \"entries\": {}, \"hit_rate\": {:.6}}}",
            s.answers.hits,
            s.answers.misses,
            s.answers.insertions,
            s.answers.evictions,
            s.answers.entries,
            s.answers.hit_rate(),
        ));
        out.push_str(", \"stage_breakdown\": [");
        for (i, stage) in self.stage_breakdown.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"count\": {}, \"total_ms\": {:.3}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}}}",
                stage.name,
                stage.count,
                stage.total.as_secs_f64() * 1e3,
                stage.latency.p50.as_secs_f64() * 1e3,
                stage.latency.p99.as_secs_f64() * 1e3,
            ));
        }
        out.push(']');
        out.push_str(&format!(", \"registry\": {}", self.registry.to_json()));
        out.push('}');
        out
    }
}

impl std::fmt::Display for StatsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = &self.stats;
        writeln!(
            f,
            "epoch {}  batches {}  served {}  shed {}  p50 {:.2} ms  p99 {:.2} ms",
            s.epoch,
            s.counters.batches,
            s.counters.targets_served,
            s.counters.shed(),
            s.latency.p50.as_secs_f64() * 1e3,
            s.latency.p99.as_secs_f64() * 1e3,
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.0}% hit rate), {} resident",
            s.cache.hits,
            s.cache.misses,
            s.cache.hit_rate() * 100.0,
            s.cache.entries,
        )?;
        writeln!(
            f,
            "answers: {} hits / {} misses ({:.0}% hit rate), {} resident",
            s.answers.hits,
            s.answers.misses,
            s.answers.hit_rate() * 100.0,
            s.answers.entries,
        )?;
        let grand_total: Duration = self.stage_breakdown.iter().map(|b| b.total).sum();
        writeln!(
            f,
            "{:<18} {:>8} {:>12} {:>7} {:>10} {:>10}",
            "stage", "count", "total ms", "share", "p50 ms", "p99 ms"
        )?;
        for b in &self.stage_breakdown {
            let share = if grand_total.is_zero() {
                0.0
            } else {
                b.total.as_secs_f64() / grand_total.as_secs_f64() * 100.0
            };
            writeln!(
                f,
                "{:<18} {:>8} {:>12.3} {:>6.1}% {:>10.3} {:>10.3}",
                b.name,
                b.count,
                b.total.as_secs_f64() * 1e3,
                share,
                b.latency.p50.as_secs_f64() * 1e3,
                b.latency.p99.as_secs_f64() * 1e3,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_high_water_marks_max() {
        let a = ServiceCounters {
            batches: 3,
            targets_served: 10,
            largest_batch: 8,
            failed_batches: 1,
            shed_queue_full: 2,
            deadline_expired: 1,
        };
        let b = ServiceCounters {
            batches: 2,
            targets_served: 5,
            largest_batch: 12,
            failed_batches: 0,
            shed_queue_full: 0,
            deadline_expired: 4,
        };
        let mut agg = a;
        agg.absorb(&b);
        assert_eq!(agg.batches, 5);
        assert_eq!(agg.targets_served, 15);
        assert_eq!(agg.largest_batch, 12, "high-water mark maxes, not sums");
        assert_eq!(agg.failed_batches, 1);
        assert_eq!(agg.shed(), 7);
    }

    #[test]
    fn shed_rate_counts_both_reasons() {
        let stats = ServiceStats {
            counters: ServiceCounters {
                targets_served: 90,
                shed_queue_full: 6,
                deadline_expired: 4,
                ..ServiceCounters::default()
            },
            ..ServiceStats::default()
        };
        assert!((stats.shed_rate() - 0.1).abs() < 1e-12);
        assert_eq!(ServiceStats::default().shed_rate(), 0.0);
    }
}
