//! Serving-tier statistics: monotonic counters, point-in-time gauges, and
//! latency quantiles — kept in **separate sections** so aggregation across
//! shards is well-defined (counters sum, gauges are reported per shard,
//! histograms merge).
//!
//! The pre-sharding `ServiceStats` mixed a point-in-time `queue_depth` gauge
//! into a struct of monotonic counters, which had no correct cross-shard
//! aggregation (summing gauges sampled at different instants reports a depth
//! no shard ever had — and hides which shard is backed up). The split types
//! here fix that asymmetry: [`ServiceCounters`] is strictly monotonic and
//! sums, [`QueueSnapshot`] is strictly instantaneous and stays per-shard.

use crate::cache::RouterCacheStats;
use crate::histogram::LatencySummary;

/// Monotonic serving counters. Within a [`ShardStats`] these are one
/// shard's; in [`ServiceStats`] they are the sum over all shards.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct ServiceCounters {
    /// Micro-batches solved.
    pub batches: u64,
    /// Targets solved and delivered as [`ServeOutcome::Served`].
    ///
    /// [`ServeOutcome::Served`]: crate::ServeOutcome::Served
    pub targets_served: u64,
    /// Largest micro-batch drained (a high-water mark: monotonic, but maxes
    /// rather than sums across shards).
    pub largest_batch: usize,
    /// Micro-batches whose solve panicked; their targets were answered with
    /// unknown estimates instead of hanging the request.
    pub failed_batches: u64,
    /// Targets shed at admission because the shard's bounded queue was full.
    pub shed_queue_full: u64,
    /// Targets shed at drain time because their deadline expired while they
    /// waited in the queue (they were never solved).
    pub deadline_expired: u64,
}

impl ServiceCounters {
    /// Total shed targets across every reason (queue-full + deadline).
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.deadline_expired
    }

    /// Folds another shard's counters into this aggregate: counters sum,
    /// the high-water mark maxes.
    pub fn absorb(&mut self, other: &ServiceCounters) {
        self.batches += other.batches;
        self.targets_served += other.targets_served;
        self.largest_batch = self.largest_batch.max(other.largest_batch);
        self.failed_batches += other.failed_batches;
        self.shed_queue_full += other.shed_queue_full;
        self.deadline_expired += other.deadline_expired;
    }
}

/// A point-in-time gauge of one shard's queue. Never summed across shards:
/// each snapshot is taken under that shard's queue lock, and depths sampled
/// at different instants do not add up to anything meaningful.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct QueueSnapshot {
    /// The shard this gauge was sampled from.
    pub shard: usize,
    /// Targets waiting in the shard's queue at sampling time.
    pub depth: usize,
}

/// One data-plane shard's statistics: its own counters, its queue gauge,
/// and its latency quantiles.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// The shard's monotonic counters.
    pub counters: ServiceCounters,
    /// The shard's queue gauge.
    pub queue: QueueSnapshot,
    /// Quantiles of the shard's served-request latencies
    /// (enqueue → completion).
    pub latency: LatencySummary,
}

/// The aggregate statistics snapshot of a serving tier.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Current model epoch.
    pub epoch: u64,
    /// Counters summed over every shard (the high-water mark maxes).
    pub counters: ServiceCounters,
    /// Per-shard queue gauges (one entry per shard, in shard order).
    pub queues: Vec<QueueSnapshot>,
    /// Quantiles of the merged per-shard latency histograms.
    pub latency: LatencySummary,
    /// Router cache counters, summed over every cache slice.
    pub cache: RouterCacheStats,
}

impl ServiceStats {
    /// Total queued targets across all shards. A convenience for tests and
    /// single-shard callers; remember each addend is a gauge sampled under
    /// its own shard's lock, not one instant's global depth.
    pub fn queue_depth_total(&self) -> usize {
        self.queues.iter().map(|q| q.depth).sum()
    }

    /// Fraction of finished targets that were shed rather than served
    /// (0 when nothing has finished).
    pub fn shed_rate(&self) -> f64 {
        let total = self.counters.targets_served + self.counters.shed();
        if total == 0 {
            0.0
        } else {
            self.counters.shed() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_high_water_marks_max() {
        let a = ServiceCounters {
            batches: 3,
            targets_served: 10,
            largest_batch: 8,
            failed_batches: 1,
            shed_queue_full: 2,
            deadline_expired: 1,
        };
        let b = ServiceCounters {
            batches: 2,
            targets_served: 5,
            largest_batch: 12,
            failed_batches: 0,
            shed_queue_full: 0,
            deadline_expired: 4,
        };
        let mut agg = a;
        agg.absorb(&b);
        assert_eq!(agg.batches, 5);
        assert_eq!(agg.targets_served, 15);
        assert_eq!(agg.largest_batch, 12, "high-water mark maxes, not sums");
        assert_eq!(agg.failed_batches, 1);
        assert_eq!(agg.shed(), 7);
    }

    #[test]
    fn shed_rate_counts_both_reasons() {
        let stats = ServiceStats {
            counters: ServiceCounters {
                targets_served: 90,
                shed_queue_full: 6,
                deadline_expired: 4,
                ..ServiceCounters::default()
            },
            ..ServiceStats::default()
        };
        assert!((stats.shed_rate() - 0.1).abs() < 1e-12);
        assert_eq!(ServiceStats::default().shed_rate(), 0.0);
    }
}
