//! Latency histograms for the serving tier — re-exported from
//! `octant-telemetry`, where the implementation now lives so SLO latency
//! quantiles, registry histograms, and per-stage breakdowns share one
//! log-linear histogram (power-of-two buckets subdivided 16 ways,
//! ≤ 6.25% relative bucket error above 16 µs).
//!
//! This module is kept so existing `octant_service::histogram::*` paths
//! keep compiling; new code can use `octant_telemetry` directly.

pub use octant_telemetry::{LatencyHistogram, LatencySummary};
