//! # octant-service
//!
//! The cache-backed geolocation **serving** subsystem of the Octant
//! reproduction: where `octant::BatchGeolocator` is the offline engine (one
//! batch, one model, run to completion), this crate hosts the long-lived
//! online layer a production deployment needs — and the cross-request
//! amortization that makes heavy traffic affordable.
//!
//! The tier is organized as a **control plane / data plane split**:
//!
//! * [`registry`] (control plane) — a versioned [`octant::LandmarkModel`]
//!   registry. Models are registered/refreshed by **epoch**; refresh
//!   prepares the new model outside the lock and swaps an `Arc`, so
//!   in-flight requests finish on the snapshot they started with.
//! * [`shard`] (control plane) — data-plane sizing ([`ShardConfig`]) and
//!   the deterministic target → shard routing table ([`ShardRouter`],
//!   hashed by /24 IP prefix).
//! * [`cache`] — a **shared router sub-localization cache** keyed by
//!   `(model epoch, router node)`. The §2.3
//!   `RouterLocalization::Recursive` mode localizes last-hop routers with
//!   full Octant sub-solves; those solves are target-independent, so the
//!   cache computes each one exactly once per epoch (thread-safe via
//!   `parking_lot` + per-entry `OnceLock` in-flight deduplication, with
//!   hit/miss/eviction counters) and replays it to every target and request
//!   that shares the router — results bit-identical to the uncached path on
//!   a replay-stable provider. [`ShardedRouterCache`] slices it by router
//!   id so all data-plane shards share one cache with divided lock
//!   contention.
//! * [`service`] (data plane) — [`ShardedService`]: N shards, each owning
//!   its own request queue, adaptive micro-batching policy, and worker
//!   pool, with per-request **deadlines**, bounded-queue **admission
//!   control / load shedding**, and per-shard **latency histograms**
//!   ([`histogram`], [`stats`]). [`GeolocationService`] is the
//!   shards-of-one front door, bit-identical to the pre-sharding service.
//!
//! The seam into `octant-core` is [`octant::RouterEstimateSource`]: the
//! framework's recursive path consults the source instead of constructing a
//! fresh sub-`Octant` inline, and [`cache::EpochRouterSource`] /
//! [`cache::ShardedEpochSource`] are this crate's caching implementations.
//!
//! ```
//! use octant::{OctantConfig, RouterLocalization};
//! use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
//! use octant_netsim::{MeasurementDataset, Prober};
//! use octant_service::{GeolocationService, ServiceConfig};
//!
//! let mut builder = NetworkBuilder::new(NetworkConfig::default());
//! for site in octant_geo::sites::planetlab_51().iter().take(9) {
//!     builder = builder.add_host(HostSpec::from_site(site));
//! }
//! let dataset = MeasurementDataset::capture(&Prober::new(builder.build(), 7)).into_shared();
//! let hosts = dataset.host_ids();
//! let (landmarks, targets) = hosts.split_at(6);
//!
//! let config = ServiceConfig::default().with_octant(
//!     OctantConfig::default().with_router_localization(RouterLocalization::Recursive),
//! );
//! let service = GeolocationService::start(config, dataset, landmarks);
//! let served = service.localize_blocking(targets);
//! assert_eq!(served.len(), targets.len());
//! // Router sub-solves were computed once each and shared across targets:
//! assert!(service.cache().sub_localizations() > 0);
//!
//! // Per-request evidence selection: disable the router source for one
//! // request without touching the service or other requests. Outcomes are
//! // typed — under the default config (no deadline, unbounded queues)
//! // every target is Served.
//! use octant::SourceId;
//! use octant_service::LocalizeOptions;
//! let outcomes = service.localize_blocking_with_options(
//!     &targets[..1],
//!     LocalizeOptions::default().without_source(SourceId::Router),
//! );
//! let ablated = outcomes[0].served().unwrap();
//! assert!(!ablated.estimate.provenance.source(SourceId::Router).unwrap().enabled);
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer_cache;
pub mod cache;
pub mod histogram;
pub mod registry;
pub mod service;
pub mod shard;
pub mod stats;

pub use answer_cache::{
    AnswerCache, AnswerCacheConfig, AnswerCacheStats, AnswerKey, EvidenceKey, PrefixTable,
    TargetKey,
};
pub use cache::{
    EpochRouterSource, RouterCache, RouterCacheConfig, RouterCacheStats, ShardedEpochSource,
    ShardedRouterCache,
};
pub use octant_telemetry::{LatencyHistogram, LatencySummary};
pub use registry::{ModelEpoch, ModelRegistry};
pub use service::{
    GeolocationService, LocalizeOptions, RequestHandle, ServeOutcome, ServedEstimate,
    ServiceConfig, ShardedService, ShedReason,
};
pub use shard::{ShardConfig, ShardRouter};
pub use stats::{
    QueueSnapshot, ServiceCounters, ServiceStats, ShardStats, StageBreakdown, StatsReport,
};

/// Shared fixtures for this crate's unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use octant_netsim::{MeasurementDataset, Prober};

    /// Captures a small replay-stable campaign over the first `n` built-in
    /// PlanetLab-like sites.
    pub fn dataset(n: usize, seed: u64) -> MeasurementDataset {
        let mut builder = NetworkBuilder::new(NetworkConfig {
            seed,
            ..NetworkConfig::default()
        });
        for site in octant_geo::sites::planetlab_51().iter().take(n) {
            builder = builder.add_host(HostSpec::from_site(site));
        }
        MeasurementDataset::capture(&Prober::new(builder.build(), seed))
    }
}
