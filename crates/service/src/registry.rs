//! The versioned landmark-model registry.
//!
//! A long-lived service cannot rebuild the landmark model per request (that
//! is the waste `BatchGeolocator` already eliminates per batch), but it also
//! cannot pin one model forever: landmark sets change, and recorded
//! measurements go stale. [`ModelRegistry`] holds the current
//! [`LandmarkModel`] behind an epoch number and swaps in refreshed models
//! atomically — in-flight requests keep the `Arc` snapshot they grabbed when
//! their batch started, so a refresh never interrupts or skews a solve that
//! is already running.

use octant::{LandmarkModel, Octant};
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use parking_lot::RwLock;
use std::sync::Arc;

/// One registered model version.
#[derive(Debug)]
pub struct ModelEpoch {
    /// Monotonically increasing version number, starting at 1.
    pub epoch: u64,
    /// The prepared target-independent landmark state.
    pub model: LandmarkModel,
    /// The landmark ids the model was prepared from (the model itself may
    /// have dropped landmarks without usable advertised positions).
    pub landmarks: Vec<NodeId>,
}

/// A registry of versioned landmark models with atomic refresh.
#[derive(Debug)]
pub struct ModelRegistry {
    octant: Octant,
    current: RwLock<Arc<ModelEpoch>>,
}

impl ModelRegistry {
    /// Prepares the initial model (epoch 1) from `landmarks` and opens the
    /// registry.
    pub fn bootstrap(
        octant: Octant,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
    ) -> Self {
        let model = octant.prepare_landmarks(provider, landmarks);
        ModelRegistry {
            octant,
            current: RwLock::new(Arc::new(ModelEpoch {
                epoch: 1,
                model,
                landmarks: landmarks.to_vec(),
            })),
        }
    }

    /// The framework configuration the registry prepares models with.
    pub fn octant(&self) -> &Octant {
        &self.octant
    }

    /// A snapshot of the current model version. The returned `Arc` stays
    /// valid (and the model unchanged) for as long as the caller holds it,
    /// regardless of concurrent refreshes.
    pub fn current(&self) -> Arc<ModelEpoch> {
        self.current.read().clone()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// Prepares a fresh model from `landmarks` and atomically makes it the
    /// current epoch. The (expensive) preparation runs **outside** the lock:
    /// readers keep serving the previous epoch until the swap, which is a
    /// pointer exchange. Returns the new epoch number.
    pub fn refresh(&self, provider: &dyn ObservationProvider, landmarks: &[NodeId]) -> u64 {
        let model = self.octant.prepare_landmarks(provider, landmarks);
        self.register(model, landmarks.to_vec())
    }

    /// Registers a caller-prepared model as the new current epoch (the
    /// escape hatch for callers that prepare models elsewhere — e.g. on a
    /// dedicated refresh thread against a different provider handle).
    /// The model must have been prepared by an [`Octant`] configured
    /// identically to [`ModelRegistry::octant`].
    pub fn register(&self, model: LandmarkModel, landmarks: Vec<NodeId>) -> u64 {
        let mut cur = self.current.write();
        let epoch = cur.epoch + 1;
        *cur = Arc::new(ModelEpoch {
            epoch,
            model,
            landmarks,
        });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dataset;
    use octant::OctantConfig;

    #[test]
    fn bootstrap_and_refresh_advance_epochs() {
        let ds = dataset(8, 3);
        let hosts = ds.host_ids();
        let registry =
            ModelRegistry::bootstrap(Octant::new(OctantConfig::default()), &ds, &hosts[..6]);
        assert_eq!(registry.epoch(), 1);
        assert_eq!(registry.current().model.landmark_count(), 6);

        let snapshot = registry.current();
        let e2 = registry.refresh(&ds, &hosts[..5]);
        assert_eq!(e2, 2);
        assert_eq!(registry.epoch(), 2);
        assert_eq!(registry.current().model.landmark_count(), 5);
        // The pre-refresh snapshot is untouched: in-flight work is safe.
        assert_eq!(snapshot.epoch, 1);
        assert_eq!(snapshot.model.landmark_count(), 6);
    }

    #[test]
    fn register_accepts_external_models() {
        let ds = dataset(7, 5);
        let hosts = ds.host_ids();
        let octant = Octant::new(OctantConfig::default());
        let registry = ModelRegistry::bootstrap(octant.clone(), &ds, &hosts[..5]);
        let model = octant.prepare_landmarks(&ds, &hosts[..4]);
        let epoch = registry.register(model, hosts[..4].to_vec());
        assert_eq!(epoch, 2);
        assert_eq!(registry.current().landmarks, &hosts[..4]);
    }

    #[test]
    fn refreshed_model_matches_a_fresh_preparation() {
        let ds = dataset(8, 9);
        let hosts = ds.host_ids();
        let octant = Octant::new(OctantConfig::default());
        let registry = ModelRegistry::bootstrap(octant.clone(), &ds, &hosts[..6]);
        registry.refresh(&ds, &hosts[..6]);
        // Same landmarks, replay-stable provider → identical model state.
        let fresh = octant.prepare_landmarks(&ds, &hosts[..6]);
        let current = registry.current();
        assert_eq!(current.model.landmark_ids(), fresh.landmark_ids());
        assert_eq!(current.model.heights().len(), fresh.heights().len());
    }
}
