//! Data-plane shard configuration and request routing.
//!
//! The serving tier's data plane is `ShardConfig::count` independent shards,
//! each owning its own bounded request queue and worker pool. The control
//! plane routes every submitted target to a shard **deterministically by
//! the target's /24 IP prefix** ([`ShardRouter`]): the prefix → shard map is
//! a pure hash of static provider facts, so the same target lands on the
//! same shard on every call — no cross-shard coordination, no rebalancing
//! races, and repeat traffic for one prefix stays on one queue. Router
//! sub-localizations are *not* per-shard: they live in the router-id-sliced
//! [`crate::ShardedRouterCache`] shared by all shards, which is what keeps
//! the exactly-R-sub-solves property global after the split.

use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use std::collections::HashMap;

/// Data-plane sizing of a sharded service.
///
/// `#[non_exhaustive]`: construct via [`ShardConfig::default`] and the
/// builder-style `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardConfig {
    /// Number of data-plane shards. Each shard owns a request queue and
    /// `ServiceConfig::workers` worker threads. The default of 1 reproduces
    /// the pre-sharding single-queue service exactly.
    pub count: usize,
    /// Bound on each shard's queue, in pending targets. Submissions beyond
    /// the bound are **shed** at admission (`ShedReason::QueueFull`) instead
    /// of queued. `0` (the default) means unbounded — no admission shedding,
    /// matching the pre-sharding service.
    pub queue_capacity: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            count: 1,
            queue_capacity: 0,
        }
    }
}

octant::config_setters!(ShardConfig {
    /// Sets the number of data-plane shards.
    with_count: count: usize,
    /// Sets the per-shard queue bound (`0` = unbounded).
    with_queue_capacity: queue_capacity: usize,
});

/// SplitMix64 — the deterministic, platform-independent mixer behind both
/// shard-routing hashes (target prefixes here, router ids in the cache
/// slicing). Stable across runs and machines by construction, so shard
/// assignment is reproducible.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The control plane's target → shard routing table.
///
/// Built once from the provider's (static) host table: each host's /24 IP
/// prefix is hashed to a shard. Targets the provider does not list fall
/// back to hashing their raw node id, so routing is total. Within a model
/// epoch — in fact, for the life of the provider — the assignment never
/// changes.
#[derive(Debug)]
pub struct ShardRouter {
    shards: usize,
    by_target: HashMap<NodeId, usize>,
}

impl ShardRouter {
    /// Builds the routing table over `provider`'s hosts for `shards` shards.
    pub fn build(provider: &dyn ObservationProvider, shards: usize) -> Self {
        let shards = shards.max(1);
        let by_target = provider
            .hosts()
            .into_iter()
            .map(|h| {
                let prefix =
                    u64::from(h.ip[0]) << 16 | u64::from(h.ip[1]) << 8 | u64::from(h.ip[2]);
                (h.id, (mix64(prefix) % shards as u64) as usize)
            })
            .collect();
        ShardRouter { shards, by_target }
    }

    /// Number of shards this table routes over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard serving `target`. Deterministic: the same target always
    /// maps to the same shard, and targets sharing a /24 prefix share a
    /// shard.
    pub fn shard_for(&self, target: NodeId) -> usize {
        match self.by_target.get(&target) {
            Some(&shard) => shard,
            None => (mix64(target.0 as u64) % self.shards as u64) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dataset;

    #[test]
    fn default_shard_config_matches_the_pre_sharding_service() {
        let config = ShardConfig::default();
        assert_eq!(config.count, 1);
        assert_eq!(config.queue_capacity, 0, "unbounded by default");
        let built = ShardConfig::default()
            .with_count(4)
            .with_queue_capacity(128);
        assert_eq!(built.count, 4);
        assert_eq!(built.queue_capacity, 128);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ds = dataset(10, 11);
        let hosts = ds.host_ids();
        let router = ShardRouter::build(&ds, 4);
        let again = ShardRouter::build(&ds, 4);
        for &h in &hosts {
            let shard = router.shard_for(h);
            assert!(shard < 4);
            // Same table, repeat call: identical. Rebuilt table: identical.
            assert_eq!(router.shard_for(h), shard);
            assert_eq!(again.shard_for(h), shard);
        }
        // Unknown targets still route (by node id), inside range.
        let unknown = NodeId(9_999_999);
        assert!(router.shard_for(unknown) < 4);
        assert_eq!(router.shard_for(unknown), router.shard_for(unknown));
    }

    #[test]
    fn one_shard_routes_everything_to_shard_zero() {
        let ds = dataset(8, 13);
        let router = ShardRouter::build(&ds, 1);
        for &h in &ds.host_ids() {
            assert_eq!(router.shard_for(h), 0);
        }
        // A zero shard count is clamped to one, never a modulo-by-zero.
        let clamped = ShardRouter::build(&ds, 0);
        assert_eq!(clamped.shards(), 1);
    }

    #[test]
    fn shards_see_a_spread_of_prefixes() {
        // With enough distinct prefixes, more than one shard gets traffic
        // (the hash must not collapse everything onto one shard).
        let ds = dataset(16, 17);
        let router = ShardRouter::build(&ds, 4);
        let mut used = std::collections::BTreeSet::new();
        for &h in &ds.host_ids() {
            used.insert(router.shard_for(h));
        }
        assert!(
            used.len() > 1,
            "16 hosts across 4 shards must not all hash together (got {used:?})"
        );
    }
}
