//! The shared router sub-localization cache.
//!
//! `RouterLocalization::Recursive` (§2.3 of the paper) localizes each
//! last-hop router with a full Octant sub-solve. The sub-solve depends only
//! on the landmark model and the router — never on the target — yet the
//! batch engine used to re-run it for every target that routed through the
//! router. [`RouterCache`] memoizes those solves under a `(model epoch,
//! router)` key, so a serving workload of `N` targets behind `R` shared
//! routers performs exactly `R` sub-localizations per model epoch, however
//! many requests arrive and however they are batched.
//!
//! Concurrency: the map itself is guarded by a `parking_lot` mutex, and each
//! entry is an `Arc<OnceLock<..>>` — when several worker threads miss the
//! same key simultaneously, `OnceLock::get_or_init` guarantees exactly one
//! of them runs the sub-solve while the others block on the result. That
//! in-flight deduplication is what makes the "exactly `R`" property hold
//! under concurrent serving, not just statistically.

use octant::{Octant, RouterEstimate, RouterEstimateSource};
use octant_geo::units::Distance;
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use octant_region::GeoRegion;
use octant_telemetry::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Sizing and retention knobs of a [`RouterCache`].
///
/// `#[non_exhaustive]`: construct via [`RouterCacheConfig::default`] and
/// the builder-style `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct RouterCacheConfig {
    /// Soft capacity cap. When an insert pushes the cache past this size,
    /// entries from **retired** epochs are evicted (oldest epoch first);
    /// entries of the epoch being inserted are never evicted, so the
    /// exactly-once property within an epoch is unconditional.
    pub max_entries: usize,
    /// How many epochs [`RouterCache::retire_epochs_before`]-driven
    /// maintenance keeps around (the service evicts everything older than
    /// `current_epoch - keep_epochs + 1` after a model refresh). Minimum 1.
    pub keep_epochs: u64,
    /// Radius-class width (km) of the shared router-**dilation** cache.
    ///
    /// The §2.3 secondary-landmark constraint dilates a router's region by
    /// the calibrated residual radius — tens of milliseconds of CPU per
    /// fresh 100+-ring region, and the radius differs slightly for every
    /// `(landmark, target)` pair, so the inline path recomputes it
    /// constantly. With a positive step, dilation radii are rounded **up**
    /// to the next class boundary and the dilated region is cached per
    /// `(epoch, router, radius class)`: co-sited targets share classes, so
    /// a serving workload pays for each class once. Rounding up only ever
    /// *loosens* a positive constraint (soundness is preserved), but the
    /// results are no longer bit-identical to the step-`0.0` inline path.
    ///
    /// **Default: 25.0 km.** The accuracy envelope was characterized on
    /// the pipeline campaign (`octant-bench`'s `service` binary, dilation
    /// step-sweep stage). Point estimates *do* move — typically tens of
    /// km — but almost all of that shift comes from the cache's shared
    /// contour-simplification seam and is nearly independent of the step
    /// (step 1 km and step 25 km move points about equally). What the
    /// characterization gates on is **error against ground truth**: across
    /// the step sweep the median and p90 error stay within a few percent
    /// of the exact inline path's — inside run-to-run noise and far below
    /// the intrinsic error scale the paper reports. Set `0.0` (via
    /// [`RouterCacheConfig::with_dilation_radius_step_km`]) to opt out and
    /// recover the exact per-radius inline float stream.
    pub dilation_radius_step_km: f64,
}

impl Default for RouterCacheConfig {
    fn default() -> Self {
        RouterCacheConfig {
            max_entries: 4096,
            keep_epochs: 1,
            dilation_radius_step_km: 25.0,
        }
    }
}

octant::config_setters!(RouterCacheConfig {
    /// Sets the soft entry cap.
    with_max_entries: max_entries: usize,
    /// Sets how many epochs refresh-maintenance retains.
    with_keep_epochs: keep_epochs: u64,
    /// Sets the dilation radius-class width (km); `0.0` disables the
    /// dilation cache.
    with_dilation_radius_step_km: dilation_radius_step_km: f64,
});

/// Counter snapshot of a [`RouterCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterCacheStats {
    /// Lookups answered from a completed entry (including lookups that
    /// waited on another thread's in-flight computation).
    pub hits: u64,
    /// Lookups that ran the router sub-solve — one per distinct
    /// `(epoch, router)` key ever inserted.
    pub misses: u64,
    /// Entries removed by epoch retirement or the capacity cap, across
    /// both cache levels (estimates and dilations).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Dilation-cache lookups answered from a cached region.
    pub dilation_hits: u64,
    /// Dilation-cache lookups that ran a fresh dilation — one per distinct
    /// `(epoch, router, radius class)` key ever inserted.
    pub dilation_misses: u64,
    /// Dilated regions currently resident.
    pub dilation_entries: usize,
    /// Fresh contour-base extractions — one per distinct `(epoch, router)`
    /// whose dilation classes share the banded-contour intermediate.
    pub contour_bases: u64,
    /// Contour bases currently resident.
    pub contour_base_entries: usize,
}

impl RouterCacheStats {
    /// Fraction of lookups served without a sub-solve (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type CacheMap = HashMap<(u64, NodeId), Arc<OnceLock<Arc<RouterEstimate>>>>;
type DilationMap = HashMap<(u64, NodeId, u32), Arc<OnceLock<Arc<GeoRegion>>>>;
type ContourMap = HashMap<(u64, NodeId), Arc<OnceLock<Arc<ContourBase>>>>;

/// The banded intermediate every dilation class of one router shares: the
/// router's region together with its merged outer contours (planar rings
/// in the region's own projection). Extracting contours walks the banded
/// decomposition once; each radius class then only pays a linear
/// simplify-and-offset over genuine boundary edges instead of
/// re-simplifying and re-offsetting the full trapezoid soup
/// (see `octant::piecewise::class_dilated_router_region`).
#[derive(Debug)]
struct ContourBase {
    region: GeoRegion,
    contours: Vec<octant_region::Ring>,
}

/// Cache keys that carry their model epoch as the leading component, so
/// one eviction routine serves both cache levels.
trait EpochKeyed {
    fn epoch(&self) -> u64;
}

impl EpochKeyed for (u64, NodeId) {
    fn epoch(&self) -> u64 {
        self.0
    }
}

impl EpochKeyed for (u64, NodeId, u32) {
    fn epoch(&self) -> u64 {
        self.0
    }
}

/// A thread-safe, epoch-aware cache of recursive router location estimates,
/// with an optional second level caching the §2.3 dilations of those
/// estimates per radius class (see
/// [`RouterCacheConfig::dilation_radius_step_km`]).
///
/// Counters are [`octant_telemetry::Counter`] handles registered under
/// `router_cache.*` in [`MetricsRegistry::global`]: [`RouterCache::stats`]
/// reads this instance's own handles (exact per-cache counts), while the
/// registry sums every live cache — one bump, two views.
#[derive(Debug)]
pub struct RouterCache {
    config: RouterCacheConfig,
    entries: Mutex<CacheMap>,
    dilations: Mutex<DilationMap>,
    contour_bases: Mutex<ContourMap>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    dilation_hits: Counter,
    dilation_misses: Counter,
    contour_base_misses: Counter,
}

impl Default for RouterCache {
    fn default() -> Self {
        let registry = MetricsRegistry::global();
        RouterCache {
            config: RouterCacheConfig::default(),
            entries: Mutex::new(HashMap::new()),
            dilations: Mutex::new(HashMap::new()),
            contour_bases: Mutex::new(HashMap::new()),
            hits: registry.counter("router_cache.hits"),
            misses: registry.counter("router_cache.misses"),
            evictions: registry.counter("router_cache.evictions"),
            dilation_hits: registry.counter("router_cache.dilation_hits"),
            dilation_misses: registry.counter("router_cache.dilation_misses"),
            contour_base_misses: registry.counter("router_cache.contour_bases"),
        }
    }
}

impl RouterCache {
    /// Creates a cache with the given configuration.
    pub fn new(config: RouterCacheConfig) -> Self {
        RouterCache {
            config,
            ..RouterCache::default()
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> RouterCacheConfig {
        self.config
    }

    /// Returns the estimate for `(epoch, router)`, running `compute` exactly
    /// once per key across all threads. Concurrent callers that lose the
    /// insertion race block until the winner's computation completes and
    /// then observe the identical value (counted as hits — their sub-solve
    /// was shared, not skipped). Hits hand back a shared `Arc`, not a deep
    /// clone of the router's region polygons.
    pub fn get_or_compute(
        &self,
        epoch: u64,
        router: NodeId,
        compute: impl FnOnce() -> RouterEstimate,
    ) -> Arc<RouterEstimate> {
        let cell = {
            let mut map = self.entries.lock();
            match map.entry((epoch, router)) {
                Entry::Occupied(e) => e.get().clone(),
                Entry::Vacant(v) => {
                    let cell = Arc::new(OnceLock::new());
                    v.insert(cell.clone());
                    self.evict_over_cap(&mut map, epoch);
                    cell
                }
            }
        };
        let ran = Cell::new(false);
        let value = cell
            .get_or_init(|| {
                ran.set(true);
                Arc::new(compute())
            })
            .clone();
        if ran.get() {
            self.misses.inc();
        } else {
            self.hits.inc();
        }
        value
    }

    /// Evicts retired-epoch entries (oldest epoch first, deterministically)
    /// while the map exceeds the soft cap. Entries of `current_epoch` are
    /// never evicted. Caller holds the map lock; the caller's eviction
    /// counter is bumped. Shared by the estimate and dilation maps — both
    /// key on the epoch first, so the sorted order retires oldest epochs
    /// first.
    fn evict_over_cap<K, V>(&self, map: &mut HashMap<K, V>, current_epoch: u64)
    where
        K: Ord + Copy + std::hash::Hash + Eq + EpochKeyed,
    {
        if map.len() <= self.config.max_entries {
            return;
        }
        let over = map.len() - self.config.max_entries;
        let mut retired: Vec<K> = map
            .keys()
            .filter(|k| k.epoch() != current_epoch)
            .copied()
            .collect();
        retired.sort_unstable();
        let mut evicted = 0u64;
        for key in retired.into_iter().take(over) {
            map.remove(&key);
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions.add(evicted);
        }
    }

    /// Evicts every entry (estimates **and** cached dilations) whose epoch
    /// is strictly below `min_epoch` (model-refresh maintenance). Both
    /// kinds count towards the eviction counter; the return value is the
    /// number of estimate entries removed.
    pub fn retire_epochs_before(&self, min_epoch: u64) -> usize {
        let removed = {
            let mut map = self.entries.lock();
            let before = map.len();
            map.retain(|k, _| k.epoch() >= min_epoch);
            before - map.len()
        };
        let dilations_removed = {
            let mut map = self.dilations.lock();
            let before = map.len();
            map.retain(|k, _| k.epoch() >= min_epoch);
            before - map.len()
        };
        let bases_removed = {
            let mut map = self.contour_bases.lock();
            let before = map.len();
            map.retain(|k, _| k.epoch() >= min_epoch);
            before - map.len()
        };
        let total = (removed + dilations_removed + bases_removed) as u64;
        if total > 0 {
            self.evictions.add(total);
        }
        removed
    }

    /// Returns the dilation of `(epoch, router)`'s region for one radius
    /// class, running `compute` exactly once per key across all threads
    /// (same per-entry `OnceLock` in-flight deduplication as the estimate
    /// cache). Over-cap inserts evict retired-epoch dilations first.
    fn dilation_for(
        &self,
        epoch: u64,
        router: NodeId,
        class: u32,
        compute: impl FnOnce() -> GeoRegion,
    ) -> Arc<GeoRegion> {
        let cell = {
            let mut map = self.dilations.lock();
            match map.entry((epoch, router, class)) {
                Entry::Occupied(e) => e.get().clone(),
                Entry::Vacant(v) => {
                    let cell = Arc::new(OnceLock::new());
                    v.insert(cell.clone());
                    self.evict_over_cap(&mut map, epoch);
                    cell
                }
            }
        };
        let ran = Cell::new(false);
        let value = cell
            .get_or_init(|| {
                ran.set(true);
                Arc::new(compute())
            })
            .clone();
        if ran.get() {
            self.dilation_misses.inc();
        } else {
            self.dilation_hits.inc();
        }
        value
    }

    /// Returns the banded-contour intermediate shared by every dilation
    /// class of `(epoch, router)`, extracting it exactly once across all
    /// threads (same per-entry `OnceLock` dedup as the other levels).
    fn contour_base_for(
        &self,
        epoch: u64,
        router: NodeId,
        compute: impl FnOnce() -> ContourBase,
    ) -> Arc<ContourBase> {
        let cell = {
            let mut map = self.contour_bases.lock();
            match map.entry((epoch, router)) {
                Entry::Occupied(e) => e.get().clone(),
                Entry::Vacant(v) => {
                    let cell = Arc::new(OnceLock::new());
                    v.insert(cell.clone());
                    self.evict_over_cap(&mut map, epoch);
                    cell
                }
            }
        };
        let ran = Cell::new(false);
        let value = cell
            .get_or_init(|| {
                ran.set(true);
                Arc::new(compute())
            })
            .clone();
        if ran.get() {
            self.contour_base_misses.inc();
        }
        value
    }

    /// Total router sub-solves this cache has performed — the quantity the
    /// cache exists to minimize. Equal to the number of distinct
    /// `(epoch, router)` keys ever computed (the miss counter).
    pub fn sub_localizations(&self) -> u64 {
        self.misses.get()
    }

    /// Total fresh §2.3 region dilations performed by the radius-class
    /// dilation cache — one per distinct `(epoch, router, radius class)`
    /// key ever computed. Always 0 while the dilation cache is disabled.
    pub fn fresh_dilations(&self) -> u64 {
        self.dilation_misses.get()
    }

    /// Number of resident entries belonging to `epoch`.
    pub fn entries_for_epoch(&self, epoch: u64) -> usize {
        self.entries
            .lock()
            .keys()
            .filter(|(e, _)| *e == epoch)
            .count()
    }

    /// Number of resident entries across all epochs.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A counter snapshot.
    pub fn stats(&self) -> RouterCacheStats {
        RouterCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries: self.len(),
            dilation_hits: self.dilation_hits.get(),
            dilation_misses: self.dilation_misses.get(),
            dilation_entries: self.dilations.lock().len(),
            contour_bases: self.contour_base_misses.get(),
            contour_base_entries: self.contour_bases.lock().len(),
        }
    }

    /// Binds the cache to one model epoch, yielding the
    /// [`RouterEstimateSource`] the core framework consults during a solve.
    pub fn source(&self, epoch: u64) -> EpochRouterSource<'_> {
        EpochRouterSource { cache: self, epoch }
    }
}

/// A [`RouterCache`] bound to one model epoch — the adapter between the
/// epoch-agnostic [`RouterEstimateSource`] seam in `octant-core` and the
/// epoch-keyed cache. On a miss it delegates to
/// [`Octant::compute_router_estimate`], the uncached reference computation,
/// so cached solves are bit-identical to inline ones.
#[derive(Debug, Clone, Copy)]
pub struct EpochRouterSource<'a> {
    cache: &'a RouterCache,
    epoch: u64,
}

impl EpochRouterSource<'_> {
    /// The epoch this source reads and fills.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl RouterEstimateSource for EpochRouterSource<'_> {
    fn router_estimate(
        &self,
        octant: &Octant,
        provider: &dyn ObservationProvider,
        model: &octant::LandmarkModel,
        router: NodeId,
    ) -> Arc<RouterEstimate> {
        self.cache.get_or_compute(self.epoch, router, || {
            octant.compute_router_estimate(provider, model, router)
        })
    }

    /// The opt-in radius-class dilation cache: with a positive
    /// `dilation_radius_step_km`, the requested radius is rounded **up** to
    /// the next class boundary and the dilation of the router's region —
    /// the dominant §2.3 cost — is computed once per
    /// `(epoch, router, class)` and shared. All classes of one router
    /// additionally share a **banded-contour intermediate** (the region's
    /// merged outer contours, extracted once per `(epoch, router)`), so a
    /// fresh class pays a linear offset over genuine boundary edges
    /// instead of re-simplifying and re-offsetting the full trapezoid
    /// soup. Constraints get (slightly) looser, never tighter. Setting the
    /// step to 0 disables the cache (`None`), which keeps solves
    /// bit-identical to the inline path; the characterized default is a
    /// 25 km step (see [`RouterCacheConfig::dilation_radius_step_km`]).
    fn dilated_region(
        &self,
        router: NodeId,
        estimate: &RouterEstimate,
        radius: Distance,
    ) -> Option<Arc<GeoRegion>> {
        let step = self.cache.config.dilation_radius_step_km;
        if step <= 0.0 || !radius.km().is_finite() {
            return None;
        }
        let region = estimate.region.as_ref()?;
        let class = (radius.km() / step).ceil().max(1.0) as u32;
        let class_radius = Distance::from_km(class as f64 * step);
        Some(self.cache.dilation_for(self.epoch, router, class, || {
            let base = self
                .cache
                .contour_base_for(self.epoch, router, || ContourBase {
                    region: region.clone(),
                    contours: octant::piecewise::router_region_contours(region),
                });
            octant::piecewise::class_dilated_router_region(
                &base.region,
                &base.contours,
                class_radius,
            )
        }))
    }
}

/// A [`RouterCache`] split into independently locked **slices by router
/// id** — the data-plane-sharding companion of the estimate cache.
///
/// The sharded service's worker threads all share one logical router cache
/// (that is what keeps the exactly-R-sub-solves property *global*: a router
/// reached from targets on different shards is still sub-solved once per
/// epoch). What they must not share is one mutex: with N shards serving
/// concurrently, a single map lock serializes every lookup. Each slice here
/// is a complete [`RouterCache`] guarding a deterministic subset of router
/// ids, so lookups for different routers contend only when they hash to the
/// same slice.
///
/// With one slice this is exactly a [`RouterCache`] (same counters, same
/// eviction), which is what the `shards = 1` parity guarantee rests on.
#[derive(Debug)]
pub struct ShardedRouterCache {
    slices: Vec<RouterCache>,
}

impl ShardedRouterCache {
    /// Creates a cache with `slices` independently locked slices, each
    /// configured with `config` (the capacity cap applies per slice).
    pub fn new(config: RouterCacheConfig, slices: usize) -> Self {
        ShardedRouterCache {
            slices: (0..slices.max(1))
                .map(|_| RouterCache::new(config))
                .collect(),
        }
    }

    /// The slice responsible for `router` (deterministic by router id).
    pub fn slice_for(&self, router: NodeId) -> &RouterCache {
        let idx = (crate::shard::mix64(router.0 as u64) % self.slices.len() as u64) as usize;
        &self.slices[idx]
    }

    /// The cache slices, in slice order.
    pub fn slices(&self) -> &[RouterCache] {
        &self.slices
    }

    /// Total router sub-solves performed across every slice — the quantity
    /// the cache exists to minimize.
    pub fn sub_localizations(&self) -> u64 {
        self.slices.iter().map(|s| s.sub_localizations()).sum()
    }

    /// Total fresh §2.3 region dilations across every slice.
    pub fn fresh_dilations(&self) -> u64 {
        self.slices.iter().map(|s| s.fresh_dilations()).sum()
    }

    /// Number of resident estimate entries belonging to `epoch`, across
    /// every slice.
    pub fn entries_for_epoch(&self, epoch: u64) -> usize {
        self.slices.iter().map(|s| s.entries_for_epoch(epoch)).sum()
    }

    /// Number of resident estimate entries across all slices and epochs.
    pub fn len(&self) -> usize {
        self.slices.iter().map(|s| s.len()).sum()
    }

    /// `true` when no entries are resident in any slice.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evicts every entry older than `min_epoch` from every slice; returns
    /// the number of estimate entries removed.
    pub fn retire_epochs_before(&self, min_epoch: u64) -> usize {
        self.slices
            .iter()
            .map(|s| s.retire_epochs_before(min_epoch))
            .sum()
    }

    /// Counters summed over every slice.
    pub fn stats(&self) -> RouterCacheStats {
        let mut total = RouterCacheStats::default();
        for s in &self.slices {
            let one = s.stats();
            total.hits += one.hits;
            total.misses += one.misses;
            total.evictions += one.evictions;
            total.entries += one.entries;
            total.dilation_hits += one.dilation_hits;
            total.dilation_misses += one.dilation_misses;
            total.dilation_entries += one.dilation_entries;
            total.contour_bases += one.contour_bases;
            total.contour_base_entries += one.contour_base_entries;
        }
        total
    }

    /// Binds the sliced cache to one model epoch, yielding the
    /// [`RouterEstimateSource`] a shard's solves consult. Each lookup
    /// delegates to the slice owning the router.
    pub fn source(&self, epoch: u64) -> ShardedEpochSource<'_> {
        ShardedEpochSource { cache: self, epoch }
    }
}

/// A [`ShardedRouterCache`] bound to one model epoch: routes each lookup to
/// the slice owning the router and delegates to that slice's
/// [`EpochRouterSource`], so per-slice behavior (in-flight dedup, dilation
/// classes, counters) is exactly the single-cache behavior.
#[derive(Debug, Clone, Copy)]
pub struct ShardedEpochSource<'a> {
    cache: &'a ShardedRouterCache,
    epoch: u64,
}

impl ShardedEpochSource<'_> {
    /// The epoch this source reads and fills.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl RouterEstimateSource for ShardedEpochSource<'_> {
    fn router_estimate(
        &self,
        octant: &Octant,
        provider: &dyn ObservationProvider,
        model: &octant::LandmarkModel,
        router: NodeId,
    ) -> Arc<RouterEstimate> {
        self.cache
            .slice_for(router)
            .source(self.epoch)
            .router_estimate(octant, provider, model, router)
    }

    fn dilated_region(
        &self,
        router: NodeId,
        estimate: &RouterEstimate,
        radius: Distance,
    ) -> Option<Arc<GeoRegion>> {
        self.cache
            .slice_for(router)
            .source(self.epoch)
            .dilated_region(router, estimate, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn octant_geo_point(lat: f64) -> octant_geo::GeoPoint {
        octant_geo::GeoPoint::new(lat, 0.0)
    }

    #[test]
    fn compute_runs_once_per_key() {
        let cache = RouterCache::default();
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            cache.get_or_compute(1, NodeId(7), || {
                calls.fetch_add(1, Ordering::SeqCst);
                RouterEstimate::default()
            });
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn distinct_epochs_are_distinct_keys() {
        let cache = RouterCache::default();
        cache.get_or_compute(1, NodeId(7), RouterEstimate::default);
        cache.get_or_compute(2, NodeId(7), RouterEstimate::default);
        assert_eq!(cache.sub_localizations(), 2);
        assert_eq!(cache.entries_for_epoch(1), 1);
        assert_eq!(cache.entries_for_epoch(2), 1);
    }

    #[test]
    fn retire_evicts_old_epochs_only() {
        let cache = RouterCache::default();
        for id in 0..4 {
            cache.get_or_compute(1, NodeId(id), RouterEstimate::default);
        }
        for id in 0..3 {
            cache.get_or_compute(2, NodeId(id), RouterEstimate::default);
        }
        let removed = cache.retire_epochs_before(2);
        assert_eq!(removed, 4);
        assert_eq!(cache.entries_for_epoch(1), 0);
        assert_eq!(cache.entries_for_epoch(2), 3);
        assert_eq!(cache.stats().evictions, 4);
    }

    #[test]
    fn capacity_cap_spares_the_current_epoch() {
        let cache = RouterCache::new(
            RouterCacheConfig::default()
                .with_max_entries(4)
                .with_keep_epochs(2),
        );
        for id in 0..4 {
            cache.get_or_compute(1, NodeId(id), RouterEstimate::default);
        }
        // Epoch 2 inserts push past the cap: epoch-1 entries are evicted,
        // epoch-2 entries are never touched.
        for id in 0..6 {
            cache.get_or_compute(2, NodeId(id), RouterEstimate::default);
        }
        assert_eq!(cache.entries_for_epoch(2), 6);
        assert!(cache.stats().evictions >= 2);
        // Even over-cap inserts within one epoch are kept.
        assert_eq!(cache.sub_localizations(), 10);
    }

    #[test]
    fn concurrent_misses_deduplicate() {
        let cache = RouterCache::default();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_compute(1, NodeId(3), || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so racers really do overlap.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        RouterEstimate::default()
                    });
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.sub_localizations(), 1);
        assert_eq!(cache.stats().hits, 7);
    }

    #[test]
    fn dilation_cache_is_on_by_default_and_rounds_classes_up() {
        use octant_geo::projection::AzimuthalEquidistant;
        let proj = AzimuthalEquidistant::new(octant_geo_point(40.0));
        let region = GeoRegion::disk(proj, octant_geo_point(40.0), Distance::from_km(50.0));
        let estimate = RouterEstimate {
            region: Some(region),
            point: None,
        };

        // Characterized default: a positive step, so the hook serves
        // class-rounded dilations out of the box.
        assert_eq!(RouterCacheConfig::default().dilation_radius_step_km, 25.0);
        let on = RouterCache::default();
        assert!(on
            .source(1)
            .dilated_region(NodeId(1), &estimate, Distance::from_km(300.0))
            .is_some());
        assert_eq!(on.fresh_dilations(), 1);

        // Step 0 opts out: the hook declines and the framework dilates
        // inline, bit-identical to the uncached float stream.
        let off = RouterCache::new(RouterCacheConfig::default().with_dilation_radius_step_km(0.0));
        assert!(off
            .source(1)
            .dilated_region(NodeId(1), &estimate, Distance::from_km(300.0))
            .is_none());
        assert_eq!(off.fresh_dilations(), 0);

        // Step 50 km: radii 260 and 290 share class 6 (300 km), radius 301
        // opens class 7.
        let cache =
            RouterCache::new(RouterCacheConfig::default().with_dilation_radius_step_km(50.0));
        let source = cache.source(1);
        let a = source
            .dilated_region(NodeId(1), &estimate, Distance::from_km(260.0))
            .unwrap();
        let b = source
            .dilated_region(NodeId(1), &estimate, Distance::from_km(290.0))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same class must share one dilation");
        assert_eq!(cache.fresh_dilations(), 1);
        assert_eq!(cache.stats().dilation_hits, 1);
        let c = source
            .dilated_region(NodeId(1), &estimate, Distance::from_km(301.0))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.fresh_dilations(), 2);
        // The class-rounded dilation is a superset of the exact one:
        // rounding up only loosens the positive constraint.
        let exact = estimate
            .region
            .as_ref()
            .unwrap()
            .simplify_to_budget(
                octant::piecewise::router_region_budget_tolerance(Distance::from_km(260.0)),
                octant::piecewise::ROUTER_REGION_VERTEX_BUDGET,
            )
            .dilate(Distance::from_km(260.0));
        assert!(a.area_km2() >= exact.area_km2());
        // Retirement clears dilations along with estimates.
        cache.retire_epochs_before(2);
        assert_eq!(cache.stats().dilation_entries, 0);
    }

    #[test]
    fn cached_value_is_replayed_verbatim() {
        let cache = RouterCache::default();
        let original = RouterEstimate {
            region: None,
            point: Some(octant_geo_point(42.0)),
        };
        let first = cache.get_or_compute(1, NodeId(9), || original.clone());
        let second = cache.get_or_compute(1, NodeId(9), || unreachable!("must be cached"));
        assert_eq!(*first, original);
        assert_eq!(*second, original);
        // A hit is a pointer bump, not a deep copy of the estimate.
        assert!(Arc::ptr_eq(&first, &second));
    }
}
