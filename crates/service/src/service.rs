//! The long-lived geolocation serving engine.
//!
//! [`GeolocationService`] turns the offline [`BatchGeolocator`] into an
//! online server: callers [`submit`](GeolocationService::submit) targets
//! from any thread and block on a [`RequestHandle`]; a pool of worker
//! threads drains the shared queue in **adaptive micro-batches** onto the
//! batch engine. Three pieces of shared state amortize work across requests:
//!
//! * the [`ModelRegistry`] — the target-independent landmark model is
//!   prepared once per epoch and snapshotted per batch, so a model refresh
//!   mid-stream never interrupts in-flight solves,
//! * the [`RouterCache`] — recursive router sub-localizations are computed
//!   once per `(epoch, router)` and shared by every target and request,
//! * the micro-batch itself — targets from different requests coalesce into
//!   one batch, sharing the per-batch fan-out overhead.
//!
//! ## Micro-batching policy
//!
//! A worker that finds the queue non-empty drains `min(queue_len,
//! max_batch)` targets — under load, batches grow to the ceiling on their
//! own. When fewer than `min_batch` targets are pending, the worker waits up
//! to `max_wait` (measured from the oldest pending enqueue) for more to
//! arrive before serving a small batch, trading a bounded latency bump for
//! much better amortization under trickle load. Batch size thus adapts to
//! queue depth with no tuning beyond the two bounds.

use crate::cache::{RouterCache, RouterCacheConfig, RouterCacheStats};
use crate::registry::ModelRegistry;
use octant::{BatchGeolocator, EvidencePipeline, LocationEstimate, Octant, OctantConfig, SourceId};
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use parking_lot::Mutex as PlMutex;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`GeolocationService`].
///
/// `#[non_exhaustive]`: construct via [`ServiceConfig::default`] and the
/// builder-style `with_*` setters.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// The Octant pipeline configuration used for model preparation and
    /// every solve.
    pub octant: OctantConfig,
    /// Worker threads draining the request queue. Each worker serves one
    /// micro-batch at a time (the batch itself fans out over rayon).
    pub workers: usize,
    /// Micro-batch ceiling: a worker never drains more targets than this.
    pub max_batch: usize,
    /// Below this many pending targets a worker waits (up to
    /// [`ServiceConfig::max_wait`]) for more before serving.
    pub min_batch: usize,
    /// Longest time the oldest pending target may wait for batch-mates.
    pub max_wait: Duration,
    /// Router sub-localization cache sizing and retention.
    pub cache: RouterCacheConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            octant: OctantConfig::default(),
            workers: 2,
            max_batch: 64,
            min_batch: 4,
            max_wait: Duration::from_millis(2),
            cache: RouterCacheConfig::default(),
        }
    }
}

octant::config_setters!(ServiceConfig {
    /// Sets the Octant configuration used for models and solves.
    with_octant: octant: OctantConfig,
    /// Sets the worker thread count.
    with_workers: workers: usize,
    /// Sets the micro-batch ceiling.
    with_max_batch: max_batch: usize,
    /// Sets the micro-batch floor below which workers briefly wait.
    with_min_batch: min_batch: usize,
    /// Sets the longest wait for batch-mates.
    with_max_wait: max_wait: Duration,
    /// Sets the router cache configuration.
    with_cache: cache: RouterCacheConfig,
});

/// Per-request evidence selection: which pipeline sources to disable and
/// which to re-weight, relative to the service's base pipeline. The default
/// (empty) options run the base pipeline untouched.
///
/// Options affect only the **target** solves of the request; cached router
/// sub-localizations are shared across requests and always use the standard
/// source mix (see [`octant::Octant::compute_router_estimate`]), so one
/// request's ablation cannot skew another's answers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LocalizeOptions {
    /// Sources to disable for this request.
    pub disabled_sources: Vec<SourceId>,
    /// Weight scales to apply per source for this request.
    pub weight_scales: Vec<(SourceId, f64)>,
}

impl LocalizeOptions {
    /// `true` when the options leave the base pipeline untouched.
    pub fn is_default(&self) -> bool {
        self.disabled_sources.is_empty() && self.weight_scales.is_empty()
    }

    /// Disables a source for this request.
    #[must_use]
    pub fn without_source(mut self, id: SourceId) -> Self {
        self.disabled_sources.push(id);
        self
    }

    /// Scales a source's constraint weights for this request.
    #[must_use]
    pub fn with_weight_scale(mut self, id: SourceId, scale: f64) -> Self {
        self.weight_scales.push((id, scale));
        self
    }
}

/// One served target: the estimate plus the model epoch that produced it.
#[derive(Debug, Clone)]
pub struct ServedEstimate {
    /// The target that was localized.
    pub target: NodeId,
    /// The model epoch the solve ran against.
    pub epoch: u64,
    /// The location estimate.
    pub estimate: LocationEstimate,
}

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Current model epoch.
    pub epoch: u64,
    /// Micro-batches served so far.
    pub batches: u64,
    /// Targets served so far.
    pub targets_served: u64,
    /// Largest micro-batch drained so far.
    pub largest_batch: usize,
    /// Micro-batches whose solve panicked; their targets were answered with
    /// unknown estimates instead of hanging the request.
    pub failed_batches: u64,
    /// Targets currently waiting in the queue.
    pub queue_depth: usize,
    /// Router cache counters.
    pub cache: RouterCacheStats,
}

/// Shared completion state of one submitted request.
struct RequestState {
    /// `(remaining, results)` — `results` is in submission order and filled
    /// as micro-batches complete (a request may be split across batches).
    slots: Mutex<(usize, Vec<Option<ServedEstimate>>)>,
    done: Condvar,
}

impl RequestState {
    fn complete(&self, slot: usize, result: ServedEstimate) {
        let mut guard = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        guard.1[slot] = Some(result);
        guard.0 -= 1;
        if guard.0 == 0 {
            self.done.notify_all();
        }
    }
}

/// A handle on a submitted request; [`RequestHandle::wait`] blocks until
/// every target of the request has been served.
pub struct RequestHandle {
    state: Arc<RequestState>,
}

impl RequestHandle {
    /// Blocks until the request completes and returns the estimates in
    /// submission order.
    pub fn wait(self) -> Vec<ServedEstimate> {
        let mut guard = self.state.slots.lock().unwrap_or_else(|e| e.into_inner());
        while guard.0 > 0 {
            guard = self
                .state
                .done
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
        guard
            .1
            .drain(..)
            .map(|r| r.expect("completed request has every slot filled"))
            .collect()
    }

    /// `true` when every target of the request has been served (non-blocking).
    pub fn is_done(&self) -> bool {
        self.state.slots.lock().unwrap_or_else(|e| e.into_inner()).0 == 0
    }
}

/// One queued target with its delivery slot and the request's evidence
/// selection (`None` = the service's base pipeline).
struct PendingTarget {
    target: NodeId,
    request: Arc<RequestState>,
    slot: usize,
    options: Option<Arc<LocalizeOptions>>,
}

/// Queue state behind the std mutex paired with the drain condvar.
struct QueueState {
    pending: VecDeque<PendingTarget>,
    /// When the oldest currently-pending target was enqueued (None when
    /// empty). Deliberately left untouched by partial drains, so leftovers
    /// are served promptly on the next pass instead of re-waiting.
    oldest_since: Option<Instant>,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct ServingCounters {
    batches: u64,
    targets_served: u64,
    largest_batch: usize,
    failed_batches: u64,
}

struct ServiceInner<P> {
    provider: P,
    config: ServiceConfig,
    batch: BatchGeolocator,
    registry: ModelRegistry,
    cache: RouterCache,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    counters: PlMutex<ServingCounters>,
}

impl<P: ObservationProvider + Sync> ServiceInner<P> {
    fn serve_batch(&self, batch: Vec<PendingTarget>) {
        let epoch_model = self.registry.current();
        let source = self.cache.source(epoch_model.epoch);
        let total = batch.len();

        // Partition the drained batch by evidence selection: targets with
        // the same options (by value) share one engine run. The common case
        // — every target on the base pipeline — stays a single group.
        let mut groups: Vec<(Option<Arc<LocalizeOptions>>, Vec<PendingTarget>)> = Vec::new();
        for pending in batch {
            let found = groups.iter_mut().find(|(opts, _)| {
                match (opts.as_deref(), pending.options.as_deref()) {
                    (None, None) => true,
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                }
            });
            match found {
                Some((_, members)) => members.push(pending),
                None => groups.push((pending.options.clone(), vec![pending])),
            }
        }

        // Counters are bumped before any completion is delivered: a caller
        // woken by its last completion must observe the batch in the stats.
        {
            let mut counters = self.counters.lock();
            counters.batches += 1;
            counters.targets_served += total as u64;
            counters.largest_batch = counters.largest_batch.max(total);
        }

        for (options, members) in groups {
            let targets: Vec<NodeId> = members.iter().map(|p| p.target).collect();
            // A panicking solve must neither kill the worker (the pool
            // would silently shrink) nor leave the batch's requests waiting
            // forever: catch the unwind, answer every slot with an unknown
            // estimate, and count the failure.
            let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match options.as_deref() {
                    None => self.batch.localize_batch_with_routers(
                        &self.provider,
                        &epoch_model.model,
                        &targets,
                        Some(&source),
                    ),
                    Some(opts) => {
                        // Per-request pipeline: the base pipeline with the
                        // request's sources disabled/re-scaled. The model
                        // and the router cache are shared untouched.
                        let adjusted = BatchGeolocator::from_octant(Octant::with_pipeline(
                            *self.batch.octant().config(),
                            self.batch
                                .octant()
                                .pipeline()
                                .adjusted(&opts.disabled_sources, &opts.weight_scales),
                        ));
                        adjusted.localize_batch_with_routers(
                            &self.provider,
                            &epoch_model.model,
                            &targets,
                            Some(&source),
                        )
                    }
                }
            }));
            let estimates = match solved {
                Ok(estimates) => estimates,
                Err(_) => {
                    self.counters.lock().failed_batches += 1;
                    targets
                        .iter()
                        .map(|_| LocationEstimate::unknown())
                        .collect()
                }
            };
            for (pending, estimate) in members.into_iter().zip(estimates) {
                pending.request.complete(
                    pending.slot,
                    ServedEstimate {
                        target: pending.target,
                        epoch: epoch_model.epoch,
                        estimate,
                    },
                );
            }
        }
    }

    /// Blocks until a micro-batch is ready (or shutdown drains the rest) and
    /// returns it; `None` means shut down with an empty queue.
    fn next_batch(&self) -> Option<Vec<PendingTarget>> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if queue.pending.is_empty() {
                if queue.shutdown {
                    return None;
                }
                queue = self.queue_cv.wait(queue).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            let waited = queue
                .oldest_since
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO);
            let ready = queue.shutdown
                || queue.pending.len() >= self.config.min_batch
                || waited >= self.config.max_wait;
            if ready {
                let n = queue.pending.len().min(self.config.max_batch);
                let batch: Vec<PendingTarget> = queue.pending.drain(..n).collect();
                if queue.pending.is_empty() {
                    queue.oldest_since = None;
                }
                return Some(batch);
            }
            let remaining = self.config.max_wait.saturating_sub(waited);
            let (guard, _) = self
                .queue_cv
                .wait_timeout(queue, remaining)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }
}

/// The cache-backed geolocation serving engine. See the module docs for the
/// architecture; construct with [`GeolocationService::start`].
pub struct GeolocationService<P: ObservationProvider + Send + Sync + 'static> {
    inner: Arc<ServiceInner<P>>,
    workers: Vec<JoinHandle<()>>,
}

impl<P: ObservationProvider + Send + Sync + 'static> GeolocationService<P> {
    /// Prepares the initial landmark model (epoch 1), spawns the worker
    /// pool, and starts serving with the standard evidence pipeline.
    pub fn start(config: ServiceConfig, provider: P, landmarks: &[NodeId]) -> Self {
        GeolocationService::start_with_pipeline(
            config,
            EvidencePipeline::standard(),
            provider,
            landmarks,
        )
    }

    /// [`GeolocationService::start`] with an explicit base evidence
    /// pipeline; per-request [`LocalizeOptions`] adjust relative to it.
    pub fn start_with_pipeline(
        config: ServiceConfig,
        pipeline: EvidencePipeline,
        provider: P,
        landmarks: &[NodeId],
    ) -> Self {
        let octant = Octant::with_pipeline(config.octant, pipeline);
        let registry = ModelRegistry::bootstrap(octant.clone(), &provider, landmarks);
        let inner = Arc::new(ServiceInner {
            batch: BatchGeolocator::from_octant(octant),
            registry,
            cache: RouterCache::new(config.cache),
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                oldest_since: None,
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            counters: PlMutex::new(ServingCounters::default()),
            provider,
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("octant-serve-{i}"))
                    .spawn(move || {
                        while let Some(batch) = inner.next_batch() {
                            inner.serve_batch(batch);
                        }
                    })
                    .expect("spawning a service worker thread")
            })
            .collect();
        GeolocationService { inner, workers }
    }

    /// Enqueues `targets` for localization and returns a handle to wait on.
    /// Targets from concurrent requests coalesce into shared micro-batches.
    pub fn submit(&self, targets: &[NodeId]) -> RequestHandle {
        self.enqueue(targets, None)
    }

    /// [`GeolocationService::submit`] with per-request evidence selection:
    /// the request's targets run on the base pipeline adjusted by
    /// `options` (sources disabled / re-weighted). Targets from requests
    /// with identical options still coalesce into shared engine runs.
    pub fn submit_with_options(
        &self,
        targets: &[NodeId],
        options: LocalizeOptions,
    ) -> RequestHandle {
        let options = if options.is_default() {
            None
        } else {
            Some(Arc::new(options))
        };
        self.enqueue(targets, options)
    }

    fn enqueue(&self, targets: &[NodeId], options: Option<Arc<LocalizeOptions>>) -> RequestHandle {
        let state = Arc::new(RequestState {
            slots: Mutex::new((targets.len(), vec![None; targets.len()])),
            done: Condvar::new(),
        });
        if !targets.is_empty() {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            for (slot, &target) in targets.iter().enumerate() {
                queue.pending.push_back(PendingTarget {
                    target,
                    request: state.clone(),
                    slot,
                    options: options.clone(),
                });
            }
            if queue.oldest_since.is_none() {
                queue.oldest_since = Some(Instant::now());
            }
            drop(queue);
            self.inner.queue_cv.notify_all();
        }
        RequestHandle { state }
    }

    /// Convenience: [`GeolocationService::submit`] + [`RequestHandle::wait`].
    pub fn localize_blocking(&self, targets: &[NodeId]) -> Vec<ServedEstimate> {
        self.submit(targets).wait()
    }

    /// Convenience: [`GeolocationService::submit_with_options`] +
    /// [`RequestHandle::wait`].
    pub fn localize_blocking_with_options(
        &self,
        targets: &[NodeId],
        options: LocalizeOptions,
    ) -> Vec<ServedEstimate> {
        self.submit_with_options(targets, options).wait()
    }

    /// Prepares a fresh model from `landmarks`, makes it the current epoch
    /// without interrupting in-flight batches, and retires cache entries
    /// older than the configured retention window. Returns the new epoch.
    pub fn refresh_model(&self, landmarks: &[NodeId]) -> u64 {
        let epoch = self.inner.registry.refresh(&self.inner.provider, landmarks);
        let keep = self.inner.config.cache.keep_epochs.max(1);
        self.inner
            .cache
            .retire_epochs_before(epoch.saturating_sub(keep - 1));
        epoch
    }

    /// The current model epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.registry.epoch()
    }

    /// The shared router sub-localization cache (counters, eviction).
    pub fn cache(&self) -> &RouterCache {
        &self.inner.cache
    }

    /// The model registry (snapshots, external registration).
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner.registry
    }

    /// An aggregate counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let counters = self.inner.counters.lock();
        ServiceStats {
            epoch: self.inner.registry.epoch(),
            batches: counters.batches,
            targets_served: counters.targets_served,
            largest_batch: counters.largest_batch,
            failed_batches: counters.failed_batches,
            queue_depth: self
                .inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pending
                .len(),
            cache: self.inner.cache.stats(),
        }
    }

    /// Drains the queue, stops the workers, and joins them. Pending requests
    /// are served before the workers exit.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.shutdown = true;
        }
        self.inner.queue_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<P: ObservationProvider + Send + Sync + 'static> Drop for GeolocationService<P> {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dataset;
    use octant::{Geolocator, RouterLocalization};
    use octant_netsim::observation::{HostDescriptor, PingObservation, TracerouteHop};
    use octant_netsim::MeasurementDataset;

    #[test]
    fn serves_submitted_targets_in_order() {
        let ds = dataset(10, 7).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let service = GeolocationService::start(ServiceConfig::default(), ds.clone(), landmarks);
        let served = service.localize_blocking(targets);
        assert_eq!(served.len(), targets.len());
        for (&target, s) in targets.iter().zip(&served) {
            assert_eq!(s.target, target);
            assert_eq!(s.epoch, 1);
            assert!(s.estimate.point.is_some());
        }
        let stats = service.stats();
        assert_eq!(stats.targets_served, targets.len() as u64);
        assert!(stats.batches >= 1);
        service.shutdown();
    }

    #[test]
    fn served_estimates_match_the_offline_batch_engine() {
        let ds = dataset(10, 13).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let service = GeolocationService::start(ServiceConfig::default(), ds.clone(), landmarks);
        let served = service.localize_blocking(targets);
        let octant = Octant::new(OctantConfig::default());
        for s in &served {
            let direct = octant.localize(ds.as_ref(), landmarks, s.target);
            assert_eq!(s.estimate.point, direct.point);
            assert_eq!(s.estimate.report, direct.report);
        }
        service.shutdown();
    }

    #[test]
    fn empty_request_completes_immediately() {
        let ds = dataset(8, 3).into_shared();
        let hosts = ds.host_ids();
        let service = GeolocationService::start(ServiceConfig::default(), ds, &hosts[..6]);
        let handle = service.submit(&[]);
        assert!(handle.is_done());
        assert!(handle.wait().is_empty());
        service.shutdown();
    }

    #[test]
    fn concurrent_requests_all_complete() {
        let ds = dataset(12, 17).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(8);
        let service = Arc::new(GeolocationService::start(
            ServiceConfig {
                workers: 3,
                min_batch: 2,
                ..ServiceConfig::default()
            },
            ds,
            landmarks,
        ));
        std::thread::scope(|scope| {
            for i in 0..6 {
                let service = &service;
                let targets = &targets;
                scope.spawn(move || {
                    let pick = [targets[i % targets.len()], targets[(i + 1) % targets.len()]];
                    let served = service.localize_blocking(&pick);
                    assert_eq!(served.len(), 2);
                    assert_eq!(served[0].target, pick[0]);
                    assert_eq!(served[1].target, pick[1]);
                });
            }
        });
        assert_eq!(service.stats().targets_served, 12);
    }

    #[test]
    fn per_request_options_select_sources_without_disturbing_others() {
        let ds = dataset(10, 19).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let service = GeolocationService::start(ServiceConfig::default(), ds.clone(), landmarks);

        // Baseline request on the default pipeline.
        let base = service.localize_blocking(&targets[..2]);
        // Same targets with the router + hint sources disabled.
        let ablated = service.localize_blocking_with_options(
            &targets[..2],
            LocalizeOptions::default()
                .without_source(SourceId::Router)
                .without_source(SourceId::Hint),
        );
        for (b, a) in base.iter().zip(&ablated) {
            assert_eq!(b.target, a.target);
            assert!(a.estimate.point.is_some());
            // The ablated run's provenance shows the disabled sources.
            let prov = &a.estimate.provenance;
            assert!(!prov.source(SourceId::Router).unwrap().enabled);
            assert!(!prov.source(SourceId::Hint).unwrap().enabled);
            assert_eq!(prov.source(SourceId::Router).unwrap().emitted(), 0);
            assert!(prov.source(SourceId::Latency).unwrap().enabled);
            assert!(
                b.estimate
                    .provenance
                    .source(SourceId::Router)
                    .unwrap()
                    .enabled
            );
        }

        // A repeat default-pipeline request is unaffected by the ablation.
        let again = service.localize_blocking(&targets[..2]);
        for (b, a) in base.iter().zip(&again) {
            assert_eq!(b.estimate.point, a.estimate.point);
        }

        // Empty options behave exactly like plain submit.
        let plain =
            service.localize_blocking_with_options(&targets[..1], LocalizeOptions::default());
        assert_eq!(plain[0].estimate.point, base[0].estimate.point);
        service.shutdown();
    }

    #[test]
    fn refresh_mid_stream_bumps_epoch_without_breaking_requests() {
        let ds = dataset(10, 23).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let service = GeolocationService::start(ServiceConfig::default(), ds, landmarks);
        let first = service.localize_blocking(&targets[..1]);
        assert_eq!(first[0].epoch, 1);
        let epoch = service.refresh_model(landmarks);
        assert_eq!(epoch, 2);
        let second = service.localize_blocking(&targets[..1]);
        assert_eq!(second[0].epoch, 2);
        // Same landmarks, replay-stable provider → identical estimates
        // across epochs.
        assert_eq!(first[0].estimate.point, second[0].estimate.point);
        service.shutdown();
    }

    #[test]
    fn recursive_mode_fills_the_router_cache() {
        let ds = dataset(8, 29).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(6);
        let service = GeolocationService::start(
            ServiceConfig::default().with_octant(
                OctantConfig::default()
                    .with_router_localization(RouterLocalization::Recursive)
                    .with_max_router_constraints(3),
            ),
            ds,
            landmarks,
        );
        let served = service.localize_blocking(targets);
        assert_eq!(served.len(), targets.len());
        let stats = service.stats();
        assert!(
            stats.cache.misses > 0,
            "recursive solves must fill the cache"
        );
        assert_eq!(
            stats.cache.misses,
            service.cache().sub_localizations(),
            "misses count the sub-localizations"
        );
        // Serving the same targets again is answered entirely from cache.
        let before = service.cache().sub_localizations();
        service.localize_blocking(targets);
        assert_eq!(service.cache().sub_localizations(), before);
        service.shutdown();
    }

    /// Wraps a dataset and panics on any ping involving one poisoned node.
    struct PoisonedProvider {
        inner: MeasurementDataset,
        poison: octant_netsim::topology::NodeId,
    }

    impl ObservationProvider for PoisonedProvider {
        fn hosts(&self) -> Vec<HostDescriptor> {
            self.inner.hosts()
        }
        fn ping(
            &self,
            from: octant_netsim::topology::NodeId,
            to: octant_netsim::topology::NodeId,
        ) -> PingObservation {
            assert!(
                from != self.poison && to != self.poison,
                "simulated measurement failure"
            );
            self.inner.ping(from, to)
        }
        fn traceroute(
            &self,
            from: octant_netsim::topology::NodeId,
            to: octant_netsim::topology::NodeId,
        ) -> Vec<TracerouteHop> {
            self.inner.traceroute(from, to)
        }
        fn node_by_ip(&self, ip: [u8; 4]) -> Option<octant_netsim::topology::NodeId> {
            self.inner.node_by_ip(ip)
        }
        fn reverse_dns(&self, ip: [u8; 4]) -> Option<String> {
            self.inner.reverse_dns(ip)
        }
        fn whois_city(&self, ip: [u8; 4]) -> Option<String> {
            self.inner.whois_city(ip)
        }
        fn advertised_location(
            &self,
            id: octant_netsim::topology::NodeId,
        ) -> Option<octant_geo::GeoPoint> {
            self.inner.advertised_location(id)
        }
    }

    #[test]
    fn panicking_solve_answers_unknown_instead_of_hanging() {
        let ds = dataset(10, 31);
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let poison = targets[0];
        let provider = std::sync::Arc::new(PoisonedProvider { inner: ds, poison });
        let service = GeolocationService::start(
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            provider,
            landmarks,
        );
        // The poisoned target's batch must complete (with unknown results),
        // not hang the caller or kill the worker.
        let served = service.localize_blocking(&[poison]);
        assert_eq!(served.len(), 1);
        assert!(served[0].estimate.point.is_none());
        assert!(service.stats().failed_batches >= 1);
        // The single worker survived and keeps serving healthy targets.
        let healthy = service.localize_blocking(&targets[1..2]);
        assert!(healthy[0].estimate.point.is_some());
        service.shutdown();
    }
}
