//! The long-lived geolocation serving engine: a control-plane /
//! data-plane split.
//!
//! [`ShardedService`] turns the offline [`BatchGeolocator`] into an online
//! server shaped like a production serving tier:
//!
//! * the **control plane** owns the slow-changing shared state — the
//!   [`ModelRegistry`] (epoch refresh), the configuration, the
//!   target → shard routing table ([`crate::ShardRouter`]), and stats
//!   aggregation;
//! * the **data plane** is [`ShardConfig::count`] independent shards, each
//!   owning its own bounded request queue, its own worker pool, and its own
//!   latency histogram. Targets route to shards deterministically by /24 IP
//!   prefix, so repeat traffic for a prefix stays on one queue;
//! * router sub-localizations live in the router-id-sliced
//!   [`ShardedRouterCache`] shared by **all** shards, so the
//!   exactly-once-per-router property (and the cache locality it buys)
//!   survives the split.
//!
//! [`GeolocationService`] — the pre-sharding name — is a type alias for
//! [`ShardedService`]; with the default [`ShardConfig`] (`count = 1`,
//! unbounded queue) the service is the old single-queue engine exactly, and
//! serves bit-identical results.
//!
//! ## SLOs: deadlines, admission control, and shedding
//!
//! Submission never blocks on a full queue. Instead each target's slot
//! resolves to a typed [`ServeOutcome`]:
//!
//! * [`ServeOutcome::Served`] — solved and delivered;
//! * [`ServeOutcome::Shed`] — refused at **admission** because the shard's
//!   bounded queue ([`ShardConfig::queue_capacity`]) was full;
//! * [`ServeOutcome::DeadlineExceeded`] — the request's
//!   [`LocalizeOptions::deadline`] expired while the target waited in the
//!   queue; expired targets are shed at drain time and **never solved**, so
//!   a backed-up shard spends no work on answers nobody is waiting for.
//!
//! [`RequestHandle::wait_outcomes`] returns the typed outcomes;
//! [`RequestHandle::wait`] keeps the legacy always-served signature for
//! callers that configure neither deadlines nor bounded queues.
//!
//! ## Micro-batching policy (per shard)
//!
//! A worker that finds its shard's queue non-empty drains
//! `min(queue_len, max_batch)` targets — under load, batches grow to the
//! ceiling on their own. When fewer than `min_batch` targets are pending,
//! the worker waits up to `max_wait` (measured from the oldest pending
//! enqueue) for more to arrive before serving a small batch, trading a
//! bounded latency bump for much better amortization under trickle load.

use crate::answer_cache::{
    AnswerCache, AnswerCacheConfig, AnswerCacheStats, AnswerKey, EvidenceKey, PrefixTable,
};
use crate::cache::{RouterCacheConfig, RouterCacheStats, ShardedRouterCache};
use crate::registry::ModelRegistry;
use crate::shard::{ShardConfig, ShardRouter};
use crate::stats::{
    QueueSnapshot, ServiceCounters, ServiceStats, ShardStats, StageBreakdown, StatsReport,
};
use octant::{
    BatchGeolocator, EvidencePipeline, LandmarkModel, LocationEstimate, Octant, OctantConfig,
    RecalibrationReport, SourceId,
};
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use octant_telemetry::{Counter, Gauge, LatencyHistogram, MetricsRegistry};
use parking_lot::Mutex as PlMutex;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`ShardedService`].
///
/// `#[non_exhaustive]`: construct via [`ServiceConfig::default`] and the
/// builder-style `with_*` setters.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// The Octant pipeline configuration used for model preparation and
    /// every solve.
    pub octant: OctantConfig,
    /// Worker threads **per shard** draining that shard's queue. Each worker
    /// serves one micro-batch at a time (the batch itself fans out over
    /// rayon).
    pub workers: usize,
    /// Micro-batch ceiling: a worker never drains more targets than this.
    pub max_batch: usize,
    /// Below this many pending targets a worker waits (up to
    /// [`ServiceConfig::max_wait`]) for more before serving.
    pub min_batch: usize,
    /// Longest time the oldest pending target may wait for batch-mates.
    pub max_wait: Duration,
    /// Router sub-localization cache sizing and retention (applied to each
    /// cache slice).
    pub cache: RouterCacheConfig,
    /// The per-target-prefix answer memo in front of the pipeline (see
    /// [`crate::AnswerCache`]). Enabled by default; with a replay-stable
    /// provider hits are bit-identical to fresh solves.
    pub answers: AnswerCacheConfig,
    /// Data-plane sizing: shard count and per-shard queue bound. The
    /// default (`count = 1`, unbounded) reproduces the pre-sharding
    /// single-queue service exactly.
    pub shard: ShardConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            octant: OctantConfig::default(),
            workers: 2,
            max_batch: 64,
            min_batch: 4,
            max_wait: Duration::from_millis(2),
            cache: RouterCacheConfig::default(),
            answers: AnswerCacheConfig::default(),
            shard: ShardConfig::default(),
        }
    }
}

octant::config_setters!(ServiceConfig {
    /// Sets the Octant configuration used for models and solves.
    with_octant: octant: OctantConfig,
    /// Sets the worker thread count per shard.
    with_workers: workers: usize,
    /// Sets the micro-batch ceiling.
    with_max_batch: max_batch: usize,
    /// Sets the micro-batch floor below which workers briefly wait.
    with_min_batch: min_batch: usize,
    /// Sets the longest wait for batch-mates.
    with_max_wait: max_wait: Duration,
    /// Sets the router cache configuration (per slice).
    with_cache: cache: RouterCacheConfig,
    /// Sets the answer-memo configuration.
    with_answers: answers: AnswerCacheConfig,
    /// Sets the data-plane shard configuration.
    with_shard: shard: ShardConfig,
});

impl ServiceConfig {
    /// Convenience: sets the data-plane shard **count**, keeping the rest
    /// of the shard configuration.
    #[must_use]
    pub fn with_shards(mut self, count: usize) -> Self {
        self.shard.count = count;
        self
    }
}

/// Per-request options: evidence selection (which pipeline sources to
/// disable or re-weight relative to the service's base pipeline) plus an
/// optional **deadline**. The default (empty) options run the base pipeline
/// untouched with no deadline.
///
/// Evidence options affect only the **target** solves of the request;
/// cached router sub-localizations are shared across requests and always
/// use the standard source mix (see
/// [`octant::Octant::compute_router_estimate`]), so one request's ablation
/// cannot skew another's answers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LocalizeOptions {
    /// Sources to disable for this request.
    pub disabled_sources: Vec<SourceId>,
    /// Weight scales to apply per source for this request.
    pub weight_scales: Vec<(SourceId, f64)>,
    /// Time budget for this request, measured from submission. Targets
    /// whose deadline expires while they wait in a shard queue resolve to
    /// [`ServeOutcome::DeadlineExceeded`] without being solved. `None` (the
    /// default) never expires. A deadline does **not** prevent targets from
    /// coalescing into shared engine runs — only evidence selection
    /// partitions batches.
    pub deadline: Option<Duration>,
    /// Record a per-stage wall-time profile for each of this request's
    /// targets: served estimates carry
    /// `Some(`[`octant_telemetry::StageProfile`]`)` in
    /// [`octant::LocationEstimate::profile`], led by a `queue_wait` stage
    /// (drain start − enqueue). Profiled targets batch separately from
    /// unprofiled ones (profiling is part of the batch-group key), so the
    /// default path stays bit-identical and profiling-free.
    pub profiling: bool,
}

impl LocalizeOptions {
    /// `true` when the options leave the base pipeline untouched, set no
    /// deadline, and request no profiling.
    pub fn is_default(&self) -> bool {
        self.evidence_is_default() && self.deadline.is_none() && !self.profiling
    }

    /// `true` when the evidence selection (sources disabled / re-weighted)
    /// is untouched, regardless of any deadline.
    pub fn evidence_is_default(&self) -> bool {
        self.disabled_sources.is_empty() && self.weight_scales.is_empty()
    }

    /// Disables a source for this request.
    #[must_use]
    pub fn without_source(mut self, id: SourceId) -> Self {
        self.disabled_sources.push(id);
        self
    }

    /// Scales a source's constraint weights for this request.
    #[must_use]
    pub fn with_weight_scale(mut self, id: SourceId, scale: f64) -> Self {
        self.weight_scales.push((id, scale));
        self
    }

    /// Sets the request's deadline (time budget from submission).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Requests a per-stage wall-time profile for each served target (see
    /// [`LocalizeOptions::profiling`]).
    #[must_use]
    pub fn with_profiling(mut self) -> Self {
        self.profiling = true;
        self
    }

    /// The evidence selection plus the profiling flag (deadline stripped) —
    /// the part of the options that partitions micro-batches into engine
    /// runs.
    fn evidence(&self) -> LocalizeOptions {
        LocalizeOptions {
            disabled_sources: self.disabled_sources.clone(),
            weight_scales: self.weight_scales.clone(),
            deadline: None,
            profiling: self.profiling,
        }
    }
}

/// One served target: the estimate plus the model epoch that produced it.
#[derive(Debug, Clone)]
pub struct ServedEstimate {
    /// The target that was localized.
    pub target: NodeId,
    /// The model epoch the solve ran against.
    pub epoch: u64,
    /// The location estimate.
    pub estimate: LocationEstimate,
}

/// Why a target was refused instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShedReason {
    /// The target's shard had [`ShardConfig::queue_capacity`] targets
    /// pending; admitting more would only grow latency past any SLO.
    QueueFull,
}

/// The typed resolution of one submitted target.
//
// `Served` dwarfs the other variants, but outcomes live one-per-slot in the
// request's completion vector where served is the common case — boxing the
// estimate would cost an allocation per served target to shrink the rare
// shed/expired slots that share the vector anyway.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServeOutcome {
    /// The target was solved and delivered.
    Served(ServedEstimate),
    /// The target was shed at admission and never queued.
    Shed {
        /// Why admission refused the target.
        reason: ShedReason,
    },
    /// The request's deadline expired while the target waited in its shard
    /// queue; it was dropped at drain time without being solved.
    DeadlineExceeded,
}

impl ServeOutcome {
    /// `true` for [`ServeOutcome::Served`].
    pub fn is_served(&self) -> bool {
        matches!(self, ServeOutcome::Served(_))
    }

    /// The served estimate, when there is one.
    pub fn served(&self) -> Option<&ServedEstimate> {
        match self {
            ServeOutcome::Served(s) => Some(s),
            _ => None,
        }
    }

    /// Consumes the outcome into its served estimate, when there is one.
    pub fn into_served(self) -> Option<ServedEstimate> {
        match self {
            ServeOutcome::Served(s) => Some(s),
            _ => None,
        }
    }
}

/// Shared completion state of one submitted request.
struct RequestState {
    /// `(remaining, outcomes)` — `outcomes` is in submission order and
    /// filled as targets resolve (a request may be split across shards and
    /// micro-batches).
    slots: Mutex<(usize, Vec<Option<ServeOutcome>>)>,
    done: Condvar,
}

impl RequestState {
    fn complete(&self, slot: usize, outcome: ServeOutcome) {
        let mut guard = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        guard.1[slot] = Some(outcome);
        guard.0 -= 1;
        if guard.0 == 0 {
            self.done.notify_all();
        }
    }
}

/// A handle on a submitted request; wait with
/// [`RequestHandle::wait_outcomes`] (typed) or [`RequestHandle::wait`]
/// (legacy, served-only).
pub struct RequestHandle {
    state: Arc<RequestState>,
}

impl RequestHandle {
    /// Blocks until every target of the request has resolved and returns
    /// the typed outcomes in submission order.
    pub fn wait_outcomes(self) -> Vec<ServeOutcome> {
        let mut guard = self.state.slots.lock().unwrap_or_else(|e| e.into_inner());
        while guard.0 > 0 {
            guard = self
                .state
                .done
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
        guard
            .1
            .drain(..)
            .map(|r| r.expect("completed request has every slot filled"))
            .collect()
    }

    /// Blocks until the request completes and returns the served estimates
    /// in submission order — the pre-SLO signature.
    ///
    /// # Panics
    ///
    /// Panics if any target was shed or missed its deadline, which can only
    /// happen when the caller configured a bounded queue or a deadline;
    /// such callers must use [`RequestHandle::wait_outcomes`]. Under the
    /// default configuration every target is served and this never panics.
    pub fn wait(self) -> Vec<ServedEstimate> {
        self.wait_outcomes()
            .into_iter()
            .enumerate()
            .map(|(index, o)| match o {
                ServeOutcome::Served(s) => s,
                other => panic!(
                    "target #{index} of the request was not served (outcome: {other:?}); \
                     requests with deadlines or bounded queues must use wait_outcomes()"
                ),
            })
            .collect()
    }

    /// `true` when every target of the request has resolved (non-blocking).
    pub fn is_done(&self) -> bool {
        self.state.slots.lock().unwrap_or_else(|e| e.into_inner()).0 == 0
    }
}

/// One queued target with its delivery slot, the request's evidence
/// selection (`None` = the service's base pipeline), its deadline, and its
/// enqueue instant (the latency-histogram clock starts here).
struct PendingTarget {
    target: NodeId,
    request: Arc<RequestState>,
    slot: usize,
    options: Option<Arc<LocalizeOptions>>,
    deadline: Option<Instant>,
    enqueued_at: Instant,
}

/// Queue state behind the std mutex paired with the drain condvar.
struct QueueState {
    pending: VecDeque<PendingTarget>,
    /// When the oldest currently-pending target was enqueued (None when
    /// empty). Deliberately left untouched by partial drains, so leftovers
    /// are served promptly on the next pass instead of re-waiting.
    oldest_since: Option<Instant>,
    shutdown: bool,
}

/// Counters, latency histogram, and per-stage histograms of one shard,
/// behind that shard's lock.
#[derive(Debug, Default)]
struct ShardLocal {
    counters: ServiceCounters,
    latency: LatencyHistogram,
    /// Per-stage wall-time histograms, in first-observed order: `queue_wait`
    /// for every served target, `solve` at micro-batch granularity for
    /// unprofiled groups, and every captured stage of profiled targets.
    stages: Vec<(&'static str, LatencyHistogram)>,
}

impl ShardLocal {
    fn record_stage(&mut self, name: &'static str, wall: Duration) {
        match self.stages.iter_mut().find(|(n, _)| *n == name) {
            Some((_, hist)) => hist.record(wall),
            None => {
                let mut hist = LatencyHistogram::new();
                hist.record(wall);
                self.stages.push((name, hist));
            }
        }
    }
}

/// One shard's handles into [`MetricsRegistry::global`]: a per-shard queue
/// gauge (`service.shard{i}.queue_depth`) plus counters mirroring the
/// [`ServiceCounters`] under `service.*` names, bumped alongside the
/// shard-local counters so external observers see the same numbers.
#[derive(Debug)]
struct ShardMetrics {
    queue_depth: Gauge,
    batches: Counter,
    targets_served: Counter,
    failed_batches: Counter,
    shed_queue_full: Counter,
    deadline_expired: Counter,
}

impl ShardMetrics {
    fn new(shard_idx: usize) -> Self {
        let registry = MetricsRegistry::global();
        ShardMetrics {
            queue_depth: registry.gauge(&format!("service.shard{shard_idx}.queue_depth")),
            batches: registry.counter("service.batches"),
            targets_served: registry.counter("service.targets_served"),
            failed_batches: registry.counter("service.failed_batches"),
            shed_queue_full: registry.counter("service.shed_queue_full"),
            deadline_expired: registry.counter("service.deadline_expired"),
        }
    }
}

/// One data-plane shard: its queue, its drain condvar, its local stats, and
/// its registry handles.
struct Shard {
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    local: PlMutex<ShardLocal>,
    metrics: ShardMetrics,
}

impl Shard {
    fn new(shard_idx: usize) -> Self {
        Shard {
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                oldest_since: None,
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            local: PlMutex::new(ShardLocal::default()),
            metrics: ShardMetrics::new(shard_idx),
        }
    }
}

struct ServiceInner<P> {
    provider: P,
    config: ServiceConfig,
    batch: BatchGeolocator,
    registry: ModelRegistry,
    cache: ShardedRouterCache,
    answers: AnswerCache,
    prefixes: PrefixTable,
    router: ShardRouter,
    shards: Vec<Shard>,
}

impl<P: ObservationProvider + Sync> ServiceInner<P> {
    fn serve_batch(&self, shard_idx: usize, batch: Vec<PendingTarget>) {
        let shard = &self.shards[shard_idx];
        let epoch_model = self.registry.current();
        let source = self.cache.source(epoch_model.epoch);

        // Deadline-aware shedding at drain time: targets whose deadline
        // expired while they queued are dropped unsolved — a backed-up
        // shard spends no work on answers nobody is waiting for.
        let now = Instant::now();
        let (expired, live): (Vec<PendingTarget>, Vec<PendingTarget>) = batch
            .into_iter()
            .partition(|p| p.deadline.is_some_and(|d| d <= now));
        let total = live.len();

        // Partition the drained batch by evidence selection: targets with
        // the same options (by value) share one engine run. The common case
        // — every target on the base pipeline — stays a single group.
        let mut groups: Vec<(Option<Arc<LocalizeOptions>>, Vec<PendingTarget>)> = Vec::new();
        for pending in live {
            let found = groups.iter_mut().find(|(opts, _)| {
                match (opts.as_deref(), pending.options.as_deref()) {
                    (None, None) => true,
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                }
            });
            match found {
                Some((_, members)) => members.push(pending),
                None => groups.push((pending.options.clone(), vec![pending])),
            }
        }

        // Counters are bumped before any completion is delivered: a caller
        // woken by its last completion must observe the batch in the stats.
        {
            let mut local = shard.local.lock();
            local.counters.deadline_expired += expired.len() as u64;
            if total > 0 {
                local.counters.batches += 1;
                local.counters.targets_served += total as u64;
                local.counters.largest_batch = local.counters.largest_batch.max(total);
            }
        }
        shard.metrics.deadline_expired.add(expired.len() as u64);
        if total > 0 {
            shard.metrics.batches.inc();
            shard.metrics.targets_served.add(total as u64);
        }
        for pending in expired {
            pending
                .request
                .complete(pending.slot, ServeOutcome::DeadlineExceeded);
        }

        for (options, mut members) in groups {
            let profiled = options.as_deref().is_some_and(|o| o.profiling);
            // ---- Answer memo (front cache) --------------------------------
            // Keyed (epoch, /24 prefix, evidence): a hit replays the exact
            // estimate this model+pipeline already produced for the prefix,
            // skipping the solve entirely. Profiled requests bypass (their
            // estimates carry request-specific wall-time profiles). Hits
            // still count as served and record latency/queue_wait — they are
            // served requests, just cheap ones.
            let cacheable = self.answers.enabled() && !profiled;
            let evidence = if cacheable {
                options.as_deref().map(EvidenceKey::from_options)
            } else {
                None
            };
            if cacheable {
                let mut misses = Vec::with_capacity(members.len());
                for pending in members {
                    let key = AnswerKey {
                        epoch: epoch_model.epoch,
                        target: self.prefixes.target_key(pending.target),
                        evidence: evidence.clone(),
                    };
                    let Some(estimate) = self.answers.lookup(&key) else {
                        misses.push(pending);
                        continue;
                    };
                    {
                        let mut local = shard.local.lock();
                        local.latency.record(pending.enqueued_at.elapsed());
                        local.record_stage(
                            "queue_wait",
                            now.saturating_duration_since(pending.enqueued_at),
                        );
                    }
                    pending.request.complete(
                        pending.slot,
                        ServeOutcome::Served(ServedEstimate {
                            target: pending.target,
                            epoch: epoch_model.epoch,
                            estimate: (*estimate).clone(),
                        }),
                    );
                }
                members = misses;
                if members.is_empty() {
                    continue;
                }
            }

            let targets: Vec<NodeId> = members.iter().map(|p| p.target).collect();
            let solve_started = Instant::now();
            // A panicking solve must neither kill the worker (the pool
            // would silently shrink) nor leave the batch's requests waiting
            // forever: catch the unwind, answer every slot with an unknown
            // estimate, and count the failure.
            let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Per-request pipeline: the base pipeline with the
                // request's sources disabled/re-scaled. The model and the
                // router cache are shared untouched. Profiled requests with
                // default evidence reuse the base engine directly.
                let adjusted;
                let engine = match options.as_deref() {
                    None => &self.batch,
                    Some(opts) if opts.evidence_is_default() => &self.batch,
                    Some(opts) => {
                        adjusted = BatchGeolocator::from_octant(Octant::with_pipeline(
                            *self.batch.octant().config(),
                            self.batch
                                .octant()
                                .pipeline()
                                .adjusted(&opts.disabled_sources, &opts.weight_scales),
                        ));
                        &adjusted
                    }
                };
                if profiled {
                    engine.localize_batch_with_routers_profiled(
                        &self.provider,
                        &epoch_model.model,
                        &targets,
                        Some(&source),
                    )
                } else {
                    engine.localize_batch_with_routers(
                        &self.provider,
                        &epoch_model.model,
                        &targets,
                        Some(&source),
                    )
                }
            }));
            let estimates = match solved {
                Ok(estimates) => {
                    // Freshly solved answers enter the memo; a panicked
                    // group's unknown placeholders never do (the next
                    // request for the prefix deserves a real attempt).
                    if cacheable {
                        for (pending, estimate) in members.iter().zip(&estimates) {
                            self.answers.insert(
                                AnswerKey {
                                    epoch: epoch_model.epoch,
                                    target: self.prefixes.target_key(pending.target),
                                    evidence: evidence.clone(),
                                },
                                Arc::new(estimate.clone()),
                            );
                        }
                    }
                    estimates
                }
                Err(_) => {
                    shard.local.lock().counters.failed_batches += 1;
                    shard.metrics.failed_batches.inc();
                    targets
                        .iter()
                        .map(|_| LocationEstimate::unknown())
                        .collect()
                }
            };
            let solve_wall = solve_started.elapsed();
            // Record the group's latencies (enqueue → resolution) and stage
            // histograms before delivering its completions, so a woken
            // caller observes stats that include its own targets.
            {
                let mut local = shard.local.lock();
                for pending in &members {
                    local.latency.record(pending.enqueued_at.elapsed());
                    local.record_stage(
                        "queue_wait",
                        now.saturating_duration_since(pending.enqueued_at),
                    );
                }
                if profiled {
                    // Profiled targets contribute their captured stages
                    // (whose `solve` self-time plus sub-stages partition
                    // the solve wall), not the group-level wall — folding
                    // both in would double-count.
                    for estimate in &estimates {
                        if let Some(profile) = &estimate.profile {
                            for stage in profile.stages() {
                                local.record_stage(stage.name, stage.wall);
                            }
                        }
                    }
                } else {
                    local.record_stage("solve", solve_wall);
                }
            }
            for (pending, mut estimate) in members.into_iter().zip(estimates) {
                if let Some(profile) = estimate.profile.as_mut() {
                    profile.prepend(
                        "queue_wait",
                        now.saturating_duration_since(pending.enqueued_at),
                        1,
                    );
                }
                pending.request.complete(
                    pending.slot,
                    ServeOutcome::Served(ServedEstimate {
                        target: pending.target,
                        epoch: epoch_model.epoch,
                        estimate,
                    }),
                );
            }
        }
    }

    /// Blocks until a micro-batch is ready on `shard_idx` (or shutdown
    /// drains the rest) and returns it; `None` means shut down with an
    /// empty queue.
    fn next_batch(&self, shard_idx: usize) -> Option<Vec<PendingTarget>> {
        let shard = &self.shards[shard_idx];
        let mut queue = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if queue.pending.is_empty() {
                if queue.shutdown {
                    return None;
                }
                queue = shard
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
                continue;
            }
            let waited = queue
                .oldest_since
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO);
            let ready = queue.shutdown
                || queue.pending.len() >= self.config.min_batch
                || waited >= self.config.max_wait;
            if ready {
                let n = queue.pending.len().min(self.config.max_batch);
                let batch: Vec<PendingTarget> = queue.pending.drain(..n).collect();
                if queue.pending.is_empty() {
                    queue.oldest_since = None;
                }
                shard.metrics.queue_depth.set(queue.pending.len() as i64);
                return Some(batch);
            }
            let remaining = self.config.max_wait.saturating_sub(waited);
            let (guard, _) = shard
                .queue_cv
                .wait_timeout(queue, remaining)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }
}

/// The sharded, SLO-aware serving engine. See the module docs for the
/// architecture; construct with [`ShardedService::start`].
pub struct ShardedService<P: ObservationProvider + Send + Sync + 'static> {
    inner: Arc<ServiceInner<P>>,
    workers: Vec<JoinHandle<()>>,
}

/// The pre-sharding name of the serving engine, kept as the front door:
/// a [`ShardedService`] whose default [`ShardConfig`] (`count = 1`,
/// unbounded queue) reproduces the single-queue service bit-identically.
pub type GeolocationService<P> = ShardedService<P>;

impl<P: ObservationProvider + Send + Sync + 'static> ShardedService<P> {
    /// Prepares the initial landmark model (epoch 1), builds the routing
    /// table, spawns each shard's worker pool, and starts serving with the
    /// standard evidence pipeline.
    pub fn start(config: ServiceConfig, provider: P, landmarks: &[NodeId]) -> Self {
        ShardedService::start_with_pipeline(
            config,
            EvidencePipeline::standard(),
            provider,
            landmarks,
        )
    }

    /// [`ShardedService::start`] with an explicit base evidence pipeline;
    /// per-request [`LocalizeOptions`] adjust relative to it.
    pub fn start_with_pipeline(
        config: ServiceConfig,
        pipeline: EvidencePipeline,
        provider: P,
        landmarks: &[NodeId],
    ) -> Self {
        let shard_count = config.shard.count.max(1);
        let octant = Octant::with_pipeline(config.octant, pipeline);
        let registry = ModelRegistry::bootstrap(octant.clone(), &provider, landmarks);
        let router = ShardRouter::build(&provider, shard_count);
        let prefixes = PrefixTable::build(&provider);
        let inner = Arc::new(ServiceInner {
            batch: BatchGeolocator::from_octant(octant),
            registry,
            cache: ShardedRouterCache::new(config.cache, shard_count),
            answers: AnswerCache::new(config.answers),
            prefixes,
            router,
            shards: (0..shard_count).map(Shard::new).collect(),
            provider,
            config,
        });
        let workers = (0..shard_count)
            .flat_map(|shard_idx| {
                (0..config.workers.max(1)).map({
                    let inner = &inner;
                    move |w| {
                        let inner = inner.clone();
                        std::thread::Builder::new()
                            .name(format!("octant-serve-{shard_idx}-{w}"))
                            .spawn(move || {
                                while let Some(batch) = inner.next_batch(shard_idx) {
                                    inner.serve_batch(shard_idx, batch);
                                }
                            })
                            .expect("spawning a service worker thread")
                    }
                })
            })
            .collect();
        ShardedService { inner, workers }
    }

    /// Enqueues `targets` for localization and returns a handle to wait on.
    /// Targets from concurrent requests coalesce into shared micro-batches
    /// on their shard.
    pub fn submit(&self, targets: &[NodeId]) -> RequestHandle {
        self.enqueue(targets, None, None)
    }

    /// [`ShardedService::submit`] with per-request options: evidence
    /// selection (the request's targets run on the base pipeline adjusted
    /// by `options`; targets from requests with identical evidence
    /// selections still coalesce into shared engine runs) and/or a
    /// deadline. Slots of targets shed at admission resolve immediately.
    pub fn submit_with_options(
        &self,
        targets: &[NodeId],
        options: LocalizeOptions,
    ) -> RequestHandle {
        let deadline = options.deadline;
        // Profiled requests always carry their options: profiling is part
        // of the batch-group key, so they never coalesce into (and never
        // slow down) the default-path groups.
        let evidence = if options.evidence_is_default() && !options.profiling {
            None
        } else {
            Some(Arc::new(options.evidence()))
        };
        self.enqueue(targets, evidence, deadline)
    }

    fn enqueue(
        &self,
        targets: &[NodeId],
        options: Option<Arc<LocalizeOptions>>,
        deadline: Option<Duration>,
    ) -> RequestHandle {
        let state = Arc::new(RequestState {
            slots: Mutex::new((targets.len(), vec![None; targets.len()])),
            done: Condvar::new(),
        });
        if targets.is_empty() {
            return RequestHandle { state };
        }
        // Route each slot to its shard (deterministic by target prefix),
        // preserving submission order within each shard.
        let mut by_shard: Vec<(usize, Vec<(usize, NodeId)>)> = Vec::new();
        for (slot, &target) in targets.iter().enumerate() {
            let shard = self.inner.router.shard_for(target);
            match by_shard.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, slots)) => slots.push((slot, target)),
                None => by_shard.push((shard, vec![(slot, target)])),
            }
        }
        // One admission instant per request: the deadline arithmetic, the
        // queue-wait clock, and the shed decisions below all read this
        // single timestamp, so a served request's reported queue_wait can
        // never exceed its deadline budget (served ⇒ drained before
        // `admitted + budget` ⇒ drain − admitted < budget).
        let admitted = Instant::now();
        let deadline = deadline.map(|d| admitted + d);
        let cap = self.inner.config.shard.queue_capacity;
        for (shard_idx, slots) in by_shard {
            let shard = &self.inner.shards[shard_idx];
            let mut shed: Vec<usize> = Vec::new();
            {
                let mut queue = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
                for (slot, target) in slots {
                    // Admission control: a full bounded queue sheds the
                    // target instead of growing latency past any SLO.
                    if cap > 0 && queue.pending.len() >= cap {
                        shed.push(slot);
                        continue;
                    }
                    queue.pending.push_back(PendingTarget {
                        target,
                        request: state.clone(),
                        slot,
                        options: options.clone(),
                        deadline,
                        enqueued_at: admitted,
                    });
                    if queue.oldest_since.is_none() {
                        queue.oldest_since = Some(admitted);
                    }
                }
                shard.metrics.queue_depth.set(queue.pending.len() as i64);
            }
            self.inner.shards[shard_idx].queue_cv.notify_all();
            if !shed.is_empty() {
                shard.local.lock().counters.shed_queue_full += shed.len() as u64;
                shard.metrics.shed_queue_full.add(shed.len() as u64);
                for slot in shed {
                    state.complete(
                        slot,
                        ServeOutcome::Shed {
                            reason: ShedReason::QueueFull,
                        },
                    );
                }
            }
        }
        RequestHandle { state }
    }

    /// Convenience: [`ShardedService::submit`] + [`RequestHandle::wait`].
    pub fn localize_blocking(&self, targets: &[NodeId]) -> Vec<ServedEstimate> {
        self.submit(targets).wait()
    }

    /// Convenience: [`ShardedService::submit_with_options`] +
    /// [`RequestHandle::wait_outcomes`].
    pub fn localize_blocking_with_options(
        &self,
        targets: &[NodeId],
        options: LocalizeOptions,
    ) -> Vec<ServeOutcome> {
        self.submit_with_options(targets, options).wait_outcomes()
    }

    /// Prepares a fresh model from `landmarks`, makes it the current epoch
    /// without interrupting in-flight batches, and retires cache entries
    /// older than the configured retention window. Returns the new epoch.
    pub fn refresh_model(&self, landmarks: &[NodeId]) -> u64 {
        let epoch = self.inner.registry.refresh(&self.inner.provider, landmarks);
        self.retire_caches(epoch);
        epoch
    }

    /// Registers a caller-prepared model as the new current epoch and runs
    /// the same cache retirement as [`ShardedService::refresh_model`] — the
    /// serving end of an incremental-recalibration loop, where a refresh
    /// task prepares the model with
    /// [`octant::Octant::prepare_landmarks_incremental`] and hands it over.
    /// The model must come from an [`Octant`] configured identically to the
    /// service's.
    pub fn register_model(&self, model: LandmarkModel, landmarks: Vec<NodeId>) -> u64 {
        let epoch = self.inner.registry.register(model, landmarks);
        self.retire_caches(epoch);
        epoch
    }

    /// The refresh-under-fire path: delta-recalibrates the *current* epoch's
    /// model against `landmarks`, re-probing only the calibration state
    /// touched by `changed` nodes (a roster change — a landmark appearing,
    /// vanishing, or moving — falls back to a full rebuild), then registers
    /// the result as the new epoch and retires stale cache entries. Batches
    /// already in flight keep serving from their own epoch snapshot for
    /// their whole lifetime, so no request ever observes a half-swapped
    /// model. Returns the new epoch and the recalibration cost breakdown.
    pub fn refresh_model_incremental(
        &self,
        landmarks: &[NodeId],
        changed: &[NodeId],
    ) -> (u64, RecalibrationReport) {
        let previous = self.inner.registry.current();
        let (model, report) = self.inner.registry.octant().prepare_landmarks_incremental(
            &self.inner.provider,
            landmarks,
            &previous.model,
            changed,
        );
        let epoch = self.register_model(model, landmarks.to_vec());
        (epoch, report)
    }

    /// Epoch retirement shared by refresh and registration: both the router
    /// cache (behind the pipeline) and the answer memo (in front of it)
    /// drop epochs outside their retention windows. The epoch bump alone
    /// already *invalidates* stale answers — epoch leads every key — so
    /// retirement is about reclaiming memory promptly, not correctness.
    fn retire_caches(&self, epoch: u64) {
        let keep = self.inner.config.cache.keep_epochs.max(1);
        self.inner
            .cache
            .retire_epochs_before(epoch.saturating_sub(keep - 1));
        let keep_answers = self.inner.config.answers.keep_epochs.max(1);
        self.inner
            .answers
            .retire_epochs_before(epoch.saturating_sub(keep_answers - 1));
    }

    /// The current model epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.registry.epoch()
    }

    /// The shard serving `target` — the control plane's routing decision,
    /// deterministic within (and across) epochs.
    pub fn shard_for(&self, target: NodeId) -> usize {
        self.inner.router.shard_for(target)
    }

    /// Number of data-plane shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shared router sub-localization cache (sliced by router id;
    /// counters, eviction).
    pub fn cache(&self) -> &ShardedRouterCache {
        &self.inner.cache
    }

    /// The per-target-prefix answer memo (counters, eviction).
    pub fn answer_cache(&self) -> &AnswerCache {
        &self.inner.answers
    }

    /// Aggregate answer-memo counters. Shorthand for
    /// `self.answer_cache().stats()`.
    pub fn answer_cache_stats(&self) -> AnswerCacheStats {
        self.inner.answers.stats()
    }

    /// The model registry (snapshots, external registration).
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner.registry
    }

    /// The aggregate statistics snapshot: counters summed over shards,
    /// per-shard queue gauges, merged latency quantiles.
    pub fn stats(&self) -> ServiceStats {
        let mut counters = ServiceCounters::default();
        let mut latency = LatencyHistogram::new();
        let mut queues = Vec::with_capacity(self.inner.shards.len());
        for (i, shard) in self.inner.shards.iter().enumerate() {
            {
                let local = shard.local.lock();
                counters.absorb(&local.counters);
                latency.merge(&local.latency);
            }
            queues.push(QueueSnapshot {
                shard: i,
                depth: shard
                    .queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pending
                    .len(),
            });
        }
        ServiceStats {
            epoch: self.inner.registry.epoch(),
            counters,
            queues,
            latency: latency.summary(),
            cache: self.inner.cache.stats(),
            answers: self.inner.answers.stats(),
        }
    }

    /// Per-shard statistics, in shard order: each shard's own counters,
    /// queue gauge, and latency quantiles.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let (counters, latency) = {
                    let local = shard.local.lock();
                    (local.counters, local.latency.summary())
                };
                ShardStats {
                    shard: i,
                    counters,
                    queue: QueueSnapshot {
                        shard: i,
                        depth: shard
                            .queue
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .pending
                            .len(),
                    },
                    latency,
                }
            })
            .collect()
    }

    /// Aggregate router-cache counters (summed over slices). Shorthand for
    /// `self.cache().stats()`.
    pub fn cache_stats(&self) -> RouterCacheStats {
        self.inner.cache.stats()
    }

    /// The full observability export: [`ShardedService::stats`] plus the
    /// per-stage wall-time breakdown merged over every shard and a snapshot
    /// of [`MetricsRegistry::global`]. Render with [`StatsReport::to_json`]
    /// (machine-readable, consumed by the bench bins' `stage_breakdown`
    /// section) or via `Display` (a TWIAD-style text table).
    pub fn stats_report(&self) -> StatsReport {
        let mut stages: Vec<(&'static str, LatencyHistogram)> = Vec::new();
        for shard in &self.inner.shards {
            let local = shard.local.lock();
            for (name, hist) in &local.stages {
                match stages.iter_mut().find(|(n, _)| n == name) {
                    Some((_, merged)) => merged.merge(hist),
                    None => stages.push((name, hist.clone())),
                }
            }
        }
        StatsReport {
            stats: self.stats(),
            stage_breakdown: stages
                .into_iter()
                .map(|(name, hist)| StageBreakdown {
                    name,
                    count: hist.count(),
                    total: hist.total(),
                    latency: hist.summary(),
                })
                .collect(),
            registry: MetricsRegistry::global().snapshot(),
        }
    }

    /// Drains every shard's queue, stops the workers, and joins them.
    /// Pending requests are served before the workers exit (expired
    /// deadlines are still shed, never solved).
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        for shard in &self.inner.shards {
            {
                let mut queue = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
                queue.shutdown = true;
            }
            shard.queue_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<P: ObservationProvider + Send + Sync + 'static> Drop for ShardedService<P> {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dataset;
    use octant::{Geolocator, RouterLocalization};
    use octant_netsim::observation::{HostDescriptor, PingObservation, TracerouteHop};
    use octant_netsim::MeasurementDataset;

    #[test]
    fn serves_submitted_targets_in_order() {
        let ds = dataset(10, 7).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let service = GeolocationService::start(ServiceConfig::default(), ds.clone(), landmarks);
        let served = service.localize_blocking(targets);
        assert_eq!(served.len(), targets.len());
        for (&target, s) in targets.iter().zip(&served) {
            assert_eq!(s.target, target);
            assert_eq!(s.epoch, 1);
            assert!(s.estimate.point.is_some());
        }
        let stats = service.stats();
        assert_eq!(stats.counters.targets_served, targets.len() as u64);
        assert!(stats.counters.batches >= 1);
        assert_eq!(stats.counters.shed(), 0);
        assert_eq!(stats.shed_rate(), 0.0);
        // Every served target left a latency observation.
        assert_eq!(stats.latency.count, targets.len() as u64);
        assert!(stats.latency.p50 <= stats.latency.p999);
        service.shutdown();
    }

    #[test]
    fn served_estimates_match_the_offline_batch_engine() {
        let ds = dataset(10, 13).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let service = GeolocationService::start(ServiceConfig::default(), ds.clone(), landmarks);
        let served = service.localize_blocking(targets);
        let octant = Octant::new(OctantConfig::default());
        for s in &served {
            let direct = octant.localize(ds.as_ref(), landmarks, s.target);
            assert_eq!(s.estimate.point, direct.point);
            assert_eq!(s.estimate.report, direct.report);
        }
        service.shutdown();
    }

    #[test]
    fn multi_shard_serving_is_bit_identical_to_one_shard() {
        let ds = dataset(12, 13).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(8);

        let one = ShardedService::start(ServiceConfig::default(), ds.clone(), landmarks);
        let single = one.localize_blocking(targets);
        one.shutdown();

        let sharded = ShardedService::start(
            ServiceConfig::default().with_shards(3),
            ds.clone(),
            landmarks,
        );
        assert_eq!(sharded.shard_count(), 3);
        let multi = sharded.localize_blocking(targets);
        for (a, b) in single.iter().zip(&multi) {
            assert_eq!(a.target, b.target, "submission order is preserved");
            assert_eq!(a.estimate.point, b.estimate.point);
            assert_eq!(a.estimate.report, b.estimate.report);
        }
        // Counters aggregate across shards; gauges stay per shard.
        let stats = sharded.stats();
        assert_eq!(stats.counters.targets_served, targets.len() as u64);
        assert_eq!(stats.queues.len(), 3);
        assert_eq!(stats.queue_depth_total(), 0);
        let per_shard = sharded.shard_stats();
        assert_eq!(per_shard.len(), 3);
        let summed: u64 = per_shard.iter().map(|s| s.counters.targets_served).sum();
        assert_eq!(summed, stats.counters.targets_served);
        sharded.shutdown();
    }

    #[test]
    fn shard_routing_is_deterministic_across_calls() {
        let ds = dataset(12, 19).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(8);
        let service = ShardedService::start(ServiceConfig::default().with_shards(4), ds, landmarks);
        let first: Vec<usize> = targets.iter().map(|&t| service.shard_for(t)).collect();
        // Serving traffic does not perturb routing.
        service.localize_blocking(targets);
        let second: Vec<usize> = targets.iter().map(|&t| service.shard_for(t)).collect();
        assert_eq!(first, second);
        // Routing survives an epoch refresh (the table is static provider
        // state, not per-epoch state).
        service.refresh_model(landmarks);
        let third: Vec<usize> = targets.iter().map(|&t| service.shard_for(t)).collect();
        assert_eq!(first, third);
        service.shutdown();
    }

    #[test]
    fn expired_deadlines_are_shed_and_never_solved() {
        let ds = dataset(10, 23).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        // A huge batching floor + long max_wait parks submissions in the
        // queue long enough for a zero deadline to be expired at drain.
        let service = ShardedService::start(
            ServiceConfig::default()
                .with_min_batch(1000)
                .with_max_wait(Duration::from_millis(200)),
            ds,
            landmarks,
        );
        let outcomes = service.localize_blocking_with_options(
            &targets[..2],
            LocalizeOptions::default().with_deadline(Duration::ZERO),
        );
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(
                matches!(o, ServeOutcome::DeadlineExceeded),
                "zero-deadline target must expire in queue, got {o:?}"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.counters.deadline_expired, 2);
        assert_eq!(
            stats.counters.targets_served, 0,
            "expired targets are never solved"
        );
        assert_eq!(
            stats.latency.count, 0,
            "expired targets leave no latency observation"
        );
        assert!(stats.shed_rate() > 0.99);

        // A deadline that cannot expire serves normally.
        let ok = service.localize_blocking_with_options(
            &targets[..1],
            LocalizeOptions::default().with_deadline(Duration::from_secs(3600)),
        );
        assert!(ok[0].is_served());
        service.shutdown();
    }

    #[test]
    fn full_bounded_queue_sheds_at_admission() {
        let ds = dataset(10, 29).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        // Workers wait for a 1000-target batch for up to 10 s, so the queue
        // cannot drain between the two submissions below.
        let service = ShardedService::start(
            ServiceConfig::default()
                .with_min_batch(1000)
                .with_max_wait(Duration::from_secs(10))
                .with_shard(ShardConfig::default().with_queue_capacity(2)),
            ds,
            landmarks,
        );
        // 3 targets into a capacity-2 queue: the third is shed immediately,
        // without blocking, while the first two sit in the parked queue.
        let handle = service.submit(&targets[..3]);
        let stats = service.stats();
        assert_eq!(stats.counters.shed_queue_full, 1);
        assert_eq!(stats.queue_depth_total(), 2);
        // Shutdown drains the queue, serving the two admitted targets; only
        // then does the handle resolve fully.
        service.shutdown();
        let outcomes = handle.wait_outcomes();
        assert!(outcomes[0].is_served(), "admitted slot is served on drain");
        assert!(outcomes[1].is_served(), "admitted slot is served on drain");
        assert!(
            matches!(
                outcomes[2],
                ServeOutcome::Shed {
                    reason: ShedReason::QueueFull
                }
            ),
            "the overflow slot reports the queue-full reason, got {:?}",
            outcomes[2]
        );
    }

    #[test]
    fn empty_request_completes_immediately() {
        let ds = dataset(8, 3).into_shared();
        let hosts = ds.host_ids();
        let service = GeolocationService::start(ServiceConfig::default(), ds, &hosts[..6]);
        let handle = service.submit(&[]);
        assert!(handle.is_done());
        assert!(handle.wait().is_empty());
        service.shutdown();
    }

    #[test]
    fn concurrent_requests_all_complete() {
        let ds = dataset(12, 17).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(8);
        let service = Arc::new(GeolocationService::start(
            ServiceConfig::default().with_workers(3).with_min_batch(2),
            ds,
            landmarks,
        ));
        std::thread::scope(|scope| {
            for i in 0..6 {
                let service = &service;
                let targets = &targets;
                scope.spawn(move || {
                    let pick = [targets[i % targets.len()], targets[(i + 1) % targets.len()]];
                    let served = service.localize_blocking(&pick);
                    assert_eq!(served.len(), 2);
                    assert_eq!(served[0].target, pick[0]);
                    assert_eq!(served[1].target, pick[1]);
                });
            }
        });
        assert_eq!(service.stats().counters.targets_served, 12);
    }

    #[test]
    fn per_request_options_select_sources_without_disturbing_others() {
        let ds = dataset(10, 19).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let service = GeolocationService::start(ServiceConfig::default(), ds.clone(), landmarks);

        // Baseline request on the default pipeline.
        let base = service.localize_blocking(&targets[..2]);
        // Same targets with the router + hint sources disabled.
        let ablated: Vec<ServedEstimate> = service
            .localize_blocking_with_options(
                &targets[..2],
                LocalizeOptions::default()
                    .without_source(SourceId::Router)
                    .without_source(SourceId::Hint),
            )
            .into_iter()
            .map(|o| o.into_served().expect("no deadline, no bound: served"))
            .collect();
        for (b, a) in base.iter().zip(&ablated) {
            assert_eq!(b.target, a.target);
            assert!(a.estimate.point.is_some());
            // The ablated run's provenance shows the disabled sources.
            let prov = &a.estimate.provenance;
            assert!(!prov.source(SourceId::Router).unwrap().enabled);
            assert!(!prov.source(SourceId::Hint).unwrap().enabled);
            assert_eq!(prov.source(SourceId::Router).unwrap().emitted(), 0);
            assert!(prov.source(SourceId::Latency).unwrap().enabled);
            assert!(
                b.estimate
                    .provenance
                    .source(SourceId::Router)
                    .unwrap()
                    .enabled
            );
        }

        // A repeat default-pipeline request is unaffected by the ablation.
        let again = service.localize_blocking(&targets[..2]);
        for (b, a) in base.iter().zip(&again) {
            assert_eq!(b.estimate.point, a.estimate.point);
        }

        // Empty options behave exactly like plain submit.
        let plain =
            service.localize_blocking_with_options(&targets[..1], LocalizeOptions::default());
        assert_eq!(
            plain[0].served().unwrap().estimate.point,
            base[0].estimate.point
        );
        // A deadline alone neither blocks coalescing nor changes answers.
        let with_deadline = service.localize_blocking_with_options(
            &targets[..1],
            LocalizeOptions::default().with_deadline(Duration::from_secs(3600)),
        );
        assert_eq!(
            with_deadline[0].served().unwrap().estimate.point,
            base[0].estimate.point
        );
        service.shutdown();
    }

    #[test]
    fn refresh_mid_stream_bumps_epoch_without_breaking_requests() {
        let ds = dataset(10, 23).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let service = GeolocationService::start(ServiceConfig::default(), ds, landmarks);
        let first = service.localize_blocking(&targets[..1]);
        assert_eq!(first[0].epoch, 1);
        let epoch = service.refresh_model(landmarks);
        assert_eq!(epoch, 2);
        let second = service.localize_blocking(&targets[..1]);
        assert_eq!(second[0].epoch, 2);
        // Same landmarks, replay-stable provider → identical estimates
        // across epochs.
        assert_eq!(first[0].estimate.point, second[0].estimate.point);
        service.shutdown();
    }

    #[test]
    fn incremental_refresh_reuses_unchanged_calibration() {
        let ds = dataset(10, 31).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let service = GeolocationService::start(ServiceConfig::default(), ds.clone(), landmarks);
        let first = service.localize_blocking(&targets[..1]);
        // Nothing changed: wholesale reuse, no rebuild, epoch still bumps.
        let (epoch, report) = service.refresh_model_incremental(landmarks, &[]);
        assert_eq!(epoch, 2);
        assert!(!report.full_rebuild);
        assert_eq!(report.changed_pairs, 0);
        let second = service.localize_blocking(&targets[..1]);
        assert_eq!(second[0].epoch, 2);
        assert_eq!(first[0].estimate.point, second[0].estimate.point);
        // A changed landmark refreshes its pairs and reuses the rest.
        let (epoch, report) = service.refresh_model_incremental(landmarks, &landmarks[..1]);
        assert_eq!(epoch, 3);
        assert!(!report.full_rebuild);
        assert!(report.refreshed_pairs > 0);
        assert!(report.reused_pairs > 0);
        // Replay-stable provider → re-probing changes nothing downstream.
        let third = service.localize_blocking(&targets[..1]);
        assert_eq!(first[0].estimate.point, third[0].estimate.point);
        service.shutdown();
    }

    #[test]
    fn recursive_mode_fills_the_router_cache() {
        let ds = dataset(8, 29).into_shared();
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(6);
        let service = GeolocationService::start(
            ServiceConfig::default().with_octant(
                OctantConfig::default()
                    .with_router_localization(RouterLocalization::Recursive)
                    .with_max_router_constraints(3),
            ),
            ds,
            landmarks,
        );
        let served = service.localize_blocking(targets);
        assert_eq!(served.len(), targets.len());
        let stats = service.stats();
        assert!(
            stats.cache.misses > 0,
            "recursive solves must fill the cache"
        );
        assert_eq!(
            stats.cache.misses,
            service.cache().sub_localizations(),
            "misses count the sub-localizations"
        );
        // Serving the same targets again is answered entirely from cache.
        let before = service.cache().sub_localizations();
        service.localize_blocking(targets);
        assert_eq!(service.cache().sub_localizations(), before);
        service.shutdown();
    }

    /// Wraps a dataset and panics on any ping involving one poisoned node.
    struct PoisonedProvider {
        inner: MeasurementDataset,
        poison: octant_netsim::topology::NodeId,
    }

    impl ObservationProvider for PoisonedProvider {
        fn hosts(&self) -> Vec<HostDescriptor> {
            self.inner.hosts()
        }
        fn ping(
            &self,
            from: octant_netsim::topology::NodeId,
            to: octant_netsim::topology::NodeId,
        ) -> PingObservation {
            assert!(
                from != self.poison && to != self.poison,
                "simulated measurement failure"
            );
            self.inner.ping(from, to)
        }
        fn traceroute(
            &self,
            from: octant_netsim::topology::NodeId,
            to: octant_netsim::topology::NodeId,
        ) -> Vec<TracerouteHop> {
            self.inner.traceroute(from, to)
        }
        fn node_by_ip(&self, ip: [u8; 4]) -> Option<octant_netsim::topology::NodeId> {
            self.inner.node_by_ip(ip)
        }
        fn reverse_dns(&self, ip: [u8; 4]) -> Option<String> {
            self.inner.reverse_dns(ip)
        }
        fn whois_city(&self, ip: [u8; 4]) -> Option<String> {
            self.inner.whois_city(ip)
        }
        fn advertised_location(
            &self,
            id: octant_netsim::topology::NodeId,
        ) -> Option<octant_geo::GeoPoint> {
            self.inner.advertised_location(id)
        }
    }

    #[test]
    fn panicking_solve_answers_unknown_instead_of_hanging() {
        let ds = dataset(10, 31);
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let poison = targets[0];
        let provider = std::sync::Arc::new(PoisonedProvider { inner: ds, poison });
        let service = GeolocationService::start(
            ServiceConfig::default().with_workers(1),
            provider,
            landmarks,
        );
        // The poisoned target's batch must complete (with unknown results),
        // not hang the caller or kill the worker.
        let served = service.localize_blocking(&[poison]);
        assert_eq!(served.len(), 1);
        assert!(served[0].estimate.point.is_none());
        assert!(service.stats().counters.failed_batches >= 1);
        // The single worker survived and keeps serving healthy targets.
        let healthy = service.localize_blocking(&targets[1..2]);
        assert!(healthy[0].estimate.point.is_some());
        service.shutdown();
    }
}
