//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) data
//! parallelism crate.
//!
//! The build environment has no registry access, so this crate implements
//! the slice → `par_iter().map(..).collect()` pipeline the workspace uses on
//! top of `std::thread::scope`: the input slice is split into one contiguous
//! chunk per available core, each chunk is mapped on its own OS thread, and
//! the per-chunk outputs are concatenated in order, so results are
//! positionally identical to a sequential `iter().map().collect()`.
//!
//! Unlike real rayon there is no work-stealing pool — threads are spawned
//! per call — so this is only appropriate for coarse-grained work items
//! (like localizing one geolocation target, milliseconds each). That is
//! exactly the granularity `octant::batch` feeds it. `map_init` mirrors
//! rayon's: worker-local state is created once per worker and reused across
//! that worker's items, which is what makes per-thread scratch buffers
//! allocation-free in the batch engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Conversion of `&collection` into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter;

    /// Returns a parallel iterator over references to the elements.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps every element through `f`, preserving order.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, R, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
            _out: PhantomData,
        }
    }

    /// Maps with worker-local state: `init` runs once per worker thread and
    /// the resulting state is threaded through every item that worker
    /// processes (rayon's `map_init`).
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'data, T, S, R, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'data T) -> R + Sync,
    {
        ParMapInit {
            slice: self.slice,
            init,
            f,
            _out: PhantomData,
        }
    }

    /// Accepted for rayon API compatibility; chunking is already one
    /// contiguous block per core, so there is nothing to tune.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'data, T, R, F> {
    slice: &'data [T],
    f: F,
    _out: PhantomData<fn() -> R>,
}

impl<'data, T, R, F> ParMap<'data, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let f = self.f;
        C::from(run_in_chunks(self.slice, || (), move |(), item| f(item)))
    }
}

/// Result of [`ParIter::map_init`].
pub struct ParMapInit<'data, T, S, R, INIT, F> {
    slice: &'data [T],
    init: INIT,
    f: F,
    _out: PhantomData<fn() -> (S, R)>,
}

impl<'data, T, S, R, INIT, F> ParMapInit<'data, T, S, R, INIT, F>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'data T) -> R + Sync,
{
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(run_in_chunks(self.slice, self.init, self.f))
    }
}

/// Splits `items` into one contiguous chunk per worker, runs each chunk on
/// its own scoped thread with worker-local state from `init`, and
/// concatenates the outputs in order.
fn run_in_chunks<'data, T, S, R, INIT, F>(items: &'data [T], init: INIT, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'data T) -> R + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let init = &init;
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut state = init();
                    chunk
                        .iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            // Re-raise a worker's panic with its original payload (as real
            // rayon does) so the actual failure reaches the caller's logs.
            match handle.join() {
                Ok(chunk_out) => out.extend(chunk_out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_worker_state() {
        let input: Vec<u32> = (0..100).collect();
        // Each worker counts how many items it has already processed; with
        // chunked scheduling the per-item counter values within a chunk are
        // strictly increasing, proving state is reused, not re-created.
        let counts: Vec<u32> = input
            .par_iter()
            .map_init(
                || 0u32,
                |seen, _| {
                    let c = *seen;
                    *seen += 1;
                    c
                },
            )
            .collect();
        assert_eq!(counts.len(), 100);
        assert_eq!(counts[0], 0);
        let total_chunk_starts = counts.iter().filter(|&&c| c == 0).count();
        assert!(total_chunk_starts <= super::current_num_threads());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
