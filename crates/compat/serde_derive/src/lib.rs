//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many types purely to
//! keep them serialization-ready; nothing in the tree serializes bytes yet
//! (there is no `serde_json`/`bincode` consumer). Until registry access is
//! available these derives expand to nothing — they exist so the seed
//! sources compile unchanged, including their `#[serde(...)]` field
//! attributes.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helper attributes)
/// and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helper attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
