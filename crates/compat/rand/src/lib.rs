//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the (small) slice of the rand 0.8 API the
//! workspace actually uses, behind the same paths and names:
//!
//! * [`Rng`] with `gen`, `gen_bool` and `gen_range` over integer and float
//!   ranges (half-open and inclusive),
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!   (not ChaCha12 like the real crate, but deterministic and of good
//!   statistical quality),
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! Everything is deterministic given the seed; nothing reads OS entropy.
//! When registry access becomes available, swapping the path dependency for
//! the real crate only changes the concrete random streams, not any API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 32/64-bit words, the base trait of every generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample from empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo <= hi, "cannot sample from empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo <= hi, "cannot sample from empty range");
        lo + (unit_f64(rng) as f32) * (hi - lo)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of the real
/// crate, for the types the workspace draws).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type (`rng.gen::<f64>()` is
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// Draws uniformly from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// (The real rand 0.8 `StdRng` is ChaCha12; the streams differ but every
    /// consumer in this workspace only relies on determinism and uniformity.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = Self::splitmix64(&mut sm);
            }
            // All-zero state would trap xoshiro in the zero cycle.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for drop-in compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// Random slice operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly picks one element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: f64 = StdRng::seed_from_u64(42).gen();
        assert_ne!(first, c.gen::<f64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(1..=6);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "p=0.25 produced {hits}/100000"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle leaving order intact is vanishingly unlikely"
        );
    }

    #[test]
    fn trait_object_rng_works() {
        let mut rng = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let v = dyn_rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}
