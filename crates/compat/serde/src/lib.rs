//! Offline stand-in for the [`serde`](https://serde.rs) facade.
//!
//! Provides the `Serialize`/`Deserialize` trait names and the derive macros
//! under their usual paths so the workspace's `#[derive(Serialize,
//! Deserialize)]` annotations compile without registry access. No actual
//! serialization machinery exists yet — no consumer in the tree serializes
//! bytes. When real serde becomes available the path dependency swap is
//! API-compatible for everything the workspace uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
