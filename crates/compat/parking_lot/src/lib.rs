//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). Performance characteristics are
//! std's, which is fine for the workspace's uncontended caches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error (parking_lot API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning like parking_lot does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
