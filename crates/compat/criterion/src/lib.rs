//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this crate provides the
//! criterion 0.5 surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple but real
//! wall-clock measurement loop: per sample, the routine is run enough
//! iterations to fill a minimum sample window, and the reported figure is
//! the fastest per-iteration time over `sample_size` samples (minimum-of-N
//! is robust to scheduler noise in the same spirit as criterion's analysis).
//!
//! Two environment knobs keep CI cheap:
//! * `OCTANT_BENCH_FAST=1` — one sample, one iteration: a smoke run that
//!   only proves the bench executes.
//! * `RAYON_NUM_THREADS` is respected by the code under test, not by this
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fast_mode() -> bool {
    std::env::var("OCTANT_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Timing state handed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Best observed per-iteration time, populated by [`Bencher::iter`].
    best_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine`: runs `sample_size` samples, each long enough to
    /// be timeable, and records the fastest observed per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if fast_mode() {
            let start = Instant::now();
            black_box(routine());
            self.best_ns = Some(start.elapsed().as_nanos() as f64);
            return;
        }
        // Warm up and size the sample so each one is at least ~5 ms.
        let warm_start = Instant::now();
        black_box(routine());
        let per_iter = warm_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as usize;

        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns = Some(best);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        best_ns: None,
    };
    f(&mut bencher);
    match bencher.best_ns {
        Some(ns) => println!("{name:<50} time: [{}]", format_ns(ns)),
        None => println!("{name:<50} time: [not measured]"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: if fast_mode() { 1 } else { 10 },
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark (builder-style, used
    /// from `criterion_group!` configs).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named benchmark parameterization (`group/function/param`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Builds an id from a displayable parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = if id.function.is_empty() {
            format!("{}/{}", self.name, id.parameter)
        } else {
            format!("{}/{}/{}", self.name, id.function, id.parameter)
        };
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; criterion renders summaries).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's two macro
/// forms (positional targets, or `name = ...; config = ...; targets = ...`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u64;
        c.bench_function("selftest/noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0, "the routine must actually run");
    }

    #[test]
    fn group_and_id_render() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        let id = BenchmarkId::from_parameter(5);
        assert_eq!(id.parameter, "5");
    }
}
