//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(..)]` header, `Strategy` for
//! float/integer ranges and tuples, `.prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Cases are generated from a fixed-seed deterministic RNG (same inputs on
//! every run and every machine). Failing cases are reported with their case
//! index and message but are **not shrunk** — acceptable for CI gating,
//! where determinism matters more than minimal counterexamples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Error type produced by `prop_assert!` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `Just`-style constant strategy, handy when a property needs a fixed input.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Everything a `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Drives the generated cases for one property (used by `proptest!`).
pub fn run_property<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;
    // Per-test deterministic seed derived from the test name (FNV-1a).
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(case) << 32));
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest case {case}/{} for `{test_name}` failed: {}",
                config.cases,
                e.message()
            );
        }
    }
}

/// Property-test declaration macro, mirroring proptest's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, y in 0u32..10) { prop_assert!(x >= 0.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        #[test]
        fn $name() {
            let config = $config;
            let strategies = ($($strategy,)+);
            $crate::run_property(&config, stringify!($name), |rng| {
                let ($($arg,)+) = $crate::Strategy::generate(&strategies, rng);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property body, reporting the failing case
/// instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_block_works(x in 0u8..255) {
            prop_assert!(x < 255);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_case_info() {
        crate::run_property(
            &ProptestConfig {
                cases: 3,
                ..ProptestConfig::default()
            },
            "always_fails",
            |_rng| Err(crate::TestCaseError::fail("nope".into())),
        );
    }
}
