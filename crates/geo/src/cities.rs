//! A built-in database of world cities.
//!
//! The network simulator places routers and hosts at real city coordinates,
//! the `undns`-style router-name parser resolves city codes back to
//! coordinates, and the WHOIS simulation records city-level registrations.
//! All of that is driven by this table. Coordinates are city-centre values
//! rounded to two decimals (≈1 km), which is far finer than the resolution
//! Octant can achieve from latency alone.

use crate::point::GeoPoint;
use serde::Serialize;

/// A city record: name, IATA-style short code, country, coordinates and an
/// approximate metropolitan population (used to weight random host
/// placement toward population centres).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct City {
    /// Human-readable city name, e.g. `"New York"`.
    pub name: &'static str,
    /// Three-letter code used in synthetic router DNS names, e.g. `"nyc"`.
    pub code: &'static str,
    /// ISO-ish two letter country code.
    pub country: &'static str,
    /// City-centre latitude in degrees.
    pub lat: f64,
    /// City-centre longitude in degrees.
    pub lon: f64,
    /// Approximate metro population, in thousands.
    pub population_k: u32,
}

impl City {
    /// The city centre as a [`GeoPoint`].
    pub fn location(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }
}

macro_rules! city {
    ($name:literal, $code:literal, $country:literal, $lat:literal, $lon:literal, $pop:literal) => {
        City {
            name: $name,
            code: $code,
            country: $country,
            lat: $lat,
            lon: $lon,
            population_k: $pop,
        }
    };
}

/// The full built-in city table (world-wide, biased toward North America and
/// Europe to mirror the 2007 PlanetLab footprint the paper measured).
pub const CITIES: &[City] = &[
    // --- United States ---
    city!("New York", "nyc", "us", 40.71, -74.01, 19500),
    city!("Los Angeles", "lax", "us", 34.05, -118.24, 12800),
    city!("Chicago", "chi", "us", 41.88, -87.63, 9500),
    city!("Houston", "hou", "us", 29.76, -95.37, 6900),
    city!("Phoenix", "phx", "us", 33.45, -112.07, 4800),
    city!("Philadelphia", "phl", "us", 39.95, -75.17, 6100),
    city!("San Antonio", "sat", "us", 29.42, -98.49, 2500),
    city!("San Diego", "san", "us", 32.72, -117.16, 3300),
    city!("Dallas", "dfw", "us", 32.78, -96.80, 7500),
    city!("San Jose", "sjc", "us", 37.34, -121.89, 2000),
    city!("Austin", "aus", "us", 30.27, -97.74, 2200),
    city!("Seattle", "sea", "us", 47.61, -122.33, 4000),
    city!("Denver", "den", "us", 39.74, -104.99, 2900),
    city!("Washington", "was", "us", 38.91, -77.04, 6300),
    city!("Boston", "bos", "us", 42.36, -71.06, 4900),
    city!("Atlanta", "atl", "us", 33.75, -84.39, 6000),
    city!("Miami", "mia", "us", 25.76, -80.19, 6100),
    city!("Minneapolis", "msp", "us", 44.98, -93.27, 3700),
    city!("Detroit", "dtw", "us", 42.33, -83.05, 4300),
    city!("St. Louis", "stl", "us", 38.63, -90.20, 2800),
    city!("Pittsburgh", "pit", "us", 40.44, -79.99, 2300),
    city!("Salt Lake City", "slc", "us", 40.76, -111.89, 1200),
    city!("Portland", "pdx", "us", 45.52, -122.68, 2500),
    city!("San Francisco", "sfo", "us", 37.77, -122.42, 4700),
    city!("Sacramento", "smf", "us", 38.58, -121.49, 2400),
    city!("Kansas City", "mci", "us", 39.10, -94.58, 2200),
    city!("Indianapolis", "ind", "us", 39.77, -86.16, 2100),
    city!("Columbus", "cmh", "us", 39.96, -82.99, 2100),
    city!("Cleveland", "cle", "us", 41.50, -81.69, 2100),
    city!("Nashville", "bna", "us", 36.16, -86.78, 2000),
    city!("Charlotte", "clt", "us", 35.23, -80.84, 2700),
    city!("Raleigh", "rdu", "us", 35.78, -78.64, 1400),
    city!("New Orleans", "msy", "us", 29.95, -90.07, 1300),
    city!("Las Vegas", "las", "us", 36.17, -115.14, 2300),
    city!("Albuquerque", "abq", "us", 35.08, -106.65, 920),
    city!("Tucson", "tus", "us", 32.22, -110.97, 1000),
    city!("Ithaca", "ith", "us", 42.44, -76.50, 105),
    city!("Rochester", "roc", "us", 43.16, -77.61, 1080),
    city!("Buffalo", "buf", "us", 42.89, -78.88, 1160),
    city!("Syracuse", "syr", "us", 43.05, -76.15, 660),
    city!("Princeton", "pct", "us", 40.36, -74.66, 31),
    city!("Ann Arbor", "arb", "us", 42.28, -83.74, 370),
    city!("Madison", "msn", "us", 43.07, -89.40, 680),
    city!("Urbana", "cmi", "us", 40.11, -88.21, 240),
    city!("Boulder", "bld", "us", 40.01, -105.27, 330),
    city!("Pasadena", "pas", "us", 34.15, -118.14, 140),
    city!("Berkeley", "brk", "us", 37.87, -122.27, 120),
    city!("Palo Alto", "pao", "us", 37.44, -122.14, 67),
    city!("Cambridge", "cam", "us", 42.37, -71.11, 118),
    city!("Durham", "dur", "us", 35.99, -78.90, 650),
    city!("College Park", "cpk", "us", 38.99, -76.94, 32),
    city!("Gainesville", "gnv", "us", 29.65, -82.32, 340),
    city!("Tallahassee", "tlh", "us", 30.44, -84.28, 390),
    city!("Baton Rouge", "btr", "us", 30.45, -91.15, 870),
    city!("Eugene", "eug", "us", 44.05, -123.09, 380),
    city!("Provo", "pvu", "us", 40.23, -111.66, 700),
    city!("Tempe", "tpe2", "us", 33.43, -111.94, 200),
    city!("Norman", "oun", "us", 35.22, -97.44, 130),
    city!("Lincoln", "lnk", "us", 40.81, -96.68, 340),
    city!("Iowa City", "iow", "us", 41.66, -91.53, 180),
    city!("Lexington", "lex", "us", 38.04, -84.50, 520),
    city!("Knoxville", "tys", "us", 35.96, -83.92, 900),
    city!("Blacksburg", "bcb", "us", 37.23, -80.41, 45),
    city!("Charlottesville", "cho", "us", 38.03, -78.48, 150),
    city!("State College", "scE", "us", 40.79, -77.86, 160),
    city!("New Haven", "hvn", "us", 41.31, -72.92, 860),
    city!("Providence", "pvd", "us", 41.82, -71.41, 1600),
    city!("Hanover", "hnv", "us", 43.70, -72.29, 11),
    city!("Amherst", "amh", "us", 42.37, -72.52, 38),
    city!("Stony Brook", "sbk", "us", 40.91, -73.12, 14),
    city!("Riverside", "ral", "us", 33.95, -117.40, 4600),
    city!("Santa Barbara", "sba", "us", 34.42, -119.70, 450),
    city!("Irvine", "irv", "us", 33.68, -117.83, 310),
    city!("Davis", "dav", "us", 38.54, -121.74, 68),
    city!("Santa Cruz", "scz", "us", 36.97, -122.03, 64),
    city!("Honolulu", "hnl", "us", 21.31, -157.86, 1000),
    city!("Anchorage", "anc", "us", 61.22, -149.90, 400),
    // --- Canada ---
    city!("Toronto", "yyz", "ca", 43.65, -79.38, 6200),
    city!("Montreal", "yul", "ca", 45.50, -73.57, 4300),
    city!("Vancouver", "yvr", "ca", 49.28, -123.12, 2600),
    city!("Ottawa", "yow", "ca", 45.42, -75.70, 1400),
    city!("Calgary", "yyc", "ca", 51.05, -114.07, 1500),
    city!("Waterloo", "ykf", "ca", 43.46, -80.52, 620),
    city!("Halifax", "yhz", "ca", 44.65, -63.58, 440),
    // --- Latin America ---
    city!("Mexico City", "mex", "mx", 19.43, -99.13, 21800),
    city!("Sao Paulo", "gru", "br", -23.55, -46.63, 22000),
    city!("Rio de Janeiro", "gig", "br", -22.91, -43.17, 13500),
    city!("Buenos Aires", "eze", "ar", -34.60, -58.38, 15200),
    city!("Santiago", "scl", "cl", -33.45, -70.67, 6800),
    city!("Bogota", "bog", "co", 4.71, -74.07, 11000),
    city!("Lima", "lim", "pe", -12.05, -77.04, 10700),
    // --- Europe ---
    city!("London", "lhr", "gb", 51.51, -0.13, 14300),
    city!("Cambridge UK", "cbg", "gb", 52.21, 0.12, 145),
    city!("Manchester", "man", "gb", 53.48, -2.24, 2800),
    city!("Edinburgh", "edi", "gb", 55.95, -3.19, 540),
    city!("Paris", "cdg", "fr", 48.86, 2.35, 11200),
    city!("Lyon", "lys", "fr", 45.76, 4.84, 1700),
    city!("Nice", "nce", "fr", 43.70, 7.27, 1000),
    city!("Berlin", "ber", "de", 52.52, 13.40, 3800),
    city!("Munich", "muc", "de", 48.14, 11.58, 1600),
    city!("Frankfurt", "fra", "de", 50.11, 8.68, 790),
    city!("Hamburg", "ham", "de", 53.55, 9.99, 1900),
    city!("Karlsruhe", "kae", "de", 49.01, 8.40, 310),
    city!("Amsterdam", "ams", "nl", 52.37, 4.90, 1160),
    city!("Delft", "dlf", "nl", 52.01, 4.36, 105),
    city!("Brussels", "bru", "be", 50.85, 4.35, 1220),
    city!("Zurich", "zrh", "ch", 47.37, 8.54, 1400),
    city!("Geneva", "gva", "ch", 46.20, 6.14, 600),
    city!("Lausanne", "lsn", "ch", 46.52, 6.63, 140),
    city!("Vienna", "vie", "at", 48.21, 16.37, 1930),
    city!("Prague", "prg", "cz", 50.08, 14.44, 1300),
    city!("Warsaw", "waw", "pl", 52.23, 21.01, 1790),
    city!("Krakow", "krk", "pl", 50.06, 19.94, 770),
    city!("Budapest", "bud", "hu", 47.50, 19.04, 1750),
    city!("Madrid", "mad", "es", 40.42, -3.70, 6700),
    city!("Barcelona", "bcn", "es", 41.39, 2.17, 5600),
    city!("Lisbon", "lis", "pt", 38.72, -9.14, 2900),
    city!("Rome", "fco", "it", 41.90, 12.50, 4300),
    city!("Milan", "mxp", "it", 45.46, 9.19, 3100),
    city!("Bologna", "blq", "it", 44.49, 11.34, 390),
    city!("Pisa", "psa", "it", 43.72, 10.40, 90),
    city!("Athens", "ath", "gr", 37.98, 23.73, 3150),
    city!("Stockholm", "arn", "se", 59.33, 18.07, 1630),
    city!("Uppsala", "ups", "se", 59.86, 17.64, 180),
    city!("Gothenburg", "got", "se", 57.71, 11.97, 600),
    city!("Copenhagen", "cph", "dk", 55.68, 12.57, 1350),
    city!("Oslo", "osl", "no", 59.91, 10.75, 1040),
    city!("Helsinki", "hel", "fi", 60.17, 24.94, 1300),
    city!("Dublin", "dub", "ie", 53.35, -6.26, 1260),
    city!("Moscow", "svo", "ru", 55.76, 37.62, 12600),
    city!("St. Petersburg", "led", "ru", 59.93, 30.34, 5400),
    city!("Istanbul", "ist", "tr", 41.01, 28.98, 15500),
    // --- Asia / Oceania ---
    city!("Tokyo", "nrt", "jp", 35.68, 139.69, 37400),
    city!("Osaka", "kix", "jp", 34.69, 135.50, 19200),
    city!("Kyoto", "ukb", "jp", 35.01, 135.77, 1470),
    city!("Seoul", "icn", "kr", 37.57, 126.98, 25600),
    city!("Daejeon", "tae", "kr", 36.35, 127.38, 1500),
    city!("Beijing", "pek", "cn", 39.90, 116.41, 21500),
    city!("Shanghai", "pvg", "cn", 31.23, 121.47, 27800),
    city!("Shenzhen", "szx", "cn", 22.54, 114.06, 17600),
    city!("Hong Kong", "hkg", "hk", 22.32, 114.17, 7500),
    city!("Taipei", "tpe", "tw", 25.03, 121.57, 7000),
    city!("Hsinchu", "hsz", "tw", 24.80, 120.97, 450),
    city!("Singapore", "sin", "sg", 1.35, 103.82, 5900),
    city!("Bangkok", "bkk", "th", 13.76, 100.50, 10700),
    city!("Mumbai", "bom", "in", 19.08, 72.88, 20700),
    city!("Bangalore", "blr", "in", 12.97, 77.59, 12800),
    city!("New Delhi", "del", "in", 28.61, 77.21, 31200),
    city!("Tel Aviv", "tlv", "il", 32.08, 34.78, 4300),
    city!("Haifa", "hfa", "il", 32.79, 34.99, 1150),
    city!("Dubai", "dxb", "ae", 25.20, 55.27, 3400),
    city!("Sydney", "syd", "au", -33.87, 151.21, 5300),
    city!("Melbourne", "mel", "au", -37.81, 144.96, 5100),
    city!("Brisbane", "bne", "au", -27.47, 153.03, 2500),
    city!("Perth", "per", "au", -31.95, 115.86, 2100),
    city!("Auckland", "akl", "nz", -36.85, 174.76, 1700),
    city!("Wellington", "wlg", "nz", -41.29, 174.78, 420),
    // --- Africa ---
    city!("Johannesburg", "jnb", "za", -26.20, 28.05, 6000),
    city!("Cape Town", "cpt", "za", -33.92, 18.42, 4700),
    city!("Cairo", "cai", "eg", 30.04, 31.24, 21300),
    city!("Nairobi", "nbo", "ke", -1.29, 36.82, 4900),
    city!("Lagos", "los", "ng", 6.52, 3.38, 15400),
];

/// Looks up a city by its short code (case-insensitive).
pub fn by_code(code: &str) -> Option<&'static City> {
    CITIES.iter().find(|c| c.code.eq_ignore_ascii_case(code))
}

/// Looks up a city by its full name (case-insensitive).
pub fn by_name(name: &str) -> Option<&'static City> {
    CITIES.iter().find(|c| c.name.eq_ignore_ascii_case(name))
}

/// All cities in a given country.
pub fn in_country(country: &str) -> Vec<&'static City> {
    CITIES
        .iter()
        .filter(|c| c.country.eq_ignore_ascii_case(country))
        .collect()
}

/// The city whose centre is nearest to `p`, together with the distance to it
/// in kilometers. The table is never empty, so this always returns a value.
pub fn nearest_city(p: GeoPoint) -> (&'static City, f64) {
    let mut best: Option<(&'static City, f64)> = None;
    for c in CITIES {
        let d = crate::distance::great_circle_km(p, c.location());
        match best {
            Some((_, bd)) if bd <= d => {}
            _ => best = Some((c, d)),
        }
    }
    best.expect("city table is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table_is_reasonably_large_and_valid() {
        assert!(
            CITIES.len() >= 140,
            "expected a substantial city table, got {}",
            CITIES.len()
        );
        for c in CITIES {
            assert!(c.location().is_valid(), "{} has invalid coords", c.name);
            assert!(!c.name.is_empty() && !c.code.is_empty() && !c.country.is_empty());
            assert!(c.population_k > 0, "{} has zero population", c.name);
        }
    }

    #[test]
    fn codes_are_unique() {
        let mut seen = HashSet::new();
        for c in CITIES {
            assert!(
                seen.insert(c.code.to_ascii_lowercase()),
                "duplicate city code {}",
                c.code
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = HashSet::new();
        for c in CITIES {
            assert!(
                seen.insert(c.name.to_ascii_lowercase()),
                "duplicate city name {}",
                c.name
            );
        }
    }

    #[test]
    fn lookup_by_code_and_name() {
        assert_eq!(by_code("NYC").unwrap().name, "New York");
        assert_eq!(by_code("ith").unwrap().name, "Ithaca");
        assert_eq!(by_name("london").unwrap().code, "lhr");
        assert!(by_code("zzz").is_none());
        assert!(by_name("Atlantis").is_none());
    }

    #[test]
    fn country_filter() {
        let us = in_country("us");
        assert!(us.len() >= 60);
        assert!(us.iter().all(|c| c.country == "us"));
        let de = in_country("DE");
        assert!(de.len() >= 4);
    }

    #[test]
    fn nearest_city_finds_expected_cities() {
        // A point in midtown Manhattan should resolve to New York.
        let (c, d) = nearest_city(GeoPoint::new(40.75, -73.99));
        assert_eq!(c.name, "New York");
        assert!(d < 20.0);
        // A point on the Cornell campus should resolve to Ithaca.
        let (c, d) = nearest_city(GeoPoint::new(42.447, -76.483));
        assert_eq!(c.name, "Ithaca");
        assert!(d < 5.0);
    }

    #[test]
    fn coverage_spans_continents() {
        let countries: HashSet<_> = CITIES.iter().map(|c| c.country).collect();
        for expected in ["us", "ca", "gb", "de", "jp", "au", "br", "za", "in"] {
            assert!(countries.contains(expected), "missing country {expected}");
        }
    }
}
