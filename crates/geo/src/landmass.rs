//! Coarse landmass polygons and ocean tests.
//!
//! §2.5 of the paper lets Octant incorporate *negative geographic
//! constraints* — oceans, deserts, uninhabitable areas — directly into the
//! constraint system instead of as an ad-hoc post-processing step. This
//! module supplies the geographic data for that: hand-digitised, coarse
//! polygons for the continents (a few dozen vertices each), a
//! point-on-land test, and per-continent lookups.
//!
//! The polygons intentionally trace *generous* outlines (they may include
//! some coastal water) so that using them as negative constraints never
//! excludes a real land position; precision comes from the latency
//! constraints, not from the coastline data.

use crate::point::GeoPoint;
use serde::Serialize;

/// A named landmass: a simple (non-self-intersecting) polygon in latitude /
/// longitude space. None of the built-in polygons crosses the antimeridian.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Landmass {
    /// Human-readable name, e.g. `"North America"`.
    pub name: &'static str,
    /// Polygon vertices as `(lat, lon)` pairs, in order, not closed
    /// (the last vertex implicitly connects back to the first).
    pub outline: &'static [(f64, f64)],
}

impl Landmass {
    /// Tests whether a point lies inside this landmass outline using the
    /// even-odd rule in lat/lon space.
    pub fn contains(&self, p: GeoPoint) -> bool {
        point_in_polygon(p.lat, p.lon, self.outline)
    }

    /// The outline as [`GeoPoint`]s.
    pub fn outline_points(&self) -> Vec<GeoPoint> {
        self.outline
            .iter()
            .map(|&(lat, lon)| GeoPoint::new(lat, lon))
            .collect()
    }

    /// A crude bounding box `(min_lat, min_lon, max_lat, max_lon)`.
    pub fn bounding_box(&self) -> (f64, f64, f64, f64) {
        let mut min_lat = f64::INFINITY;
        let mut min_lon = f64::INFINITY;
        let mut max_lat = f64::NEG_INFINITY;
        let mut max_lon = f64::NEG_INFINITY;
        for &(lat, lon) in self.outline {
            min_lat = min_lat.min(lat);
            min_lon = min_lon.min(lon);
            max_lat = max_lat.max(lat);
            max_lon = max_lon.max(lon);
        }
        (min_lat, min_lon, max_lat, max_lon)
    }
}

/// Generous outline of continental North America (including the settled
/// parts of Canada, the contiguous US and Mexico).
pub const NORTH_AMERICA: Landmass = Landmass {
    name: "North America",
    outline: &[
        (60.0, -166.0),
        (71.5, -156.0),
        (70.0, -125.0),
        (72.0, -95.0),
        (63.0, -68.0),
        (52.0, -55.0),
        (46.0, -52.0),
        (43.0, -65.0),
        (40.0, -69.0),
        (35.0, -74.5),
        (30.0, -80.0),
        (24.5, -80.0),
        (24.0, -83.0),
        (29.0, -90.0),
        (25.5, -97.0),
        (21.0, -97.0),
        (18.0, -94.0),
        (15.5, -96.5),
        (17.0, -102.0),
        (23.0, -107.0),
        (23.0, -111.0),
        (28.0, -116.0),
        (33.0, -119.0),
        (37.0, -124.0),
        (43.0, -126.0),
        (49.0, -126.5),
        (55.0, -134.0),
        (59.0, -142.0),
        (57.0, -158.0),
    ],
};

/// Generous outline of South America.
pub const SOUTH_AMERICA: Landmass = Landmass {
    name: "South America",
    outline: &[
        (12.0, -72.0),
        (10.5, -62.0),
        (6.0, -54.0),
        (0.0, -49.0),
        (-5.0, -35.0),
        (-13.0, -38.0),
        (-23.0, -41.0),
        (-34.0, -52.0),
        (-39.0, -57.5),
        (-47.0, -65.0),
        (-54.0, -68.0),
        (-55.5, -71.0),
        (-50.0, -75.5),
        (-40.0, -74.0),
        (-30.0, -72.0),
        (-18.0, -71.0),
        (-6.0, -81.5),
        (1.0, -80.5),
        (7.0, -78.0),
        (9.0, -76.0),
    ],
};

/// Generous outline of Europe west of the Urals (excluding Iceland).
pub const EUROPE: Landmass = Landmass {
    name: "Europe",
    outline: &[
        (71.0, 28.0),
        (67.0, 41.0),
        (60.0, 48.0),
        (52.0, 50.0),
        (46.0, 48.0),
        (41.0, 48.5),
        (40.5, 44.0),
        (41.0, 36.0),
        (40.0, 26.0),
        (36.5, 23.0),
        (38.0, 15.5),
        (36.5, -5.5),
        (37.0, -9.5),
        (43.5, -9.8),
        (46.0, -2.0),
        (48.5, -5.0),
        (50.0, -5.8),
        (53.5, -11.0),
        (55.5, -8.5),
        (58.5, -7.0),
        (61.0, 4.0),
        (63.0, 4.5),
        (68.0, 12.0),
        (71.0, 22.0),
    ],
};

/// Generous outline of Africa.
pub const AFRICA: Landmass = Landmass {
    name: "Africa",
    outline: &[
        (37.0, 10.0),
        (33.0, 32.0),
        (30.0, 34.0),
        (12.0, 43.5),
        (11.0, 51.5),
        (0.0, 42.5),
        (-10.0, 40.5),
        (-26.0, 33.0),
        (-34.5, 20.0),
        (-34.0, 18.0),
        (-17.0, 11.5),
        (-6.0, 12.0),
        (4.0, 9.0),
        (4.5, -8.0),
        (14.5, -17.5),
        (21.0, -17.0),
        (28.0, -13.0),
        (33.0, -9.0),
        (35.5, -6.0),
        (37.0, 0.0),
    ],
};

/// Generous outline of mainland Asia (west of 145°E, south of the Arctic).
pub const ASIA: Landmass = Landmass {
    name: "Asia",
    outline: &[
        (68.0, 68.0),
        (73.0, 85.0),
        (77.0, 105.0),
        (72.0, 130.0),
        (67.0, 145.0),
        (60.0, 143.0),
        (54.0, 137.0),
        (45.0, 135.0),
        (39.0, 128.0),
        (35.0, 126.5),
        (30.0, 122.0),
        (22.0, 115.0),
        (21.0, 108.0),
        (10.5, 107.0),
        (8.5, 100.0),
        (1.5, 103.5),
        (6.0, 95.0),
        (15.0, 94.5),
        (21.0, 89.5),
        (16.0, 82.0),
        (8.0, 77.0),
        (20.0, 72.5),
        (24.5, 67.0),
        (25.5, 57.5),
        (22.5, 59.5),
        (17.0, 55.0),
        (13.0, 44.5),
        (20.0, 40.0),
        (28.0, 34.5),
        (33.0, 35.5),
        (36.5, 36.0),
        (41.0, 41.0),
        (45.0, 48.0),
        (52.0, 50.5),
        (60.0, 60.0),
    ],
};

/// Generous outline of Japan (kept separate from mainland Asia so hosts in
/// Tokyo/Osaka are recognised as being on land).
pub const JAPAN: Landmass = Landmass {
    name: "Japan",
    outline: &[
        (45.6, 141.0),
        (44.0, 145.5),
        (42.0, 143.5),
        (39.5, 142.2),
        (35.5, 140.9),
        (33.0, 135.5),
        (31.0, 131.5),
        (31.0, 129.5),
        (34.5, 129.0),
        (36.0, 133.0),
        (38.5, 137.5),
        (41.0, 139.5),
        (43.5, 139.5),
    ],
};

/// Generous outline of the British Isles (kept separate from the continent).
pub const BRITISH_ISLES: Landmass = Landmass {
    name: "British Isles",
    outline: &[
        (58.7, -5.0),
        (58.5, -2.8),
        (55.5, -1.4),
        (53.0, 0.5),
        (51.3, 1.6),
        (50.5, 0.5),
        (50.0, -5.8),
        (51.5, -10.8),
        (54.5, -10.5),
        (55.5, -8.5),
        (57.5, -7.5),
    ],
};

/// Generous outline of Australia.
pub const AUSTRALIA: Landmass = Landmass {
    name: "Australia",
    outline: &[
        (-11.0, 142.5),
        (-16.0, 146.0),
        (-25.0, 153.5),
        (-33.0, 152.5),
        (-38.0, 150.0),
        (-39.5, 146.5),
        (-38.5, 141.0),
        (-35.5, 138.0),
        (-35.0, 136.0),
        (-32.0, 134.0),
        (-34.0, 123.0),
        (-35.0, 117.0),
        (-31.0, 115.0),
        (-26.0, 113.0),
        (-21.0, 114.0),
        (-19.0, 121.0),
        (-14.0, 126.5),
        (-12.0, 131.0),
        (-14.5, 135.5),
        (-12.5, 137.0),
        (-16.0, 138.0),
        (-17.5, 140.5),
    ],
};

/// Generous outline of New Zealand.
pub const NEW_ZEALAND: Landmass = Landmass {
    name: "New Zealand",
    outline: &[
        (-34.3, 172.7),
        (-37.5, 178.5),
        (-41.5, 175.5),
        (-43.5, 173.5),
        (-46.8, 169.0),
        (-45.8, 166.3),
        (-42.5, 170.0),
        (-40.5, 172.0),
        (-38.0, 174.5),
        (-35.0, 173.0),
    ],
};

/// All built-in landmasses.
pub const LANDMASSES: &[&Landmass] = &[
    &NORTH_AMERICA,
    &SOUTH_AMERICA,
    &EUROPE,
    &AFRICA,
    &ASIA,
    &JAPAN,
    &BRITISH_ISLES,
    &AUSTRALIA,
    &NEW_ZEALAND,
];

/// Returns `true` when the point lies inside one of the coarse landmass
/// outlines.
pub fn is_on_land(p: GeoPoint) -> bool {
    LANDMASSES.iter().any(|l| l.contains(p))
}

/// Returns `true` when the point lies in an ocean (i.e. outside every coarse
/// landmass outline). This is the predicate Octant's negative geographic
/// constraints are built from.
pub fn is_ocean(p: GeoPoint) -> bool {
    !is_on_land(p)
}

/// The landmass containing `p`, if any.
pub fn landmass_of(p: GeoPoint) -> Option<&'static Landmass> {
    LANDMASSES.iter().find(|l| l.contains(p)).copied()
}

/// Even-odd point-in-polygon test in latitude/longitude space.
fn point_in_polygon(lat: f64, lon: f64, polygon: &[(f64, f64)]) -> bool {
    let n = polygon.len();
    if n < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let (lat_i, lon_i) = polygon[i];
        let (lat_j, lon_j) = polygon[j];
        // Cast a ray in the +lon direction.
        if ((lat_i > lat) != (lat_j > lat))
            && (lon < (lon_j - lon_i) * (lat - lat_i) / (lat_j - lat_i) + lon_i)
        {
            inside = !inside;
        }
        j = i;
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::CITIES;

    #[test]
    fn known_land_points_are_on_land() {
        let land = [
            (40.71, -74.01, "New York"),
            (41.88, -87.63, "Chicago"),
            (39.74, -104.99, "Denver"),
            (48.86, 2.35, "Paris"),
            (52.52, 13.40, "Berlin"),
            (55.76, 37.62, "Moscow"),
            (35.68, 139.69, "Tokyo"),
            (-33.87, 151.21, "Sydney"),
            (-23.55, -46.63, "Sao Paulo"),
            (30.04, 31.24, "Cairo"),
            (51.51, -0.13, "London"),
            (28.61, 77.21, "New Delhi"),
            (-36.85, 174.76, "Auckland"),
        ];
        for (lat, lon, name) in land {
            assert!(
                is_on_land(GeoPoint::new(lat, lon)),
                "{name} should be on land"
            );
        }
    }

    #[test]
    fn known_ocean_points_are_in_the_ocean() {
        let ocean = [
            (35.0, -45.0, "mid North Atlantic"),
            (0.0, -30.0, "equatorial Atlantic"),
            (30.0, -160.0, "mid North Pacific"),
            (-20.0, 90.0, "Indian Ocean"),
            (-55.0, -120.0, "Southern Pacific"),
            (45.0, -150.0, "Gulf of Alaska"),
            (25.0, -60.0, "Sargasso Sea"),
        ];
        for (lat, lon, name) in ocean {
            assert!(is_ocean(GeoPoint::new(lat, lon)), "{name} should be ocean");
        }
    }

    #[test]
    fn most_cities_fall_on_land() {
        // The outlines are coarse, so allow a small number of coastal cities
        // to fall outside, but the overwhelming majority must be inside.
        let on_land = CITIES.iter().filter(|c| is_on_land(c.location())).count();
        let frac = on_land as f64 / CITIES.len() as f64;
        assert!(
            frac > 0.9,
            "only {:.0}% of cities fall on land",
            frac * 100.0
        );
    }

    #[test]
    fn all_planetlab_sites_fall_on_land() {
        for s in crate::sites::planetlab_51() {
            assert!(is_on_land(s.location()), "{} should be on land", s.hostname);
        }
    }

    #[test]
    fn landmass_of_identifies_continents() {
        assert_eq!(
            landmass_of(GeoPoint::new(40.0, -100.0)).unwrap().name,
            "North America"
        );
        assert_eq!(
            landmass_of(GeoPoint::new(48.86, 2.35)).unwrap().name,
            "Europe"
        );
        assert_eq!(
            landmass_of(GeoPoint::new(-25.0, 135.0)).unwrap().name,
            "Australia"
        );
        assert!(landmass_of(GeoPoint::new(0.0, -30.0)).is_none());
    }

    #[test]
    fn bounding_boxes_contain_their_outline() {
        for l in LANDMASSES {
            let (min_lat, min_lon, max_lat, max_lon) = l.bounding_box();
            assert!(min_lat < max_lat && min_lon < max_lon, "{}", l.name);
            for &(lat, lon) in l.outline {
                assert!(lat >= min_lat && lat <= max_lat && lon >= min_lon && lon <= max_lon);
            }
        }
    }

    #[test]
    fn point_in_polygon_rejects_degenerate_polygons() {
        assert!(!point_in_polygon(0.0, 0.0, &[]));
        assert!(!point_in_polygon(0.0, 0.0, &[(0.0, 0.0), (1.0, 1.0)]));
    }

    #[test]
    fn outline_points_match_raw_outline() {
        let pts = NORTH_AMERICA.outline_points();
        assert_eq!(pts.len(), NORTH_AMERICA.outline.len());
        assert!((pts[0].lat - NORTH_AMERICA.outline[0].0).abs() < 1e-12);
    }
}
