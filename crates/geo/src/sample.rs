//! Seeded random geographic sampling.
//!
//! The network simulator and the experiment harness need random-but-
//! reproducible geographic inputs: hosts scattered around a city, targets
//! drawn from population centres, uniform points inside a radius (for the
//! Monte-Carlo region oracles in `octant-region`'s tests). Every helper here
//! takes an explicit `&mut impl Rng`, so determinism is entirely in the
//! caller's hands.

use crate::cities::{City, CITIES};
use crate::distance::destination;
use crate::point::GeoPoint;
use crate::units::Distance;
use rand::Rng;

/// A point drawn uniformly at random on the surface of the sphere.
pub fn uniform_on_sphere<R: Rng + ?Sized>(rng: &mut R) -> GeoPoint {
    // Uniform on the sphere: longitude uniform, sin(latitude) uniform.
    let lon = rng.gen_range(-180.0..180.0);
    let z: f64 = rng.gen_range(-1.0..1.0);
    GeoPoint::new(z.asin().to_degrees(), lon)
}

/// A point drawn uniformly (by area, to first order) from the disk of radius
/// `radius` around `center`.
pub fn uniform_in_disk<R: Rng + ?Sized>(
    rng: &mut R,
    center: GeoPoint,
    radius: Distance,
) -> GeoPoint {
    let bearing = rng.gen_range(0.0..360.0);
    // sqrt for uniform area density.
    let r = radius.km() * rng.gen::<f64>().sqrt();
    destination(center, bearing, Distance::from_km(r))
}

/// A point drawn from a (truncated) Gaussian scatter around `center` with the
/// given standard deviation. Used to place hosts "somewhere in the metro
/// area" of a city.
pub fn gaussian_scatter<R: Rng + ?Sized>(
    rng: &mut R,
    center: GeoPoint,
    sigma: Distance,
) -> GeoPoint {
    // Box-Muller.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let mag = sigma.km() * (-2.0 * u1.ln()).sqrt();
    // Truncate at 4 sigma so a single unlucky draw cannot teleport a host to
    // another continent.
    let mag = mag.min(sigma.km() * 4.0);
    let bearing = u2 * 360.0;
    destination(center, bearing, Distance::from_km(mag))
}

/// Draws a city at random, weighted by population. Never returns `None`
/// because the built-in city table is non-empty.
pub fn population_weighted_city<R: Rng + ?Sized>(rng: &mut R) -> &'static City {
    let total: u64 = CITIES.iter().map(|c| c.population_k as u64).sum();
    let mut pick = rng.gen_range(0..total);
    for c in CITIES {
        let w = c.population_k as u64;
        if pick < w {
            return c;
        }
        pick -= w;
    }
    // Unreachable unless the table is empty; fall back to the first city.
    &CITIES[0]
}

/// Draws a city uniformly at random from the set of cities in `country`.
/// Returns `None` when no city of that country is in the table.
pub fn random_city_in_country<R: Rng + ?Sized>(
    rng: &mut R,
    country: &str,
) -> Option<&'static City> {
    let candidates: Vec<&'static City> = CITIES
        .iter()
        .filter(|c| c.country.eq_ignore_ascii_case(country))
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

/// A plausible host location: a population-weighted city centre plus a
/// metro-scale Gaussian scatter (σ = 15 km).
pub fn random_host_location<R: Rng + ?Sized>(rng: &mut R) -> GeoPoint {
    let city = population_weighted_city(rng);
    gaussian_scatter(rng, city.location(), Distance::from_km(15.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::great_circle_km;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_on_sphere_covers_both_hemispheres() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<GeoPoint> = (0..2000).map(|_| uniform_on_sphere(&mut rng)).collect();
        let north = pts.iter().filter(|p| p.lat > 0.0).count();
        let east = pts.iter().filter(|p| p.lon > 0.0).count();
        assert!(north > 800 && north < 1200, "north count {north}");
        assert!(east > 800 && east < 1200, "east count {east}");
        // Uniform-on-sphere means |lat| > 60° should be rare (~13.4% of area).
        let polar = pts.iter().filter(|p| p.lat.abs() > 60.0).count();
        assert!(polar < 400, "polar count {polar}");
        for p in &pts {
            assert!(p.is_valid());
        }
    }

    #[test]
    fn uniform_in_disk_respects_radius() {
        let mut rng = StdRng::seed_from_u64(11);
        let center = GeoPoint::new(42.44, -76.50);
        let radius = Distance::from_km(500.0);
        let mut beyond_half = 0;
        for _ in 0..1000 {
            let p = uniform_in_disk(&mut rng, center, radius);
            let d = great_circle_km(center, p);
            assert!(d <= radius.km() + 1e-6, "point at {d} km exceeds radius");
            if d > radius.km() / 2.0 {
                beyond_half += 1;
            }
        }
        // Uniform-by-area means ~75% of points lie beyond half the radius.
        assert!(
            beyond_half > 650 && beyond_half < 850,
            "beyond_half = {beyond_half}"
        );
    }

    #[test]
    fn gaussian_scatter_stays_near_center() {
        let mut rng = StdRng::seed_from_u64(13);
        let center = GeoPoint::new(48.86, 2.35);
        let sigma = Distance::from_km(15.0);
        for _ in 0..500 {
            let p = gaussian_scatter(&mut rng, center, sigma);
            assert!(great_circle_km(center, p) <= 60.0 + 1e-6);
        }
    }

    #[test]
    fn population_weighting_prefers_big_cities() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut tokyo = 0;
        let mut ithaca = 0;
        for _ in 0..5000 {
            let c = population_weighted_city(&mut rng);
            if c.name == "Tokyo" {
                tokyo += 1;
            }
            if c.name == "Ithaca" {
                ithaca += 1;
            }
        }
        assert!(
            tokyo > ithaca,
            "Tokyo ({tokyo}) should be drawn more often than Ithaca ({ithaca})"
        );
        assert!(tokyo > 50, "Tokyo should be drawn regularly, got {tokyo}");
    }

    #[test]
    fn random_city_in_country_filters() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..50 {
            let c = random_city_in_country(&mut rng, "de").unwrap();
            assert_eq!(c.country, "de");
        }
        assert!(random_city_in_country(&mut rng, "zz").is_none());
    }

    #[test]
    fn random_host_location_is_deterministic_for_a_seed() {
        let a: Vec<GeoPoint> = {
            let mut rng = StdRng::seed_from_u64(23);
            (0..10).map(|_| random_host_location(&mut rng)).collect()
        };
        let b: Vec<GeoPoint> = {
            let mut rng = StdRng::seed_from_u64(23);
            (0..10).map(|_| random_host_location(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
