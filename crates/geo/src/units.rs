//! Strongly-typed distance and latency units, and the speed-of-light
//! conversions between them.
//!
//! The Octant paper translates round-trip latencies into distance bounds
//! using the propagation speed of light in fiber, approximately 2/3 of the
//! speed of light in vacuum (§2.1). These conversions appear all over the
//! framework — in calibration, in the conservative fallback constraints, in
//! the network simulator — so they live here as a single source of truth.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::KM_PER_MILE;

/// Speed of light in vacuum, kilometers per millisecond.
pub const SPEED_OF_LIGHT_KM_PER_MS: f64 = 299.792_458;

/// Propagation speed of light in optical fiber, kilometers per millisecond.
///
/// The paper uses "approximately 2/3 the speed of light"; we use exactly 2/3.
pub const FIBER_SPEED_KM_PER_MS: f64 = SPEED_OF_LIGHT_KM_PER_MS * 2.0 / 3.0;

/// A geographic distance. Internally stored in kilometers.
///
/// The paper reports results in miles; [`Distance::miles`] performs the
/// conversion so experiment harnesses can print the same units as the paper.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Distance(f64);

impl Distance {
    /// Zero distance.
    pub const ZERO: Distance = Distance(0.0);

    /// Creates a distance from kilometers. Negative values are clamped to 0.
    pub fn from_km(km: f64) -> Self {
        Distance(if km.is_finite() { km.max(0.0) } else { 0.0 })
    }

    /// Creates a distance from statute miles.
    pub fn from_miles(miles: f64) -> Self {
        Distance::from_km(miles * KM_PER_MILE)
    }

    /// Creates a distance from meters.
    pub fn from_meters(m: f64) -> Self {
        Distance::from_km(m / 1000.0)
    }

    /// The distance in kilometers.
    pub fn km(&self) -> f64 {
        self.0
    }

    /// The distance in statute miles.
    pub fn miles(&self) -> f64 {
        self.0 / KM_PER_MILE
    }

    /// The distance in meters.
    pub fn meters(&self) -> f64 {
        self.0 * 1000.0
    }

    /// Minimum of two distances.
    pub fn min(self, other: Distance) -> Distance {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Maximum of two distances.
    pub fn max(self, other: Distance) -> Distance {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// One-way great-circle distance light can travel in fiber during a
    /// round-trip latency `rtt` (i.e. the paper's conservative speed-of-light
    /// bound on landmark-target distance).
    pub fn max_fiber_distance_for_rtt(rtt: Latency) -> Distance {
        Distance::from_km(rtt.ms() / 2.0 * FIBER_SPEED_KM_PER_MS)
    }

    /// The minimum round-trip latency needed for light in fiber to cover this
    /// distance and come back (the inverse of
    /// [`Distance::max_fiber_distance_for_rtt`]).
    pub fn min_rtt_over_fiber(&self) -> Latency {
        Latency::from_ms(2.0 * self.0 / FIBER_SPEED_KM_PER_MS)
    }
}

impl Add for Distance {
    type Output = Distance;
    fn add(self, rhs: Distance) -> Distance {
        Distance::from_km(self.0 + rhs.0)
    }
}

impl AddAssign for Distance {
    fn add_assign(&mut self, rhs: Distance) {
        *self = *self + rhs;
    }
}

impl Sub for Distance {
    type Output = Distance;
    fn sub(self, rhs: Distance) -> Distance {
        Distance::from_km(self.0 - rhs.0)
    }
}

impl Mul<f64> for Distance {
    type Output = Distance;
    fn mul(self, rhs: f64) -> Distance {
        Distance::from_km(self.0 * rhs)
    }
}

impl Div<f64> for Distance {
    type Output = Distance;
    fn div(self, rhs: f64) -> Distance {
        Distance::from_km(self.0 / rhs)
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} km", self.0)
    }
}

/// A network latency (round-trip or one-way depending on context), stored in
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Latency(f64);

impl Latency {
    /// Zero latency.
    pub const ZERO: Latency = Latency(0.0);

    /// Creates a latency from milliseconds. Negative values are clamped to 0.
    pub fn from_ms(ms: f64) -> Self {
        Latency(if ms.is_finite() { ms.max(0.0) } else { 0.0 })
    }

    /// Creates a latency from microseconds.
    pub fn from_us(us: f64) -> Self {
        Latency::from_ms(us / 1000.0)
    }

    /// Creates a latency from seconds.
    pub fn from_secs(s: f64) -> Self {
        Latency::from_ms(s * 1000.0)
    }

    /// The latency in milliseconds.
    pub fn ms(&self) -> f64 {
        self.0
    }

    /// The latency in microseconds.
    pub fn us(&self) -> f64 {
        self.0 * 1000.0
    }

    /// The latency in seconds.
    pub fn secs(&self) -> f64 {
        self.0 / 1000.0
    }

    /// Minimum of two latencies — the standard way to filter queuing noise
    /// out of a set of probes.
    pub fn min(self, other: Latency) -> Latency {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Maximum of two latencies.
    pub fn max(self, other: Latency) -> Latency {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Round-trip time for light in fiber to traverse `distance` and return.
    pub fn fiber_rtt_for_distance(distance: Distance) -> Latency {
        distance.min_rtt_over_fiber()
    }
}

impl Add for Latency {
    type Output = Latency;
    fn add(self, rhs: Latency) -> Latency {
        Latency::from_ms(self.0 + rhs.0)
    }
}

impl AddAssign for Latency {
    fn add_assign(&mut self, rhs: Latency) {
        *self = *self + rhs;
    }
}

impl Sub for Latency {
    type Output = Latency;
    fn sub(self, rhs: Latency) -> Latency {
        Latency::from_ms(self.0 - rhs.0)
    }
}

impl Mul<f64> for Latency {
    type Output = Latency;
    fn mul(self, rhs: f64) -> Latency {
        Latency::from_ms(self.0 * rhs)
    }
}

impl Div<f64> for Latency {
    type Output = Latency;
    fn div(self, rhs: f64) -> Latency {
        Latency::from_ms(self.0 / rhs)
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_unit_conversions_round_trip() {
        let d = Distance::from_miles(100.0);
        assert!((d.km() - 160.9344).abs() < 1e-9);
        assert!((d.miles() - 100.0).abs() < 1e-9);
        assert!((Distance::from_meters(1500.0).km() - 1.5).abs() < 1e-12);
        assert!((Distance::from_km(2.0).meters() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn latency_unit_conversions_round_trip() {
        let l = Latency::from_secs(0.05);
        assert!((l.ms() - 50.0).abs() < 1e-12);
        assert!((l.us() - 50_000.0).abs() < 1e-9);
        assert!((Latency::from_us(2500.0).ms() - 2.5).abs() < 1e-12);
        assert!((l.secs() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn negative_and_non_finite_values_clamp_to_zero() {
        assert_eq!(Distance::from_km(-5.0), Distance::ZERO);
        assert_eq!(Distance::from_km(f64::NAN), Distance::ZERO);
        assert_eq!(Latency::from_ms(-1.0), Latency::ZERO);
        assert_eq!(Latency::from_ms(f64::INFINITY), Latency::ZERO);
    }

    #[test]
    fn fiber_bound_is_two_thirds_c() {
        // A 100 ms RTT allows at most 50 ms one-way, i.e. ~9993 km in fiber.
        let d = Distance::max_fiber_distance_for_rtt(Latency::from_ms(100.0));
        assert!((d.km() - 50.0 * FIBER_SPEED_KM_PER_MS).abs() < 1e-9);
        assert!((d.km() - 9993.0).abs() < 5.0);
    }

    #[test]
    fn fiber_rtt_and_distance_are_inverse() {
        let d = Distance::from_km(1234.5);
        let rtt = d.min_rtt_over_fiber();
        let back = Distance::max_fiber_distance_for_rtt(rtt);
        assert!((back.km() - d.km()).abs() < 1e-9);
        assert_eq!(Latency::fiber_rtt_for_distance(d), rtt);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Distance::from_km(10.0);
        let b = Distance::from_km(4.0);
        assert!(((a + b).km() - 14.0).abs() < 1e-12);
        assert!(((a - b).km() - 6.0).abs() < 1e-12);
        assert!(
            ((b - a).km()).abs() < 1e-12,
            "subtraction saturates at zero"
        );
        assert!(((a * 2.5).km() - 25.0).abs() < 1e-12);
        assert!(((a / 2.0).km() - 5.0).abs() < 1e-12);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);

        let x = Latency::from_ms(3.0);
        let y = Latency::from_ms(7.0);
        assert!(((x + y).ms() - 10.0).abs() < 1e-12);
        assert!(((y - x).ms() - 4.0).abs() < 1e-12);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
        let mut z = x;
        z += y;
        assert!((z.ms() - 10.0).abs() < 1e-12);
        let mut dd = a;
        dd += b;
        assert!((dd.km() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", Distance::from_km(12.5)), "12.50 km");
        assert_eq!(format!("{}", Latency::from_ms(1.25)), "1.250 ms");
    }
}
