//! Geographic points (latitude / longitude) and validation helpers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the surface of the Earth, expressed as latitude and longitude
/// in decimal degrees.
///
/// Latitudes are in `[-90, 90]` (positive north), longitudes in `(-180, 180]`
/// (positive east). Construction via [`GeoPoint::new`] normalizes longitudes
/// into that range and clamps latitudes; [`GeoPoint::try_new`] rejects
/// non-finite values instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in decimal degrees, positive north.
    pub lat: f64,
    /// Longitude in decimal degrees, positive east.
    pub lon: f64,
}

/// Errors produced when constructing a [`GeoPoint`] from untrusted values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoPointError {
    /// Latitude or longitude was NaN or infinite.
    NonFinite,
    /// Latitude was outside `[-90, 90]` after normalization.
    LatitudeOutOfRange,
}

impl fmt::Display for GeoPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoPointError::NonFinite => write!(f, "latitude/longitude must be finite"),
            GeoPointError::LatitudeOutOfRange => {
                write!(f, "latitude must lie within [-90, 90] degrees")
            }
        }
    }
}

impl std::error::Error for GeoPointError {}

impl GeoPoint {
    /// Creates a new point, normalizing the longitude into `(-180, 180]` and
    /// clamping the latitude into `[-90, 90]`.
    ///
    /// Non-finite inputs are mapped to `0.0`; use [`GeoPoint::try_new`] when
    /// the caller needs to detect such inputs.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = if lat.is_finite() {
            lat.clamp(-90.0, 90.0)
        } else {
            0.0
        };
        let lon = if lon.is_finite() {
            normalize_lon(lon)
        } else {
            0.0
        };
        GeoPoint { lat, lon }
    }

    /// Creates a new point, returning an error for non-finite or out-of-range
    /// latitudes. Longitudes are normalized into `(-180, 180]`.
    pub fn try_new(lat: f64, lon: f64) -> Result<Self, GeoPointError> {
        if !lat.is_finite() || !lon.is_finite() {
            return Err(GeoPointError::NonFinite);
        }
        if !(-90.0..=90.0).contains(&lat) {
            return Err(GeoPointError::LatitudeOutOfRange);
        }
        Ok(GeoPoint {
            lat,
            lon: normalize_lon(lon),
        })
    }

    /// Latitude in radians.
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// Returns `true` when both coordinates are finite and within range.
    pub fn is_valid(&self) -> bool {
        self.lat.is_finite()
            && self.lon.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
    }

    /// The antipode of this point (the diametrically opposite point on the
    /// globe). Useful for constructing worst-case distance tests.
    pub fn antipode(&self) -> GeoPoint {
        GeoPoint::new(-self.lat, self.lon + 180.0)
    }

    /// Converts the point to a 3-D unit vector on the sphere
    /// (x toward lon=0 on the equator, z toward the north pole).
    pub fn to_unit_vector(&self) -> [f64; 3] {
        let lat = self.lat_rad();
        let lon = self.lon_rad();
        [lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin()]
    }

    /// Reconstructs a point from a (not necessarily normalized) 3-D vector.
    pub fn from_vector(v: [f64; 3]) -> GeoPoint {
        let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        if norm == 0.0 || !norm.is_finite() {
            return GeoPoint::new(0.0, 0.0);
        }
        let x = v[0] / norm;
        let y = v[1] / norm;
        let z = v[2] / norm;
        GeoPoint::new(z.asin().to_degrees(), y.atan2(x).to_degrees())
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = if self.lat >= 0.0 { 'N' } else { 'S' };
        let ew = if self.lon >= 0.0 { 'E' } else { 'W' };
        write!(
            f,
            "{:.4}{}, {:.4}{}",
            self.lat.abs(),
            ns,
            self.lon.abs(),
            ew
        )
    }
}

/// Normalizes a longitude into the range `(-180, 180]`.
pub fn normalize_lon(lon: f64) -> f64 {
    if !lon.is_finite() {
        return 0.0;
    }
    let mut l = lon % 360.0;
    if l <= -180.0 {
        l += 360.0;
    } else if l > 180.0 {
        l -= 360.0;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longitude_normalization_wraps_into_range() {
        assert_eq!(normalize_lon(190.0), -170.0);
        assert_eq!(normalize_lon(-190.0), 170.0);
        assert_eq!(normalize_lon(360.0), 0.0);
        assert_eq!(normalize_lon(540.0), 180.0);
        assert_eq!(normalize_lon(-540.0), 180.0);
        assert_eq!(normalize_lon(0.0), 0.0);
    }

    #[test]
    fn new_clamps_latitude() {
        assert_eq!(GeoPoint::new(95.0, 0.0).lat, 90.0);
        assert_eq!(GeoPoint::new(-95.0, 0.0).lat, -90.0);
    }

    #[test]
    fn try_new_rejects_bad_inputs() {
        assert_eq!(
            GeoPoint::try_new(f64::NAN, 0.0),
            Err(GeoPointError::NonFinite)
        );
        assert_eq!(
            GeoPoint::try_new(0.0, f64::INFINITY),
            Err(GeoPointError::NonFinite)
        );
        assert_eq!(
            GeoPoint::try_new(91.0, 0.0),
            Err(GeoPointError::LatitudeOutOfRange)
        );
        assert!(GeoPoint::try_new(42.0, 200.0).is_ok());
    }

    #[test]
    fn non_finite_inputs_map_to_origin() {
        let p = GeoPoint::new(f64::NAN, f64::NAN);
        assert!(p.is_valid());
        assert_eq!(p, GeoPoint::new(0.0, 0.0));
    }

    #[test]
    fn antipode_round_trips() {
        let p = GeoPoint::new(42.44, -76.5);
        let a = p.antipode();
        assert!((a.lat + p.lat).abs() < 1e-9);
        assert!((super::normalize_lon(a.lon - 180.0) - p.lon).abs() < 1e-9);
        let back = a.antipode();
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn unit_vector_round_trip() {
        for &(lat, lon) in &[
            (0.0, 0.0),
            (42.44, -76.5),
            (-33.9, 151.2),
            (89.0, 10.0),
            (-89.0, -170.0),
        ] {
            let p = GeoPoint::new(lat, lon);
            let q = GeoPoint::from_vector(p.to_unit_vector());
            assert!((p.lat - q.lat).abs() < 1e-9, "{p} vs {q}");
            assert!((p.lon - q.lon).abs() < 1e-9, "{p} vs {q}");
        }
    }

    #[test]
    fn from_vector_handles_degenerate_input() {
        let p = GeoPoint::from_vector([0.0, 0.0, 0.0]);
        assert!(p.is_valid());
    }

    #[test]
    fn display_formats_hemispheres() {
        let s = format!("{}", GeoPoint::new(42.4440, -76.5019));
        assert!(s.contains('N') && s.contains('W'), "{s}");
    }
}
