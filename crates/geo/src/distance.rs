//! Great-circle distance, bearing, destination and midpoint computations.
//!
//! All functions treat the Earth as a sphere of radius
//! [`crate::EARTH_RADIUS_KM`]. The haversine formulation is used throughout:
//! its worst-case error versus the ellipsoidal ground truth is ~0.5%, far
//! below the measurement noise Octant deals with, and it is numerically
//! stable for both tiny and antipodal separations.

use crate::point::GeoPoint;
use crate::units::Distance;
use crate::EARTH_RADIUS_KM;

/// Great-circle distance between two points, in kilometers.
pub fn great_circle_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    // Clamp to guard against floating-point drift just above 1.0.
    let h = h.clamp(0.0, 1.0);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Great-circle distance between two points as a [`Distance`].
pub fn great_circle(a: GeoPoint, b: GeoPoint) -> Distance {
    Distance::from_km(great_circle_km(a, b))
}

/// Initial bearing (forward azimuth) from `a` to `b`, in degrees clockwise
/// from true north, normalized into `[0, 360)`.
pub fn initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlon = lon2 - lon1;
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    let mut bearing = y.atan2(x).to_degrees();
    if bearing < 0.0 {
        bearing += 360.0;
    }
    bearing % 360.0
}

/// The point reached by travelling `distance` from `start` along the great
/// circle with initial bearing `bearing_deg` (degrees clockwise from north).
pub fn destination(start: GeoPoint, bearing_deg: f64, distance: Distance) -> GeoPoint {
    let delta = distance.km() / EARTH_RADIUS_KM;
    let theta = bearing_deg.to_radians();
    let lat1 = start.lat_rad();
    let lon1 = start.lon_rad();
    let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
    let lon2 = lon1
        + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
    GeoPoint::new(lat2.to_degrees(), lon2.to_degrees())
}

/// The midpoint of the great-circle segment between `a` and `b`.
pub fn midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint {
    let va = a.to_unit_vector();
    let vb = b.to_unit_vector();
    let sum = [va[0] + vb[0], va[1] + vb[1], va[2] + vb[2]];
    // Antipodal points have no unique midpoint; fall back to `a`'s meridian.
    if sum.iter().map(|x| x * x).sum::<f64>() < 1e-12 {
        return GeoPoint::new((a.lat + b.lat) / 2.0, a.lon);
    }
    GeoPoint::from_vector(sum)
}

/// Interpolates along the great circle from `a` to `b`; `t = 0` yields `a`,
/// `t = 1` yields `b`. `t` is clamped into `[0, 1]`.
pub fn interpolate(a: GeoPoint, b: GeoPoint, t: f64) -> GeoPoint {
    let t = t.clamp(0.0, 1.0);
    let d = great_circle_km(a, b) / EARTH_RADIUS_KM;
    if d < 1e-12 {
        return a;
    }
    let sin_d = d.sin();
    if sin_d.abs() < 1e-12 {
        return midpoint(a, b);
    }
    let fa = ((1.0 - t) * d).sin() / sin_d;
    let fb = (t * d).sin() / sin_d;
    let va = a.to_unit_vector();
    let vb = b.to_unit_vector();
    GeoPoint::from_vector([
        fa * va[0] + fb * vb[0],
        fa * va[1] + fb * vb[1],
        fa * va[2] + fb * vb[2],
    ])
}

/// Total length of a path (sequence of points) following great circles
/// between consecutive points.
pub fn path_length(points: &[GeoPoint]) -> Distance {
    let mut total = 0.0;
    for pair in points.windows(2) {
        total += great_circle_km(pair[0], pair[1]);
    }
    Distance::from_km(total)
}

/// Route-inflation factor of a path relative to the direct great-circle
/// distance between its endpoints. Returns 1.0 for degenerate paths.
///
/// This is the "circuitousness" that makes latency-derived constraints loose
/// in practice (§2.3 of the paper): policy routing inflates path length well
/// beyond the great-circle distance.
pub fn path_inflation(points: &[GeoPoint]) -> f64 {
    if points.len() < 2 {
        return 1.0;
    }
    let direct = great_circle_km(points[0], points[points.len() - 1]);
    if direct < 1e-9 {
        return 1.0;
    }
    (path_length(points).km() / direct).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EARTH_CIRCUMFERENCE_KM;

    fn ithaca() -> GeoPoint {
        GeoPoint::new(42.4440, -76.5019)
    }
    fn seattle() -> GeoPoint {
        GeoPoint::new(47.6062, -122.3321)
    }
    fn london() -> GeoPoint {
        GeoPoint::new(51.5074, -0.1278)
    }

    #[test]
    fn known_distances_are_close() {
        // Reference values computed with the haversine formula on a sphere.
        assert!((great_circle_km(ithaca(), seattle()) - 3540.0).abs() < 60.0);
        assert!((great_circle_km(london(), GeoPoint::new(48.8566, 2.3522)) - 344.0).abs() < 10.0);
        // New York - Sydney, a long-haul pair.
        let nyc = GeoPoint::new(40.7128, -74.0060);
        let syd = GeoPoint::new(-33.8688, 151.2093);
        assert!((great_circle_km(nyc, syd) - 15990.0).abs() < 150.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_identity() {
        let d1 = great_circle_km(ithaca(), london());
        let d2 = great_circle_km(london(), ithaca());
        assert!((d1 - d2).abs() < 1e-9);
        assert_eq!(great_circle_km(ithaca(), ithaca()), 0.0);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let p = GeoPoint::new(10.0, 20.0);
        let d = great_circle_km(p, p.antipode());
        assert!((d - EARTH_CIRCUMFERENCE_KM / 2.0).abs() < 1.0);
    }

    #[test]
    fn destination_round_trips_with_distance_and_bearing() {
        let start = ithaca();
        for &(bearing, km) in &[
            (0.0, 100.0),
            (45.0, 800.0),
            (90.0, 2500.0),
            (200.0, 5000.0),
            (359.0, 42.0),
        ] {
            let end = destination(start, bearing, Distance::from_km(km));
            let measured = great_circle_km(start, end);
            assert!(
                (measured - km).abs() < 1e-6 * km.max(1.0),
                "bearing {bearing} km {km}: measured {measured}"
            );
            let back_bearing = initial_bearing_deg(start, end);
            let diff = (back_bearing - bearing).abs();
            let diff = diff.min(360.0 - diff);
            assert!(diff < 1e-6, "bearing {bearing} -> {back_bearing}");
        }
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = GeoPoint::new(0.0, 0.0);
        assert!((initial_bearing_deg(origin, GeoPoint::new(1.0, 0.0)) - 0.0).abs() < 1e-6);
        assert!((initial_bearing_deg(origin, GeoPoint::new(0.0, 1.0)) - 90.0).abs() < 1e-6);
        assert!((initial_bearing_deg(origin, GeoPoint::new(-1.0, 0.0)) - 180.0).abs() < 1e-6);
        assert!((initial_bearing_deg(origin, GeoPoint::new(0.0, -1.0)) - 270.0).abs() < 1e-6);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let m = midpoint(ithaca(), london());
        let da = great_circle_km(ithaca(), m);
        let db = great_circle_km(london(), m);
        assert!((da - db).abs() < 1.0, "da={da} db={db}");
    }

    #[test]
    fn midpoint_of_antipodes_is_defined() {
        let p = GeoPoint::new(30.0, 40.0);
        let m = midpoint(p, p.antipode());
        assert!(m.is_valid());
    }

    #[test]
    fn interpolation_endpoints_and_monotonicity() {
        let a = ithaca();
        let b = london();
        assert!(great_circle_km(interpolate(a, b, 0.0), a) < 1e-6);
        assert!(great_circle_km(interpolate(a, b, 1.0), b) < 1e-6);
        let total = great_circle_km(a, b);
        let mut prev = 0.0;
        for i in 1..=10 {
            let t = i as f64 / 10.0;
            let p = interpolate(a, b, t);
            let d = great_circle_km(a, p);
            assert!(d >= prev - 1e-6, "distance along path should be monotone");
            assert!(
                (d - t * total).abs() < 1.0,
                "t={t}: d={d}, expected {}",
                t * total
            );
            prev = d;
        }
    }

    #[test]
    fn interpolate_identical_points() {
        let a = ithaca();
        let p = interpolate(a, a, 0.5);
        assert!(great_circle_km(a, p) < 1e-9);
    }

    #[test]
    fn path_length_and_inflation() {
        let path = vec![ithaca(), GeoPoint::new(41.8781, -87.6298), seattle()];
        let len = path_length(&path);
        let direct = great_circle_km(ithaca(), seattle());
        assert!(len.km() > direct);
        let infl = path_inflation(&path);
        assert!(infl > 1.0 && infl < 1.5, "inflation {infl}");
        assert_eq!(path_inflation(&[ithaca()]), 1.0);
        assert_eq!(path_inflation(&[]), 1.0);
        assert_eq!(path_inflation(&[ithaca(), ithaca()]), 1.0);
    }
}
