//! # octant-geo
//!
//! Spherical-geometry substrate for the Octant geolocalization framework
//! (Wong, Stoyanov, Sirer — NSDI 2007).
//!
//! Octant reasons about *where on the globe* a host can be. Everything in the
//! framework ultimately bottoms out in a handful of geographic primitives:
//!
//! * [`GeoPoint`] — a position on the surface of the Earth (latitude /
//!   longitude in degrees),
//! * great-circle distance, bearing and destination computations
//!   ([`distance`]),
//! * local planar projections used to do exact 2-D geometry around a
//!   landmark ([`projection`]),
//! * strongly-typed units for distances and latencies and the
//!   speed-of-light-in-fiber conversion between them ([`units`]),
//! * a database of world cities and PlanetLab-like measurement sites used to
//!   place synthetic hosts at realistic coordinates ([`cities`], [`sites`]),
//! * coarse landmass polygons used for the paper's negative geographic
//!   constraints ("the target is not in an ocean") ([`landmass`]),
//! * seeded random geographic sampling helpers ([`sample`]).
//!
//! The crate is deliberately dependency-light (only `rand` and `serde`) and
//! completely deterministic: every function is a pure computation and every
//! random helper takes an explicit RNG.
//!
//! ## Quick example
//!
//! ```
//! use octant_geo::{GeoPoint, distance::great_circle_km, units::Distance};
//!
//! let ithaca = GeoPoint::new(42.4440, -76.5019);
//! let seattle = GeoPoint::new(47.6062, -122.3321);
//! let d = great_circle_km(ithaca, seattle);
//! assert!((d - 3540.0).abs() < 60.0, "Ithaca-Seattle is ~3540 km, got {d}");
//! let as_miles = Distance::from_km(d).miles();
//! assert!(as_miles > 2100.0 && as_miles < 2300.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cities;
pub mod distance;
pub mod landmass;
pub mod point;
pub mod projection;
pub mod sample;
pub mod sites;
pub mod units;

pub use point::GeoPoint;
pub use projection::AzimuthalEquidistant;
pub use units::{Distance, Latency};

/// Mean Earth radius in kilometers (IUGG value), used by every great-circle
/// computation in the workspace.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Earth circumference in kilometers, handy as an upper bound for distances.
pub const EARTH_CIRCUMFERENCE_KM: f64 = 2.0 * std::f64::consts::PI * EARTH_RADIUS_KM;

/// Kilometers per statute mile.
pub const KM_PER_MILE: f64 = 1.609_344;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earth_constants_are_consistent() {
        assert!((EARTH_CIRCUMFERENCE_KM - 40_030.0).abs() < 50.0);
        assert!((KM_PER_MILE - 1.609).abs() < 1e-3);
    }
}
