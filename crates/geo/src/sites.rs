//! PlanetLab-like measurement sites.
//!
//! The paper's evaluation uses 51 PlanetLab nodes whose true positions were
//! determined externally, with no two hosts at the same institution. We do
//! not have access to 2007 PlanetLab, so this module provides a synthetic but
//! realistic equivalent: a table of university/research sites at their real
//! coordinates, dominated by North America and Europe exactly like the 2007
//! PlanetLab footprint. The network simulator instantiates hosts at these
//! sites; the experiment harness uses [`planetlab_51`] for the headline
//! reproduction and the larger sets for robustness sweeps.

use crate::cities;
use crate::point::GeoPoint;
use serde::Serialize;

/// A measurement site: an institution hosting exactly one landmark/target
/// host, mirroring the paper's "no two hosts in the same institution" rule.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Site {
    /// Institution name, e.g. `"Cornell University"`.
    pub institution: &'static str,
    /// Hostname of the site's host, e.g. `"planetlab1.cs.cornell.edu"`.
    pub hostname: &'static str,
    /// Code of the nearest city in [`crate::cities::CITIES`].
    pub city_code: &'static str,
    /// Host latitude in degrees.
    pub lat: f64,
    /// Host longitude in degrees.
    pub lon: f64,
}

impl Site {
    /// The site's position as a [`GeoPoint`].
    pub fn location(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }

    /// The [`crate::cities::City`] this site belongs to, if the code is
    /// present in the table (it always is for the built-in sites).
    pub fn city(&self) -> Option<&'static cities::City> {
        cities::by_code(self.city_code)
    }
}

macro_rules! site {
    ($inst:literal, $host:literal, $city:literal, $lat:literal, $lon:literal) => {
        Site {
            institution: $inst,
            hostname: $host,
            city_code: $city,
            lat: $lat,
            lon: $lon,
        }
    };
}

/// The full built-in site table (66 sites). The first 51 form the
/// paper-equivalent [`planetlab_51`] set.
pub const SITES: &[Site] = &[
    // --- North America (34) ---
    site!(
        "Cornell University",
        "planetlab1.cs.cornell.edu",
        "ith",
        42.4440,
        -76.4830
    ),
    site!(
        "University of Rochester",
        "planetlab1.cs.rochester.edu",
        "roc",
        43.1280,
        -77.6280
    ),
    site!("MIT", "planetlab1.csail.mit.edu", "cam", 42.3620, -71.0900),
    site!(
        "Harvard University",
        "planetlab1.eecs.harvard.edu",
        "bos",
        42.3780,
        -71.1170
    ),
    site!(
        "Princeton University",
        "planetlab1.cs.princeton.edu",
        "pct",
        40.3500,
        -74.6520
    ),
    site!(
        "Columbia University",
        "planetlab1.cs.columbia.edu",
        "nyc",
        40.8080,
        -73.9620
    ),
    site!(
        "University of Pennsylvania",
        "planetlab1.seas.upenn.edu",
        "phl",
        39.9520,
        -75.1910
    ),
    site!(
        "Carnegie Mellon University",
        "planetlab1.cmcl.cs.cmu.edu",
        "pit",
        40.4430,
        -79.9440
    ),
    site!(
        "University of Maryland",
        "planetlab1.umiacs.umd.edu",
        "cpk",
        38.9900,
        -76.9360
    ),
    site!(
        "Duke University",
        "planetlab1.cs.duke.edu",
        "dur",
        36.0010,
        -78.9380
    ),
    site!(
        "Georgia Tech",
        "planetlab1.cc.gatech.edu",
        "atl",
        33.7760,
        -84.3990
    ),
    site!(
        "University of Florida",
        "planetlab1.cise.ufl.edu",
        "gnv",
        29.6480,
        -82.3440
    ),
    site!(
        "University of Michigan",
        "planetlab1.eecs.umich.edu",
        "arb",
        42.2930,
        -83.7160
    ),
    site!(
        "University of Wisconsin",
        "planetlab1.cs.wisc.edu",
        "msn",
        43.0720,
        -89.4070
    ),
    site!("UIUC", "planetlab1.cs.uiuc.edu", "cmi", 40.1140, -88.2250),
    site!(
        "Northwestern University",
        "planetlab1.cs.northwestern.edu",
        "chi",
        42.0580,
        -87.6840
    ),
    site!(
        "Washington University in St. Louis",
        "planetlab1.cse.wustl.edu",
        "stl",
        38.6490,
        -90.3110
    ),
    site!(
        "University of Minnesota",
        "planetlab1.dtc.umn.edu",
        "msp",
        44.9740,
        -93.2280
    ),
    site!(
        "University of Texas at Austin",
        "planetlab1.cs.utexas.edu",
        "aus",
        30.2880,
        -97.7360
    ),
    site!(
        "Rice University",
        "planetlab1.cs.rice.edu",
        "hou",
        29.7170,
        -95.4020
    ),
    site!(
        "University of Arizona",
        "planetlab1.cs.arizona.edu",
        "tus",
        32.2320,
        -110.9530
    ),
    site!(
        "University of Colorado Boulder",
        "planetlab1.cs.colorado.edu",
        "bld",
        40.0080,
        -105.2660
    ),
    site!(
        "University of Utah",
        "planetlab1.flux.utah.edu",
        "slc",
        40.7680,
        -111.8450
    ),
    site!(
        "University of Washington",
        "planetlab1.cs.washington.edu",
        "sea",
        47.6530,
        -122.3060
    ),
    site!(
        "University of Oregon",
        "planetlab1.cs.uoregon.edu",
        "eug",
        44.0450,
        -123.0710
    ),
    site!(
        "UC Berkeley",
        "planetlab1.millennium.berkeley.edu",
        "brk",
        37.8750,
        -122.2590
    ),
    site!(
        "Stanford University",
        "planetlab1.stanford.edu",
        "pao",
        37.4280,
        -122.1740
    ),
    site!(
        "UC San Diego",
        "planetlab1.ucsd.edu",
        "san",
        32.8810,
        -117.2340
    ),
    site!("UCLA", "planetlab1.cs.ucla.edu", "lax", 34.0690, -118.4450),
    site!(
        "Caltech",
        "planetlab1.cs.caltech.edu",
        "pas",
        34.1380,
        -118.1250
    ),
    site!(
        "UC Santa Barbara",
        "planetlab1.cs.ucsb.edu",
        "sba",
        34.4140,
        -119.8450
    ),
    site!(
        "University of Toronto",
        "planetlab1.cs.toronto.edu",
        "yyz",
        43.6600,
        -79.3970
    ),
    site!(
        "University of Waterloo",
        "planetlab1.uwaterloo.ca",
        "ykf",
        43.4720,
        -80.5450
    ),
    site!(
        "University of British Columbia",
        "planetlab1.cs.ubc.ca",
        "yvr",
        49.2610,
        -123.2490
    ),
    // --- Europe (17) ---
    site!(
        "University of Cambridge",
        "planetlab1.xeno.cl.cam.ac.uk",
        "cbg",
        52.2050,
        0.1210
    ),
    site!(
        "University College London",
        "planetlab1.cs.ucl.ac.uk",
        "lhr",
        51.5250,
        -0.1340
    ),
    site!(
        "INRIA Sophia Antipolis",
        "planetlab1.inria.fr",
        "nce",
        43.6160,
        7.0720
    ),
    site!("LIP6 Paris", "planetlab1.lip6.fr", "cdg", 48.8470, 2.3560),
    site!(
        "TU Berlin",
        "planetlab1.cs.tu-berlin.de",
        "ber",
        52.5120,
        13.3270
    ),
    site!("TU Munich", "planetlab1.in.tum.de", "muc", 48.2620, 11.6680),
    site!(
        "University of Karlsruhe",
        "planetlab1.ira.uka.de",
        "kae",
        49.0120,
        8.4150
    ),
    site!(
        "Vrije Universiteit Amsterdam",
        "planetlab1.cs.vu.nl",
        "ams",
        52.3340,
        4.8650
    ),
    site!(
        "TU Delft",
        "planetlab1.ewi.tudelft.nl",
        "dlf",
        51.9990,
        4.3730
    ),
    site!("EPFL", "planetlab1.epfl.ch", "lsn", 46.5190, 6.5660),
    site!("ETH Zurich", "planetlab1.ethz.ch", "zrh", 47.3780, 8.5480),
    site!(
        "Universidad Carlos III de Madrid",
        "planetlab1.uc3m.es",
        "mad",
        40.3320,
        -3.7660
    ),
    site!("UPC Barcelona", "planetlab1.upc.es", "bcn", 41.3890, 2.1130),
    site!(
        "University of Pisa",
        "planetlab1.di.unipi.it",
        "psa",
        43.7200,
        10.4080
    ),
    site!(
        "University of Bologna",
        "planetlab1.cs.unibo.it",
        "blq",
        44.4870,
        11.3420
    ),
    site!(
        "KTH Stockholm",
        "planetlab1.ssvl.kth.se",
        "arn",
        59.3500,
        18.0700
    ),
    site!(
        "Warsaw University of Technology",
        "planetlab1.ee.pw.edu.pl",
        "waw",
        52.2200,
        21.0100
    ),
    // --- The 51st node of the paper-equivalent set ---
    site!(
        "University of Virginia",
        "planetlab1.cs.virginia.edu",
        "cho",
        38.0320,
        -78.5110
    ),
    // --- Extra sites beyond the paper's 51 (robustness sweeps) ---
    site!(
        "University of Tokyo",
        "planetlab1.iii.u-tokyo.ac.jp",
        "nrt",
        35.7130,
        139.7620
    ),
    site!("KAIST", "planetlab1.kaist.ac.kr", "tae", 36.3720, 127.3600),
    site!(
        "Tsinghua University",
        "planetlab1.edu.cn",
        "pek",
        40.0030,
        116.3260
    ),
    site!(
        "National University of Singapore",
        "planetlab1.comp.nus.edu.sg",
        "sin",
        1.2950,
        103.7740
    ),
    site!(
        "University of Sydney",
        "planetlab1.it.usyd.edu.au",
        "syd",
        -33.8890,
        151.1870
    ),
    site!(
        "University of Melbourne",
        "planetlab1.csse.unimelb.edu.au",
        "mel",
        -37.7960,
        144.9610
    ),
    site!(
        "Technion Haifa",
        "planetlab1.technion.ac.il",
        "hfa",
        32.7770,
        35.0230
    ),
    site!(
        "University of Sao Paulo",
        "planetlab1.larc.usp.br",
        "gru",
        -23.5560,
        -46.7300
    ),
    site!(
        "University of Cape Town",
        "planetlab1.cs.uct.ac.za",
        "cpt",
        -33.9570,
        18.4610
    ),
    site!(
        "Trinity College Dublin",
        "planetlab1.cs.tcd.ie",
        "dub",
        53.3440,
        -6.2540
    ),
    site!(
        "University of Helsinki",
        "planetlab1.cs.helsinki.fi",
        "hel",
        60.2040,
        24.9620
    ),
    site!(
        "Moscow State University",
        "planetlab1.msu.ru",
        "svo",
        55.7020,
        37.5300
    ),
    site!(
        "IIT Bombay",
        "planetlab1.iitb.ac.in",
        "bom",
        19.1330,
        72.9150
    ),
    site!(
        "New York University",
        "planetlab1.nyu.edu",
        "nyc",
        40.7290,
        -73.9960
    ),
    site!(
        "University of New Mexico",
        "planetlab1.unm.edu",
        "abq",
        35.0840,
        -106.6200
    ),
];

/// Number of sites in the paper-equivalent evaluation set.
pub const PLANETLAB_51_COUNT: usize = 51;

/// The 51-site set used for the headline reproduction of the paper's
/// evaluation (Figures 2–4). Matches the paper's North-America/Europe-heavy
/// PlanetLab footprint, with no two sites at the same institution.
pub fn planetlab_51() -> &'static [Site] {
    &SITES[..PLANETLAB_51_COUNT]
}

/// All built-in sites (a superset of [`planetlab_51`] including Asia,
/// Oceania, South America and Africa), for larger-scale sweeps.
pub fn all_sites() -> &'static [Site] {
    SITES
}

/// Sites located in North America (US and Canada).
pub fn north_american_sites() -> Vec<&'static Site> {
    SITES
        .iter()
        .filter(|s| matches!(s.city().map(|c| c.country), Some("us") | Some("ca")))
        .collect()
}

/// Looks up a site by hostname (case-insensitive).
pub fn by_hostname(hostname: &str) -> Option<&'static Site> {
    SITES
        .iter()
        .find(|s| s.hostname.eq_ignore_ascii_case(hostname))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::great_circle_km;
    use std::collections::HashSet;

    #[test]
    fn planetlab_set_has_exactly_51_sites() {
        assert_eq!(planetlab_51().len(), 51);
    }

    #[test]
    fn all_sites_is_a_superset() {
        assert!(all_sites().len() > PLANETLAB_51_COUNT);
    }

    #[test]
    fn hostnames_and_institutions_are_unique() {
        let mut hosts = HashSet::new();
        let mut insts = HashSet::new();
        for s in SITES {
            assert!(
                hosts.insert(s.hostname),
                "duplicate hostname {}",
                s.hostname
            );
            assert!(
                insts.insert(s.institution),
                "duplicate institution {}",
                s.institution
            );
        }
    }

    #[test]
    fn every_site_references_a_known_city_nearby() {
        for s in SITES {
            let city = s
                .city()
                .unwrap_or_else(|| panic!("{} has unknown city code {}", s.hostname, s.city_code));
            let d = great_circle_km(s.location(), city.location());
            assert!(
                d < 60.0,
                "{} is {d:.1} km from its city {}",
                s.hostname,
                city.name
            );
        }
    }

    #[test]
    fn coordinates_are_valid() {
        for s in SITES {
            assert!(
                s.location().is_valid(),
                "{} has invalid coordinates",
                s.hostname
            );
        }
    }

    #[test]
    fn planetlab_set_is_na_and_europe_heavy() {
        let na = planetlab_51()
            .iter()
            .filter(|s| matches!(s.city().map(|c| c.country), Some("us") | Some("ca")))
            .count();
        assert!(
            na >= 30,
            "expected a North-America-heavy set, got {na} NA sites"
        );
        // And the rest should be predominantly European (2007 PlanetLab shape).
        assert!(na < 51, "the set should not be exclusively North American");
    }

    #[test]
    fn lookup_by_hostname() {
        let s = by_hostname("planetlab1.cs.rochester.edu").unwrap();
        assert_eq!(s.institution, "University of Rochester");
        assert!(by_hostname("nonexistent.example.org").is_none());
    }

    #[test]
    fn no_two_planetlab_sites_are_colocated() {
        let set = planetlab_51();
        for (i, a) in set.iter().enumerate() {
            for b in set.iter().skip(i + 1) {
                let d = great_circle_km(a.location(), b.location());
                assert!(
                    d > 1.0,
                    "{} and {} are co-located ({d:.2} km apart)",
                    a.hostname,
                    b.hostname
                );
            }
        }
    }

    #[test]
    fn north_american_helper_filters_correctly() {
        let na = north_american_sites();
        assert!(!na.is_empty());
        for s in na {
            let c = s.city().unwrap();
            assert!(c.country == "us" || c.country == "ca");
        }
    }
}
