//! Local planar projections.
//!
//! Octant's region arithmetic (intersections, unions, Bézier boundaries)
//! happens in a 2-D plane. Each solve projects the globe onto a plane using
//! an *azimuthal equidistant* projection centred near the constraints'
//! centroid: distances **from the centre** are preserved exactly, which is
//! precisely the property needed to turn "within d km of landmark L" into a
//! planar disk with negligible error at the continental scales Octant
//! operates on.
//!
//! A simple equirectangular projection is also provided for plotting and for
//! the coarse landmass masks.

use crate::distance::{destination, great_circle_km, initial_bearing_deg};
use crate::point::GeoPoint;
use crate::units::Distance;
use crate::EARTH_RADIUS_KM;
use serde::{Deserialize, Serialize};

/// A point in a local projected plane, in kilometers.
///
/// `x` grows eastward, `y` grows northward (for the azimuthal projection this
/// is only exactly true at the projection centre, which is all Octant needs).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PlanePoint {
    /// East-ish coordinate in kilometers.
    pub x: f64,
    /// North-ish coordinate in kilometers.
    pub y: f64,
}

impl PlanePoint {
    /// Creates a plane point from kilometre coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        PlanePoint { x, y }
    }

    /// Euclidean distance to another plane point, in kilometers.
    pub fn distance(&self, other: &PlanePoint) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Euclidean distance to the plane origin, in kilometers.
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }
}

/// Azimuthal equidistant projection centred at a reference point.
///
/// Every point on the globe maps to `(rho·sin θ, rho·cos θ)` where `rho` is
/// the great-circle distance from the centre and `θ` the initial bearing.
/// The projection is exact in distance and direction from the centre, and its
/// distortion of distances *between* projected points stays below ~1% within
/// roughly 3000 km of the centre — comfortably inside the scale at which
/// latency constraints are informative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AzimuthalEquidistant {
    center: GeoPoint,
}

impl AzimuthalEquidistant {
    /// Creates a projection centred at `center`.
    pub fn new(center: GeoPoint) -> Self {
        AzimuthalEquidistant { center }
    }

    /// The projection centre.
    pub fn center(&self) -> GeoPoint {
        self.center
    }

    /// Projects a geographic point onto the plane.
    pub fn project(&self, p: GeoPoint) -> PlanePoint {
        let rho = great_circle_km(self.center, p);
        if rho < 1e-9 {
            return PlanePoint::new(0.0, 0.0);
        }
        let theta = initial_bearing_deg(self.center, p).to_radians();
        PlanePoint::new(rho * theta.sin(), rho * theta.cos())
    }

    /// Maps a plane point back to the globe.
    pub fn unproject(&self, p: PlanePoint) -> GeoPoint {
        let rho = p.norm();
        if rho < 1e-9 {
            return self.center;
        }
        let bearing = p.x.atan2(p.y).to_degrees();
        destination(self.center, bearing, Distance::from_km(rho))
    }

    /// Maximum distance (km) from the centre at which this projection should
    /// be trusted for *relative* geometry. Points farther than a quarter of
    /// the Earth's circumference start wrapping around.
    pub fn usable_radius_km(&self) -> f64 {
        std::f64::consts::PI * EARTH_RADIUS_KM / 2.0
    }
}

/// A plain equirectangular (plate carrée) projection: `x = lon·cos(lat₀)`,
/// `y = lat`, scaled to kilometers. Cheap and adequate for plotting and for
/// the coarse continent polygons; not used for constraint geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Equirectangular {
    ref_lat_rad: f64,
}

impl Equirectangular {
    /// Creates a projection whose east-west scale is correct at `ref_lat`
    /// degrees of latitude.
    pub fn new(ref_lat: f64) -> Self {
        Equirectangular {
            ref_lat_rad: ref_lat.clamp(-89.9, 89.9).to_radians(),
        }
    }

    /// Projects a geographic point (km units).
    pub fn project(&self, p: GeoPoint) -> PlanePoint {
        let km_per_deg = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        PlanePoint::new(
            p.lon * km_per_deg * self.ref_lat_rad.cos(),
            p.lat * km_per_deg,
        )
    }

    /// Maps a plane point back to the globe.
    pub fn unproject(&self, p: PlanePoint) -> GeoPoint {
        let km_per_deg = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        let cos = self.ref_lat_rad.cos().max(1e-9);
        GeoPoint::new(p.y / km_per_deg, p.x / (km_per_deg * cos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ithaca() -> GeoPoint {
        GeoPoint::new(42.4440, -76.5019)
    }

    #[test]
    fn azimuthal_preserves_distance_from_center() {
        let proj = AzimuthalEquidistant::new(ithaca());
        for &(lat, lon) in &[
            (47.6, -122.3),
            (51.5, -0.13),
            (40.7, -74.0),
            (35.0, 139.7),
            (-33.9, 151.2),
        ] {
            let p = GeoPoint::new(lat, lon);
            let plane = proj.project(p);
            let rho = plane.norm();
            let truth = great_circle_km(ithaca(), p);
            assert!(
                (rho - truth).abs() < 1e-6 * truth.max(1.0),
                "rho={rho} truth={truth}"
            );
        }
    }

    #[test]
    fn azimuthal_round_trips() {
        let proj = AzimuthalEquidistant::new(ithaca());
        for &(lat, lon) in &[
            (42.4440, -76.5019),
            (40.7, -74.0),
            (37.4, -122.1),
            (51.5, -0.13),
            (1.35, 103.8),
        ] {
            let p = GeoPoint::new(lat, lon);
            let back = proj.unproject(proj.project(p));
            assert!(great_circle_km(p, back) < 1e-3, "{p} -> {back}");
        }
    }

    #[test]
    fn azimuthal_center_maps_to_origin() {
        let proj = AzimuthalEquidistant::new(ithaca());
        let o = proj.project(ithaca());
        assert!(o.norm() < 1e-9);
        assert!(great_circle_km(proj.unproject(PlanePoint::new(0.0, 0.0)), ithaca()) < 1e-9);
    }

    #[test]
    fn azimuthal_axes_point_the_right_way() {
        let proj = AzimuthalEquidistant::new(GeoPoint::new(0.0, 0.0));
        let north = proj.project(GeoPoint::new(1.0, 0.0));
        assert!(north.y > 0.0 && north.x.abs() < 1e-6);
        let east = proj.project(GeoPoint::new(0.0, 1.0));
        assert!(east.x > 0.0 && east.y.abs() < 1e-6);
    }

    #[test]
    fn azimuthal_relative_distortion_is_small_at_continental_scale() {
        // Distances *between* two projected points (neither at the centre)
        // should be close to their great-circle distance when both are within
        // ~2500 km of the centre.
        let proj = AzimuthalEquidistant::new(GeoPoint::new(40.0, -95.0)); // center of the US
        let a = GeoPoint::new(40.7, -74.0); // NYC
        let b = GeoPoint::new(34.05, -118.24); // LA
        let plane_d = proj.project(a).distance(&proj.project(b));
        let truth = great_circle_km(a, b);
        let rel_err = (plane_d - truth).abs() / truth;
        assert!(rel_err < 0.02, "relative error {rel_err}");
    }

    #[test]
    fn equirectangular_round_trips() {
        let proj = Equirectangular::new(40.0);
        for &(lat, lon) in &[(40.0, -75.0), (52.0, 13.4), (-23.5, -46.6)] {
            let p = GeoPoint::new(lat, lon);
            let back = proj.unproject(proj.project(p));
            assert!((back.lat - p.lat).abs() < 1e-9);
            assert!((back.lon - p.lon).abs() < 1e-9);
        }
    }

    #[test]
    fn plane_point_distance() {
        let a = PlanePoint::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.distance(&PlanePoint::new(0.0, 0.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn usable_radius_is_quarter_circumference() {
        let proj = AzimuthalEquidistant::new(ithaca());
        assert!((proj.usable_radius_km() - 10_007.0).abs() < 10.0);
    }
}
