//! GeoPing (IP2Geo): nearest landmark by latency signature.
//!
//! GeoPing assumes hosts that are near each other see similar latencies to a
//! common set of probes. Each landmark's "signature" is its vector of
//! latencies to the other landmarks; the target's signature is its vector of
//! latencies from the same landmarks; the target is mapped to the position of
//! the landmark whose signature is closest in Euclidean norm (the RADAR-style
//! metric the paper cites).

use octant::framework::{Geolocator, LocationEstimate};
use octant::solver::SolveReport;
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;

/// The GeoPing baseline.
#[derive(Debug, Clone, Default)]
pub struct GeoPing;

impl GeoPing {
    /// Creates a GeoPing instance.
    pub fn new() -> Self {
        GeoPing
    }
}

impl Geolocator for GeoPing {
    fn name(&self) -> &str {
        "GeoPing"
    }

    fn localize(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        target: NodeId,
    ) -> LocationEstimate {
        let usable: Vec<NodeId> = landmarks
            .iter()
            .copied()
            .filter(|&lm| lm != target && provider.advertised_location(lm).is_some())
            .collect();
        if usable.is_empty() {
            return LocationEstimate::unknown();
        }

        // The target's signature: latency from each landmark to the target.
        let target_sig: Vec<Option<f64>> = usable
            .iter()
            .map(|&lm| provider.ping(lm, target).min().map(|l| l.ms()))
            .collect();
        if target_sig.iter().all(|s| s.is_none()) {
            return LocationEstimate::unknown();
        }

        // Each candidate landmark's signature: latency from each landmark to it.
        let mut best: Option<(f64, NodeId)> = None;
        for &candidate in &usable {
            let mut sum = 0.0;
            let mut dims = 0usize;
            for (i, &lm) in usable.iter().enumerate() {
                if lm == candidate {
                    continue;
                }
                let (Some(t), Some(c)) = (
                    target_sig[i],
                    provider.ping(lm, candidate).min().map(|l| l.ms()),
                ) else {
                    continue;
                };
                sum += (t - c) * (t - c);
                dims += 1;
            }
            if dims == 0 {
                continue;
            }
            let score = (sum / dims as f64).sqrt();
            if best.map(|(s, _)| score < s).unwrap_or(true) {
                best = Some((score, candidate));
            }
        }

        match best.and_then(|(_, lm)| provider.advertised_location(lm)) {
            Some(point) => LocationEstimate {
                region: None,
                point: Some(point),
                report: SolveReport::default(),
                target_height_ms: None,
                provenance: Default::default(),
                profile: None,
            },
            None => LocationEstimate::unknown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::distance::great_circle_km;
    use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use octant_netsim::probe::Prober;
    use octant_netsim::ObservationProvider;

    fn prober(n: usize) -> Prober {
        let mut b = NetworkBuilder::new(NetworkConfig::default());
        for site in octant_geo::sites::planetlab_51().iter().take(n) {
            b = b.add_host(HostSpec::from_site(site));
        }
        Prober::new(b.build(), 5)
    }

    #[test]
    fn geoping_maps_to_a_nearby_landmark() {
        let p = prober(16);
        let hosts = p.hosts();
        let target = hosts[0].id; // Cornell (Ithaca)
        let landmarks: Vec<NodeId> = hosts[1..].iter().map(|h| h.id).collect();
        let est = GeoPing::new().localize(&p, &landmarks, target);
        let point = est.point.unwrap();
        let truth = p.network().node(target).location;
        // GeoPing can only answer with a landmark position, and last-mile
        // delay differences routinely push it past the geographically nearest
        // landmark (this is exactly the long tail the paper reports for it).
        // It must still land on the right side of the continent.
        let err = great_circle_km(point, truth);
        assert!(err < 1500.0, "error {err:.0} km");
        // And the answer must be one of the landmark positions exactly.
        let is_landmark_position = landmarks
            .iter()
            .any(|&lm| great_circle_km(p.network().node(lm).location, point) < 1e-6);
        assert!(is_landmark_position);
        assert!(
            est.region.is_none(),
            "GeoPing produces point estimates only"
        );
    }

    #[test]
    fn geoping_with_no_landmarks_is_unknown() {
        let p = prober(4);
        let hosts = p.hosts();
        let est = GeoPing::new().localize(&p, &[], hosts[0].id);
        assert!(est.point.is_none());
        let est = GeoPing::new().localize(&p, &[hosts[0].id], hosts[0].id);
        assert!(est.point.is_none());
    }

    #[test]
    fn geoping_is_deterministic_over_a_recorded_dataset() {
        let p = prober(8);
        let ds = octant_netsim::MeasurementDataset::capture(&p);
        let hosts = ds.host_ids();
        let landmarks: Vec<NodeId> = hosts[1..].to_vec();
        let a = GeoPing::new().localize(&ds, &landmarks, hosts[0]);
        let b = GeoPing::new().localize(&ds, &landmarks, hosts[0]);
        assert_eq!(
            a.point.map(|p| (p.lat, p.lon)),
            b.point.map(|p| (p.lat, p.lon))
        );
    }
}
