//! # octant-baselines
//!
//! Reimplementations of the geolocalization techniques the Octant paper
//! compares against (§3, §4):
//!
//! * [`GeoPing`] — maps the target to the landmark whose latency "signature"
//!   is most similar (Padmanabhan & Subramanian, IP2Geo).
//! * [`GeoTrack`] — traceroutes toward the target and localizes it to the
//!   last on-path router whose DNS name reveals a city (IP2Geo).
//! * [`GeoLim`] — constraint-based geolocation (Gueye et al., CBG): each
//!   landmark derives a *best line* upper bound on distance per unit latency
//!   from inter-landmark measurements, and the target is placed at the
//!   centroid of the intersection of the resulting disks.
//! * [`SpeedOfLight`] — the naive multilateration using only the 2/3-c
//!   physical bound; a floor for how much the calibrated techniques help.
//!
//! All of them implement [`octant::Geolocator`], so the evaluation harness
//! and the figure generators treat them exactly like Octant itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geolim;
pub mod geoping;
pub mod geotrack;
pub mod sol;

pub use geolim::GeoLim;
pub use geoping::GeoPing;
pub use geotrack::GeoTrack;
pub use sol::SpeedOfLight;

use octant::Geolocator;

/// The full comparison suite: Octant's competitors in the order the paper
/// lists them.
pub fn all_baselines() -> Vec<Box<dyn Geolocator>> {
    vec![
        Box::new(GeoLim::default()),
        Box::new(GeoPing),
        Box::new(GeoTrack),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_suite_is_complete_and_named() {
        let names: Vec<String> = all_baselines()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        assert_eq!(names, vec!["GeoLim", "GeoPing", "GeoTrack"]);
    }
}
