//! GeoLim / CBG (Gueye et al.): constraint-based geolocation with best-line
//! calibration and strict intersection.
//!
//! Each landmark fits a *best line* `dist ≤ m·rtt + b` over its
//! inter-landmark (latency, distance) observations — the tightest straight
//! line lying above every observation. A measurement to the target then
//! yields a disk of radius `m·rtt + b` around the landmark, and the target is
//! estimated at the centroid of the intersection of all disks.
//!
//! Unlike Octant, GeoLim (a) uses only positive information, (b) collapses
//! the calibration to a single straight line, and (c) intersects constraints
//! strictly — a single overly aggressive landmark empties the region. That
//! last property is what Figure 4 of the Octant paper shows: GeoLim's hit
//! rate *drops* as landmarks are added. We reproduce it faithfully: the
//! reported region is the strict intersection (possibly empty); only the
//! point estimate falls back to a greedy non-empty intersection so that an
//! error CDF can still be computed.

use octant::framework::{Geolocator, LocationEstimate};
use octant::solver::SolveReport;
use octant_geo::distance::great_circle;
use octant_geo::point::GeoPoint;
use octant_geo::projection::AzimuthalEquidistant;
use octant_geo::units::{Distance, Latency};
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use octant_region::GeoRegion;

/// Configuration of the GeoLim baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoLimConfig {
    /// Minimum number of calibration points required to fit a best line;
    /// below this the speed-of-light bound is used.
    pub min_calibration_points: usize,
    /// Additive slack (km) on the best line, as used by CBG to absorb the
    /// landmark position uncertainty. Zero reproduces the strictest variant.
    pub slack_km: f64,
}

impl Default for GeoLimConfig {
    fn default() -> Self {
        GeoLimConfig {
            min_calibration_points: 4,
            slack_km: 0.0,
        }
    }
}

/// The GeoLim baseline.
#[derive(Debug, Clone, Default)]
pub struct GeoLim {
    config: GeoLimConfig,
}

impl GeoLim {
    /// Creates a GeoLim instance with the default configuration.
    pub fn new(config: GeoLimConfig) -> Self {
        GeoLim { config }
    }
}

/// Fits the best line `y = m·x + b` (m ≥ 0, b ≥ 0) that lies above every
/// point while minimizing the total vertical over-estimation. The optimum
/// passes through two of the points (or is the horizontal line through the
/// maximum), so candidate enumeration over pairs suffices.
fn best_line(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.is_empty() {
        return None;
    }
    let feasible = |m: f64, b: f64| -> bool {
        m >= 0.0 && b >= -1e-9 && points.iter().all(|&(x, y)| m * x + b >= y - 1e-6)
    };
    let objective = |m: f64, b: f64| -> f64 { points.iter().map(|&(x, y)| m * x + b - y).sum() };

    let max_y = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let mut best: Option<(f64, f64, f64)> = None;
    let mut consider = |m: f64, b: f64| {
        if feasible(m, b) {
            let cost = objective(m, b);
            if best.map(|(c, _, _)| cost < c).unwrap_or(true) {
                best = Some((cost, m, b.max(0.0)));
            }
        }
    };
    // Horizontal line through the maximum.
    consider(0.0, max_y);
    // Lines through every pair of points.
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let (x1, y1) = points[i];
            let (x2, y2) = points[j];
            if (x2 - x1).abs() < 1e-9 {
                continue;
            }
            let m = (y2 - y1) / (x2 - x1);
            let b = y1 - m * x1;
            consider(m, b);
            // Lines through one point with zero intercept.
        }
    }
    for &(x, y) in points {
        if x > 1e-9 {
            consider(y / x, 0.0);
        }
    }
    best.map(|(_, m, b)| (m, b))
}

impl Geolocator for GeoLim {
    fn name(&self) -> &str {
        "GeoLim"
    }

    fn localize(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        target: NodeId,
    ) -> LocationEstimate {
        // Landmarks with known positions.
        let mut lm_ids = Vec::new();
        let mut lm_pos = Vec::new();
        for &lm in landmarks {
            if lm == target {
                continue;
            }
            if let Some(p) = provider.advertised_location(lm) {
                lm_ids.push(lm);
                lm_pos.push(p);
            }
        }
        if lm_ids.is_empty() {
            return LocationEstimate::unknown();
        }

        // Per-landmark disks from best-line calibration.
        let mut disks: Vec<(GeoPoint, Distance, Latency)> = Vec::new();
        for i in 0..lm_ids.len() {
            let rtt = match provider.ping(lm_ids[i], target).min() {
                Some(l) => l,
                None => continue,
            };
            let mut points = Vec::new();
            for j in 0..lm_ids.len() {
                if i == j {
                    continue;
                }
                if let Some(peer_rtt) = provider.ping(lm_ids[i], lm_ids[j]).min() {
                    points.push((peer_rtt.ms(), great_circle(lm_pos[i], lm_pos[j]).km()));
                }
            }
            let sol = Distance::max_fiber_distance_for_rtt(rtt);
            let radius = if points.len() >= self.config.min_calibration_points {
                match best_line(&points) {
                    Some((m, b)) => {
                        Distance::from_km((m * rtt.ms() + b + self.config.slack_km).max(1.0))
                            .min(sol)
                    }
                    None => sol,
                }
            } else {
                sol
            };
            disks.push((lm_pos[i], radius, rtt));
        }
        if disks.is_empty() {
            return LocationEstimate::unknown();
        }

        // Projection centred on the landmark with the smallest RTT (GeoLim's
        // region is always near it).
        let anchor = disks
            .iter()
            .min_by(|a, b| {
                a.2.ms()
                    .partial_cmp(&b.2.ms())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|d| d.0)
            .unwrap_or(lm_pos[0]);
        let projection = AzimuthalEquidistant::new(anchor);

        // Strict intersection (the honest GeoLim region).
        let mut strict: Option<GeoRegion> = None;
        // Greedy non-empty intersection (for the point estimate).
        let mut greedy: Option<GeoRegion> = None;
        let mut applied = 0usize;
        let mut skipped = 0usize;
        for (center, radius, _) in &disks {
            let disk = GeoRegion::disk(projection, *center, *radius);
            strict = Some(match strict {
                None => disk.clone(),
                Some(prev) => prev.intersect(&disk),
            });
            greedy = Some(match greedy {
                None => {
                    applied += 1;
                    disk
                }
                Some(prev) => {
                    let candidate = prev.intersect(&disk);
                    if candidate.is_empty() {
                        skipped += 1;
                        prev
                    } else {
                        applied += 1;
                        candidate
                    }
                }
            });
        }
        let strict = strict.expect("at least one disk");
        let greedy = greedy.expect("at least one disk");

        let point = greedy.centroid().or_else(|| strict.centroid());
        let report = SolveReport {
            applied_positive: applied,
            skipped_positive: skipped,
            applied_negative: 0,
            skipped_negative: 0,
            final_area_km2: strict.area_km2(),
        };
        LocationEstimate {
            region: if strict.is_empty() {
                None
            } else {
                Some(strict)
            },
            point,
            report,
            target_height_ms: None,
            provenance: Default::default(),
            profile: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::distance::great_circle_km;
    use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use octant_netsim::probe::Prober;
    use octant_netsim::ObservationProvider;

    fn prober(n: usize) -> Prober {
        let mut b = NetworkBuilder::new(NetworkConfig::default());
        for site in octant_geo::sites::planetlab_51().iter().take(n) {
            b = b.add_host(HostSpec::from_site(site));
        }
        Prober::new(b.build(), 5)
    }

    #[test]
    fn best_line_lies_above_all_points_and_is_tight() {
        let points: Vec<(f64, f64)> = (1..=20)
            .map(|i| (i as f64, i as f64 * 60.0 + (i % 3) as f64 * 40.0))
            .collect();
        let (m, b) = best_line(&points).unwrap();
        for &(x, y) in &points {
            assert!(m * x + b >= y - 1e-6, "point ({x},{y}) above the best line");
        }
        // The line should touch the data (not be wildly above it).
        let max_gap = points
            .iter()
            .map(|&(x, y)| m * x + b - y)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_gap = points
            .iter()
            .map(|&(x, y)| m * x + b - y)
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_gap < 1e-6,
            "the best line must touch at least one point"
        );
        assert!(max_gap < 200.0, "best line is too loose ({max_gap} km)");
        assert!(best_line(&[]).is_none());
    }

    #[test]
    fn geolim_localizes_with_moderate_accuracy() {
        let p = prober(16);
        let hosts = p.hosts();
        let target = hosts[0].id;
        let landmarks: Vec<NodeId> = hosts[1..].iter().map(|h| h.id).collect();
        let est = GeoLim::default().localize(&p, &landmarks, target);
        let point = est.point.expect("GeoLim must produce a point estimate");
        let truth = p.network().node(target).location;
        let err = great_circle_km(point, truth);
        assert!(err < 1200.0, "error {err:.0} km");
    }

    #[test]
    fn geolim_strict_region_can_be_empty_with_many_landmarks() {
        // This is the over-constraining behaviour Figure 4 documents: we only
        // check that the implementation exposes it (region may be None) while
        // still returning a point estimate.
        let p = prober(24);
        let hosts = p.hosts();
        let mut empty_seen = false;
        for t in 0..6 {
            let target = hosts[t].id;
            let landmarks: Vec<NodeId> = hosts
                .iter()
                .map(|h| h.id)
                .filter(|&id| id != target)
                .collect();
            let est = GeoLim::default().localize(&p, &landmarks, target);
            assert!(est.point.is_some());
            if est.region.is_none() {
                empty_seen = true;
            }
        }
        // Not asserted to always happen (it depends on noise), but the field
        // must be usable either way; record the observation for the record.
        let _ = empty_seen;
    }

    #[test]
    fn geolim_without_landmarks_is_unknown() {
        let p = prober(4);
        let hosts = p.hosts();
        assert!(GeoLim::default()
            .localize(&p, &[], hosts[0].id)
            .point
            .is_none());
    }

    #[test]
    fn geolim_region_when_present_contains_the_point_estimate() {
        let p = prober(12);
        let hosts = p.hosts();
        let target = hosts[3].id;
        let landmarks: Vec<NodeId> = hosts
            .iter()
            .map(|h| h.id)
            .filter(|&id| id != target)
            .collect();
        let est = GeoLim::default().localize(&p, &landmarks, target);
        if let (Some(region), Some(point)) = (est.region.as_ref(), est.point) {
            // The greedy point comes from a superset chain of the strict
            // region; when the strict region is non-empty they coincide.
            assert!(region.contains(point) || region.distance_to(point).km() < 100.0);
        }
    }
}
