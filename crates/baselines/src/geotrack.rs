//! GeoTrack (IP2Geo): localize to the last recognizable router on the path.
//!
//! GeoTrack traceroutes toward the target, extracts geographic hints from the
//! DNS names of on-path routers, and places the target at the last router
//! whose location is recognizable. With several vantage points available we
//! follow the natural extension used in the paper's evaluation: every
//! landmark traceroutes to the target and the recognizable router with the
//! smallest residual latency to the target wins.

use octant::framework::{Geolocator, LocationEstimate};
use octant::solver::SolveReport;
use octant_netsim::dns;
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;

/// The GeoTrack baseline.
#[derive(Debug, Clone, Default)]
pub struct GeoTrack;

impl GeoTrack {
    /// Creates a GeoTrack instance.
    pub fn new() -> Self {
        GeoTrack
    }
}

impl Geolocator for GeoTrack {
    fn name(&self) -> &str {
        "GeoTrack"
    }

    fn localize(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        target: NodeId,
    ) -> LocationEstimate {
        // (residual latency to target, city location) of the best hint so far.
        let mut best: Option<(f64, octant_geo::GeoPoint)> = None;

        for &lm in landmarks {
            if lm == target {
                continue;
            }
            let end_to_end = match provider.ping(lm, target).min() {
                Some(l) => l.ms(),
                None => continue,
            };
            let hops = provider.traceroute(lm, target);
            // Walk from the target backwards: the last recognizable router.
            for hop in hops.iter().rev() {
                if let Some(city) = dns::parse_router_city(&hop.hostname) {
                    let residual = (end_to_end - hop.rtt.ms()).max(0.0);
                    if best.map(|(r, _)| residual < r).unwrap_or(true) {
                        best = Some((residual, city.location()));
                    }
                    break;
                }
            }
        }

        match best {
            Some((_, point)) => LocationEstimate {
                region: None,
                point: Some(point),
                report: SolveReport::default(),
                target_height_ms: None,
                provenance: Default::default(),
                profile: None,
            },
            None => LocationEstimate::unknown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::distance::great_circle_km;
    use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use octant_netsim::probe::Prober;
    use octant_netsim::ObservationProvider;

    fn prober(n: usize, undns_miss_rate: f64) -> Prober {
        let mut b = NetworkBuilder::new(NetworkConfig {
            undns_miss_rate,
            access_undns_miss_rate: undns_miss_rate,
            ..NetworkConfig::default()
        });
        for site in octant_geo::sites::planetlab_51().iter().take(n) {
            b = b.add_host(HostSpec::from_site(site));
        }
        Prober::new(b.build(), 5)
    }

    #[test]
    fn geotrack_places_the_target_near_its_access_city() {
        let p = prober(16, 0.0);
        let hosts = p.hosts();
        let target = hosts[0].id;
        let landmarks: Vec<NodeId> = hosts[1..].iter().map(|h| h.id).collect();
        let est = GeoTrack::new().localize(&p, &landmarks, target);
        let point = est
            .point
            .expect("with fully parseable names GeoTrack must answer");
        let truth = p.network().node(target).location;
        // The last recognizable router is typically the target's access/backbone
        // city, so the error is bounded by a metro-to-backbone distance.
        let err = great_circle_km(point, truth);
        assert!(err < 500.0, "error {err:.0} km");
        assert!(est.region.is_none());
    }

    #[test]
    fn geotrack_degrades_to_unknown_when_no_names_parse() {
        let p = prober(8, 1.0);
        let hosts = p.hosts();
        let target = hosts[0].id;
        let landmarks: Vec<NodeId> = hosts[1..].iter().map(|h| h.id).collect();
        let est = GeoTrack::new().localize(&p, &landmarks, target);
        assert!(
            est.point.is_none(),
            "with no parseable router names GeoTrack cannot answer"
        );
    }

    #[test]
    fn geotrack_without_landmarks_is_unknown() {
        let p = prober(4, 0.0);
        let hosts = p.hosts();
        assert!(GeoTrack::new()
            .localize(&p, &[], hosts[0].id)
            .point
            .is_none());
    }
}
