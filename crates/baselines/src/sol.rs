//! Speed-of-light multilateration: the weakest sound baseline.
//!
//! Every landmark's RTT bounds the target's distance by the 2/3-c physical
//! limit (§2.1 calls these constraints "so loose that they lead to very low
//! precision"). Intersecting those disks and taking the centroid gives a
//! floor against which the calibrated techniques are compared in the
//! ablation benchmarks.

use octant::framework::{Geolocator, LocationEstimate};
use octant::solver::SolveReport;
use octant_geo::projection::AzimuthalEquidistant;
use octant_geo::units::Distance;
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use octant_region::GeoRegion;

/// The speed-of-light-only baseline.
#[derive(Debug, Clone, Default)]
pub struct SpeedOfLight;

impl SpeedOfLight {
    /// Creates an instance.
    pub fn new() -> Self {
        SpeedOfLight
    }
}

impl Geolocator for SpeedOfLight {
    fn name(&self) -> &str {
        "SpeedOfLight"
    }

    fn localize(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        target: NodeId,
    ) -> LocationEstimate {
        let mut disks = Vec::new();
        let mut anchor = None;
        let mut best_rtt = f64::INFINITY;
        for &lm in landmarks {
            if lm == target {
                continue;
            }
            let (Some(pos), Some(rtt)) = (
                provider.advertised_location(lm),
                provider.ping(lm, target).min(),
            ) else {
                continue;
            };
            if rtt.ms() < best_rtt {
                best_rtt = rtt.ms();
                anchor = Some(pos);
            }
            disks.push((pos, Distance::max_fiber_distance_for_rtt(rtt)));
        }
        let Some(anchor) = anchor else {
            return LocationEstimate::unknown();
        };
        let projection = AzimuthalEquidistant::new(anchor);
        let mut region: Option<GeoRegion> = None;
        let mut applied = 0;
        let mut skipped = 0;
        for (center, radius) in disks {
            let disk = GeoRegion::disk(projection, center, radius);
            region = Some(match region {
                None => {
                    applied += 1;
                    disk
                }
                Some(prev) => {
                    let next = prev.intersect(&disk);
                    if next.is_empty() {
                        // Physically impossible unless a measurement is missing;
                        // keep the previous sound region.
                        skipped += 1;
                        prev
                    } else {
                        applied += 1;
                        next
                    }
                }
            });
        }
        let region = region.expect("at least one landmark produced a disk");
        let point = region.centroid();
        LocationEstimate {
            report: SolveReport {
                applied_positive: applied,
                skipped_positive: skipped,
                applied_negative: 0,
                skipped_negative: 0,
                final_area_km2: region.area_km2(),
            },
            region: Some(region),
            point,
            target_height_ms: None,
            provenance: Default::default(),
            profile: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::distance::great_circle_km;
    use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use octant_netsim::probe::Prober;
    use octant_netsim::ObservationProvider;

    fn prober(n: usize) -> Prober {
        let mut b = NetworkBuilder::new(NetworkConfig::default());
        for site in octant_geo::sites::planetlab_51().iter().take(n) {
            b = b.add_host(HostSpec::from_site(site));
        }
        Prober::new(b.build(), 5)
    }

    #[test]
    fn speed_of_light_region_always_contains_the_truth() {
        // The 2/3-c bound is physically sound in the simulator, so the strict
        // intersection must contain the target every single time.
        let p = prober(14);
        let hosts = p.hosts();
        for t in 0..6 {
            let target = hosts[t].id;
            let landmarks: Vec<NodeId> = hosts
                .iter()
                .map(|h| h.id)
                .filter(|&id| id != target)
                .collect();
            let est = SpeedOfLight::new().localize(&p, &landmarks, target);
            let truth = p.network().node(target).location;
            let region = est
                .region
                .expect("sound constraints cannot produce an empty region");
            assert!(
                region.contains(truth),
                "target {t} escaped the speed-of-light region"
            );
            assert_eq!(est.report.skipped_positive, 0);
        }
    }

    #[test]
    fn speed_of_light_is_much_less_precise_than_informative_methods() {
        let p = prober(14);
        let hosts = p.hosts();
        let target = hosts[0].id;
        let landmarks: Vec<NodeId> = hosts
            .iter()
            .map(|h| h.id)
            .filter(|&id| id != target)
            .collect();
        let sol = SpeedOfLight::new().localize(&p, &landmarks, target);
        let truth = p.network().node(target).location;
        let err = great_circle_km(sol.point.unwrap(), truth);
        // It still produces an estimate somewhere on the right continent.
        assert!(err < 3000.0, "error {err:.0} km");
        assert!(
            sol.region.unwrap().area_km2() > 10_000.0,
            "the SoL region should be large"
        );
    }

    #[test]
    fn unknown_without_landmarks() {
        let p = prober(4);
        let hosts = p.hosts();
        assert!(SpeedOfLight::new()
            .localize(&p, &[], hosts[0].id)
            .point
            .is_none());
    }
}
