//! The Octant framework: orchestration of calibration, heights, piecewise
//! localization, geographic constraints and the weighted solver.

use crate::batch::{LandmarkModel, TargetScratch};
use crate::calibration::{Calibration, CalibrationConfig, CalibrationSample};
use crate::constraint::{sanitize_weight, Constraint};
use crate::heights::{adjust_rtt, estimate_target_height, Heights};
use crate::piecewise;
use crate::pipeline::{EvidencePipeline, ProvenanceReport, SourceReport, TargetContext};
use crate::solver::{SolveReport, Solver, SolverConfig};
use octant_geo::distance::great_circle;
use octant_geo::point::GeoPoint;
use octant_geo::projection::AzimuthalEquidistant;
use octant_geo::units::{Distance, Latency};
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use octant_region::GeoRegion;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How on-path routers are localized for the piecewise constraints of §2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterLocalization {
    /// Do not use router-derived constraints at all.
    Off,
    /// Use the router's DNS-revealed city as its position estimate
    /// (the `undns` approach; cheap and effective).
    CityHint,
    /// Localize each router with Octant itself from the landmarks' pings to
    /// it, then use the resulting region as a secondary landmark
    /// (the full recursive construction of §2).
    Recursive,
}

/// Configuration of the full Octant pipeline. The defaults correspond to the
/// complete system evaluated in the paper; the individual switches exist for
/// the ablation experiments.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`OctantConfig::default`] (or [`OctantConfig::minimal`]) and customize
/// through the builder-style `with_*` setters, so new evidence knobs can be
/// added without breaking downstream code.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct OctantConfig {
    /// Latency→distance calibration parameters (§2.1).
    pub calibration: CalibrationConfig,
    /// Estimate and remove per-node queuing delays (§2.2).
    pub use_heights: bool,
    /// Derive negative (exclusion) constraints from the calibration's lower
    /// facet (§2.1, §2).
    pub use_negative_constraints: bool,
    /// Strategy for router-derived constraints (§2.3).
    pub router_localization: RouterLocalization,
    /// Use the WHOIS registration of the target's prefix as a positive hint
    /// (§2.5).
    pub use_whois: bool,
    /// Remove oceans/uninhabitable areas from the final estimate (§2.5).
    pub use_landmass_constraint: bool,
    /// Decay constant (ms) of the exponential latency weighting (§2.4).
    pub weight_decay_ms: f64,
    /// Minimum area (km²) the solver must preserve (§2.4's size threshold).
    pub min_region_area_km2: f64,
    /// Radius of the positive constraint derived from a WHOIS city record.
    pub whois_radius_km: f64,
    /// Weight of the WHOIS constraint (kept modest: records are often stale).
    pub whois_weight: f64,
    /// Metro-scale uncertainty added around a router localized by city hint.
    pub router_city_uncertainty_km: f64,
    /// Maximum number of router-derived constraints per target.
    pub max_router_constraints: usize,
    /// Floor on positive-constraint radii (km): even a vanishing adjusted
    /// latency cannot claim better-than-metro accuracy.
    pub min_positive_radius_km: f64,
    /// Height adjustment never removes more than this fraction of the raw
    /// latency, guarding against over-estimated heights collapsing a
    /// constraint to nothing.
    pub max_height_adjustment_frac: f64,
    /// Boundary-simplification tolerance (km) applied to the running region
    /// estimate between solver iterations (see
    /// [`crate::solver::SolverConfig::simplify_tolerance_km`]). Kept far
    /// below the curve-flattening tolerance so it reclaims scanline seam
    /// fragmentation without moving any decision boundary.
    pub region_simplify_tolerance_km: f64,
    /// Parse the *target's own* hostname for `undns`-style city codes and
    /// use the resolved city as a positive hint (the `DnsNameSource`). Off
    /// by default: arbitrary hostnames can contain code-like labels.
    pub use_dns_hints: bool,
    /// Radius of the positive constraint derived from a target DNS hint.
    pub dns_hint_radius_km: f64,
    /// Weight of the target DNS hint (names are sometimes stale or wrong).
    pub dns_hint_weight: f64,
    /// Fold in the coarse population-density prior as a low-weight positive
    /// constraint (the `PopulationPrior` source). Off by default.
    pub use_population_prior: bool,
    /// Grid cell size (degrees) of the population prior.
    pub population_cell_deg: f64,
    /// Minimum summed metro population (thousands) for a grid cell to count
    /// as populated.
    pub population_min_cell_k: u32,
    /// Weight of the population prior (kept low: it is a prior, not a
    /// measurement).
    pub population_weight: f64,
}

impl Default for OctantConfig {
    fn default() -> Self {
        OctantConfig {
            calibration: CalibrationConfig::default(),
            use_heights: true,
            use_negative_constraints: true,
            router_localization: RouterLocalization::CityHint,
            use_whois: true,
            use_landmass_constraint: true,
            weight_decay_ms: crate::constraint::DEFAULT_WEIGHT_DECAY_MS,
            min_region_area_km2: 10_000.0,
            whois_radius_km: 250.0,
            whois_weight: 0.25,
            router_city_uncertainty_km: 60.0,
            max_router_constraints: 12,
            min_positive_radius_km: 50.0,
            max_height_adjustment_frac: 0.6,
            region_simplify_tolerance_km: 0.25,
            use_dns_hints: false,
            dns_hint_radius_km: 150.0,
            dns_hint_weight: 0.35,
            use_population_prior: false,
            population_cell_deg: 7.5,
            population_min_cell_k: 1500,
            population_weight: 0.15,
        }
    }
}

crate::config_setters!(OctantConfig {
    /// Sets the latency→distance calibration parameters (§2.1).
    with_calibration: calibration: CalibrationConfig,
    /// Enables/disables the §2.2 height (queuing delay) solve.
    with_use_heights: use_heights: bool,
    /// Enables/disables negative (exclusion) latency constraints.
    with_use_negative_constraints: use_negative_constraints: bool,
    /// Selects the §2.3 router localization strategy.
    with_router_localization: router_localization: RouterLocalization,
    /// Enables/disables the WHOIS positive hint (§2.5).
    with_use_whois: use_whois: bool,
    /// Enables/disables the landmass restriction (§2.5).
    with_use_landmass_constraint: use_landmass_constraint: bool,
    /// Sets the exponential latency-weight decay constant (ms, §2.4).
    with_weight_decay_ms: weight_decay_ms: f64,
    /// Sets the solver's minimum preserved area (km², §2.4).
    with_min_region_area_km2: min_region_area_km2: f64,
    /// Sets the WHOIS constraint radius (km).
    with_whois_radius_km: whois_radius_km: f64,
    /// Sets the WHOIS constraint weight.
    with_whois_weight: whois_weight: f64,
    /// Sets the metro uncertainty around city-hinted routers (km).
    with_router_city_uncertainty_km: router_city_uncertainty_km: f64,
    /// Caps the number of router-derived constraints per target.
    with_max_router_constraints: max_router_constraints: usize,
    /// Sets the floor on positive-constraint radii (km).
    with_min_positive_radius_km: min_positive_radius_km: f64,
    /// Caps the fraction of a raw RTT the height adjustment may remove.
    with_max_height_adjustment_frac: max_height_adjustment_frac: f64,
    /// Sets the between-iterations region simplification tolerance (km).
    with_region_simplify_tolerance_km: region_simplify_tolerance_km: f64,
    /// Enables/disables target-hostname DNS hints (`DnsNameSource`).
    with_use_dns_hints: use_dns_hints: bool,
    /// Sets the DNS-hint constraint radius (km).
    with_dns_hint_radius_km: dns_hint_radius_km: f64,
    /// Sets the DNS-hint constraint weight.
    with_dns_hint_weight: dns_hint_weight: f64,
    /// Enables/disables the population-density prior (`PopulationPrior`).
    with_use_population_prior: use_population_prior: bool,
    /// Sets the population prior's grid cell size (degrees).
    with_population_cell_deg: population_cell_deg: f64,
    /// Sets the population prior's per-cell population threshold (thousands).
    with_population_min_cell_k: population_min_cell_k: u32,
    /// Sets the population prior's constraint weight.
    with_population_weight: population_weight: f64,
});

impl OctantConfig {
    /// A configuration with every optional mechanism disabled: pure
    /// end-to-end latency constraints with speed-of-light/hull calibration.
    /// Useful as an ablation baseline.
    pub fn minimal() -> Self {
        OctantConfig {
            use_heights: false,
            use_negative_constraints: false,
            router_localization: RouterLocalization::Off,
            use_whois: false,
            use_landmass_constraint: false,
            ..OctantConfig::default()
        }
    }
}

/// The location estimate of an on-path router, as consumed by the §2.3
/// recursive piecewise constraints: the region (preferred) or point the
/// router's own Octant sub-solve produced. This is the slice of a full
/// [`LocationEstimate`] that the recursive constraint construction actually
/// uses, split out so router estimates can be cached and shared across
/// targets (see [`RouterEstimateSource`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RouterEstimate {
    /// The router's estimated region, in the sub-solve's own projection
    /// (callers reproject it onto the target's projection).
    pub region: Option<GeoRegion>,
    /// The router's point estimate, used when no region survived.
    pub point: Option<GeoPoint>,
}

/// A source of recursive router location estimates (§2.3).
///
/// The `RouterLocalization::Recursive` mode localizes each last-hop router
/// with a full Octant sub-solve. That sub-solve depends only on the
/// landmark model and the router — not on the target being localized — so a
/// serving layer can compute it **once per router per model version** and
/// reuse it across every target and request (`octant-service`'s
/// `RouterCache` does exactly that). When no source is supplied, the
/// framework computes estimates inline with
/// [`Octant::compute_router_estimate`], which is also the reference
/// implementation a caching source must delegate to on a miss: provided the
/// source returns exactly what `compute_router_estimate` would, cached and
/// uncached solves are bit-identical on a replay-stable provider.
pub trait RouterEstimateSource: Sync {
    /// Returns the location estimate for `router` under `model`.
    ///
    /// Implementations must return a value identical to
    /// `octant.compute_router_estimate(provider, model, router)` — caching
    /// is the intended freedom here, not approximation. The estimate is
    /// behind an [`std::sync::Arc`] so a caching source answers a hit with
    /// a pointer bump rather than cloning the router's region polygons (the
    /// framework only borrows the estimate).
    fn router_estimate(
        &self,
        octant: &Octant,
        provider: &dyn ObservationProvider,
        model: &LandmarkModel,
        router: NodeId,
    ) -> std::sync::Arc<RouterEstimate>;

    /// Optionally answers the §2.3 secondary-landmark dilation of the
    /// router's region by `radius` from a shared cache, expressed in the
    /// estimate's **own** projection (the caller reprojects it onto the
    /// target's). `None` (the default) makes the framework compute the
    /// dilation inline, exactly as without a source.
    ///
    /// A caching implementation may round `radius` **up** to a radius-class
    /// boundary so nearby residuals share one dilation (`octant-service`'s
    /// opt-in `dilation_radius_step_km`); the resulting constraint is
    /// slightly looser but never tighter, preserving soundness. With
    /// rounding enabled results are no longer bit-identical to the inline
    /// path — which is why it is opt-in and off by default.
    fn dilated_region(
        &self,
        router: NodeId,
        estimate: &RouterEstimate,
        radius: octant_geo::units::Distance,
    ) -> Option<std::sync::Arc<GeoRegion>> {
        let _ = (router, estimate, radius);
        None
    }
}

/// The result of localizing one target.
#[derive(Debug, Clone)]
pub struct LocationEstimate {
    /// The estimated location region βᵢ (non-convex, possibly disconnected).
    /// `None` only when not even a single landmark measurement was available.
    pub region: Option<GeoRegion>,
    /// The point estimate (the weighted centre of the region), used when a
    /// single answer is required.
    pub point: Option<GeoPoint>,
    /// What the solver did with the constraints.
    pub report: SolveReport,
    /// The target's estimated height (queuing delay) in milliseconds, when
    /// heights were enabled.
    pub target_height_ms: Option<f64>,
    /// Per-source provenance: what each evidence source contributed and how
    /// the solver disposed of it (empty for estimates produced outside the
    /// evidence pipeline, e.g. by the baseline techniques).
    pub provenance: ProvenanceReport,
    /// Per-stage wall-time breakdown of this solve, present only when the
    /// caller opted into profiling (e.g.
    /// [`crate::batch::BatchGeolocator::localize_batch_profiled`] or the
    /// service's `LocalizeOptions::with_profiling`). `None` costs nothing.
    pub profile: Option<octant_telemetry::StageProfile>,
}

impl LocationEstimate {
    /// An empty estimate (no usable measurements).
    pub fn unknown() -> Self {
        LocationEstimate {
            region: None,
            point: None,
            report: SolveReport::default(),
            target_height_ms: None,
            provenance: ProvenanceReport::default(),
            profile: None,
        }
    }
}

/// Anything that can localize a target from landmarks and observations.
/// Implemented by [`Octant`] and by every baseline in `octant-baselines`, so
/// the evaluation harness can treat them uniformly.
pub trait Geolocator {
    /// Human-readable name used in result tables ("Octant", "GeoLim", …).
    fn name(&self) -> &str;

    /// Localizes `target` using the given landmark hosts (whose advertised
    /// positions may be consulted) and the observation provider.
    fn localize(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        target: NodeId,
    ) -> LocationEstimate;
}

/// The Octant geolocalization framework: an [`OctantConfig`] plus an
/// [`EvidencePipeline`] of [`crate::pipeline::ConstraintSource`]s. The
/// default pipeline ([`EvidencePipeline::standard`]) reproduces the paper's
/// complete evidence mix; [`Octant::with_pipeline`] swaps in any other
/// composition.
#[derive(Debug, Clone)]
pub struct Octant {
    config: OctantConfig,
    pipeline: EvidencePipeline,
}

/// What [`Octant::prepare_landmarks_incremental`] reused versus recomputed.
/// Purely diagnostic — the produced model is bit-identical to a full
/// [`Octant::prepare_landmarks`] regardless of what was reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RecalibrationReport {
    /// The landmark roster, a position, or the dropped set differed from
    /// the previous model, so the delta had no baseline and a full rebuild
    /// ran instead.
    pub full_rebuild: bool,
    /// Ordered pairs re-measured through the provider (both endpoints
    /// untouched pairs are never re-queried).
    pub refreshed_pairs: usize,
    /// Ordered pairs whose minimum RTT was carried over from the previous
    /// model without a provider query.
    pub reused_pairs: usize,
    /// Refreshed pairs whose minimum actually moved. Zero means the
    /// previous model was returned wholesale.
    pub changed_pairs: usize,
    /// The heights solve landed on bitwise-identical queuing delays (always
    /// true when the previous model was reused wholesale).
    pub heights_reused: bool,
    /// Per-landmark calibration hulls carried over from the previous model.
    pub calibrations_reused: usize,
    /// Per-landmark calibration hulls re-fit from samples.
    pub calibrations_rebuilt: usize,
}

impl Octant {
    /// Creates an Octant instance with the given configuration and the
    /// standard evidence pipeline.
    pub fn new(config: OctantConfig) -> Self {
        Octant::with_pipeline(config, EvidencePipeline::standard())
    }

    /// Creates an Octant instance with an explicit evidence pipeline.
    pub fn with_pipeline(config: OctantConfig, pipeline: EvidencePipeline) -> Self {
        Octant { config, pipeline }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OctantConfig {
        &self.config
    }

    /// The evidence pipeline in use.
    pub fn pipeline(&self) -> &EvidencePipeline {
        &self.pipeline
    }

    /// An empty estimate whose provenance still honours the pipeline
    /// contract — one zeroed [`SourceReport`] per slot plus the model's
    /// dropped-landmark diagnostics — so "no answer" cases are debuggable
    /// through the same `provenance.source(id)` accessors as answers.
    fn unknown_estimate(&self, model: &LandmarkModel) -> LocationEstimate {
        LocationEstimate {
            provenance: ProvenanceReport {
                sources: self
                    .pipeline
                    .entries()
                    .iter()
                    .map(SourceReport::for_entry)
                    .collect(),
                dropped_landmarks: model.dropped_landmarks().len(),
            },
            ..LocationEstimate::unknown()
        }
    }

    /// Removes heights from a raw RTT, but never more than the configured
    /// fraction of it: over-estimated heights (which absorb route inflation)
    /// must not collapse a measurement to zero.
    pub(crate) fn bounded_adjust(
        &self,
        raw: Latency,
        landmark_height_ms: f64,
        target_height_ms: f64,
    ) -> Latency {
        let floor = raw * (1.0 - self.config.max_height_adjustment_frac.clamp(0.0, 1.0));
        adjust_rtt(raw, landmark_height_ms, target_height_ms).max(floor)
    }

    /// Computes the target-independent half of a solve — usable landmarks,
    /// the §2.2 height solve and the §2.1 per-landmark calibrations — once
    /// for a landmark set. The model can then be shared across every target
    /// localized against these landmarks (see [`crate::BatchGeolocator`]).
    pub fn prepare_landmarks(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
    ) -> LandmarkModel {
        self.prepare_excluding(provider, landmarks, None)
    }

    /// [`Octant::prepare_landmarks`] with one id excluded — the sequential
    /// leave-one-out path excludes the target itself from the landmark set.
    pub(crate) fn prepare_excluding(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        exclude: Option<NodeId>,
    ) -> LandmarkModel {
        // ---- Landmark positions -------------------------------------------------
        let mut lm_ids: Vec<NodeId> = Vec::new();
        let mut lm_pos: Vec<GeoPoint> = Vec::new();
        let mut dropped: Vec<NodeId> = Vec::new();
        for &lm in landmarks {
            if Some(lm) == exclude {
                continue;
            }
            if let Some(pos) = provider.advertised_location(lm) {
                lm_ids.push(lm);
                lm_pos.push(pos);
            } else {
                // A landmark without an advertised location cannot
                // contribute constraints. Record it instead of silently
                // dropping it, so partial-coverage datasets are diagnosable
                // from the model (and from every estimate's provenance).
                dropped.push(lm);
            }
        }

        // ---- Inter-landmark RTTs (for calibration and heights) ------------------
        let mut inter: HashMap<(usize, usize), Latency> = HashMap::new();
        for i in 0..lm_ids.len() {
            for j in 0..lm_ids.len() {
                if i == j {
                    continue;
                }
                if let Some(rtt) = provider.ping(lm_ids[i], lm_ids[j]).min() {
                    inter.insert((i, j), rtt);
                }
            }
        }

        // ---- Heights (§2.2) -----------------------------------------------------
        let heights = if self.config.use_heights {
            Heights::solve_landmarks(&lm_pos, &inter)
        } else {
            Heights::default()
        };

        // ---- Per-landmark calibration (§2.1) -------------------------------------
        let mut calibrations: Vec<Calibration> = Vec::with_capacity(lm_ids.len());
        let mut pooled: Vec<CalibrationSample> = Vec::new();
        for i in 0..lm_ids.len() {
            let mut samples = Vec::new();
            for j in 0..lm_ids.len() {
                if i == j {
                    continue;
                }
                if let Some(&rtt) = inter.get(&(i, j)) {
                    let adjusted = if self.config.use_heights {
                        self.bounded_adjust(rtt, heights.get_ms(i), heights.get_ms(j))
                    } else {
                        rtt
                    };
                    let sample = CalibrationSample {
                        latency: adjusted,
                        distance: great_circle(lm_pos[i], lm_pos[j]),
                    };
                    samples.push(sample);
                    pooled.push(sample);
                }
            }
            calibrations.push(Calibration::from_samples(samples, self.config.calibration));
        }
        let global_calibration = Calibration::from_samples(pooled, self.config.calibration);

        let inter_rtts = inter
            .iter()
            .map(|(&(i, j), &rtt)| ((lm_ids[i], lm_ids[j]), rtt))
            .collect();
        LandmarkModel {
            lm_ids,
            lm_pos,
            heights,
            calibrations,
            global_calibration,
            inter_rtts,
            dropped,
        }
    }

    /// Re-prepares a landmark model after some landmarks' observation sets
    /// changed, reusing the `previous` model's measurements and solves
    /// wherever they provably cannot have moved. The output is
    /// **bit-identical** to a from-scratch [`Octant::prepare_landmarks`]
    /// over the same provider state — the savings change *cost*, never the
    /// model (pinned by `tests/ingest_parity.rs`).
    ///
    /// `changed` must contain every landmark whose observations may differ
    /// from the state `previous` was prepared against (e.g.
    /// `ObservationStore::changed_since` in `octant-netsim`); landmarks
    /// outside the current set are ignored. Three reuse tiers apply:
    ///
    /// 1. **Unchanged pairs skip the provider** — only pairs with a changed
    ///    endpoint are re-pinged (`2·K·(L−1)` probes instead of `L·(L−1)`),
    ///    the dominant saving against a store or live prober.
    /// 2. **No pair moved → the previous model is reused wholesale** — the
    ///    common streaming case, since a repeat probe rarely lowers a
    ///    minimum RTT.
    /// 3. **Untouched landmarks keep their calibration hull** when the
    ///    heights solve lands on bitwise-identical queuing delays.
    ///
    /// If the landmark set, any advertised position, or the dropped set
    /// differs from `previous`, the delta has no defined baseline and the
    /// method falls back to a full rebuild (reported via
    /// [`RecalibrationReport::full_rebuild`]).
    pub fn prepare_landmarks_incremental(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        previous: &LandmarkModel,
        changed: &[NodeId],
    ) -> (LandmarkModel, RecalibrationReport) {
        // ---- Landmark roster (cheap; also the fallback trigger) -----------------
        let mut lm_ids: Vec<NodeId> = Vec::new();
        let mut lm_pos: Vec<GeoPoint> = Vec::new();
        let mut dropped: Vec<NodeId> = Vec::new();
        for &lm in landmarks {
            if let Some(pos) = provider.advertised_location(lm) {
                lm_ids.push(lm);
                lm_pos.push(pos);
            } else {
                dropped.push(lm);
            }
        }
        if lm_ids != previous.lm_ids || lm_pos != previous.lm_pos || dropped != previous.dropped {
            let model = self.prepare_landmarks(provider, landmarks);
            let report = RecalibrationReport {
                full_rebuild: true,
                refreshed_pairs: model.inter_rtts.len(),
                calibrations_rebuilt: model.lm_ids.len(),
                ..RecalibrationReport::default()
            };
            return (model, report);
        }

        // ---- Inter-landmark RTTs: re-ping only pairs with a changed endpoint ----
        let changed_set: std::collections::HashSet<NodeId> = changed.iter().copied().collect();
        let mut report = RecalibrationReport::default();
        let mut inter: HashMap<(usize, usize), Latency> = HashMap::new();
        // Landmarks adjacent to a pair whose minimum actually moved.
        let mut dirty = vec![false; lm_ids.len()];
        for i in 0..lm_ids.len() {
            for j in 0..lm_ids.len() {
                if i == j {
                    continue;
                }
                let key = (lm_ids[i], lm_ids[j]);
                let rtt = if changed_set.contains(&lm_ids[i]) || changed_set.contains(&lm_ids[j]) {
                    report.refreshed_pairs += 1;
                    let fresh = provider.ping(lm_ids[i], lm_ids[j]).min();
                    if fresh != previous.inter_rtts.get(&key).copied() {
                        report.changed_pairs += 1;
                        dirty[i] = true;
                        dirty[j] = true;
                    }
                    fresh
                } else {
                    // Neither endpoint changed, so `previous` already holds
                    // exactly what the provider would answer — including the
                    // pair's absence.
                    report.reused_pairs += 1;
                    previous.inter_rtts.get(&key).copied()
                };
                if let Some(rtt) = rtt {
                    inter.insert((i, j), rtt);
                }
            }
        }
        if report.changed_pairs == 0 {
            // Every refreshed pair round-tripped to the same minimum: the
            // previous model *is* the from-scratch model.
            report.heights_reused = true;
            report.calibrations_reused = lm_ids.len();
            return (previous.clone(), report);
        }

        // ---- Heights: always the full deterministic solve -----------------------
        // The least-squares system couples every landmark, so one moved pair
        // can shift all queuing-delay estimates; solving from the complete
        // `inter` map keeps the result bit-identical to a full prepare.
        let heights = if self.config.use_heights {
            Heights::solve_landmarks(&lm_pos, &inter)
        } else {
            Heights::default()
        };
        report.heights_reused = heights == previous.heights;

        // ---- Calibrations: rebuild hulls only where inputs moved ----------------
        // Sample vectors are recomputed for every landmark (cheap pure
        // arithmetic, and the pooled calibration needs them in the exact
        // i-major order of a full prepare); the convex-hull fit is reused
        // for landmarks whose samples provably match the previous model's.
        let mut calibrations: Vec<Calibration> = Vec::with_capacity(lm_ids.len());
        let mut pooled: Vec<CalibrationSample> = Vec::new();
        for i in 0..lm_ids.len() {
            let mut samples = Vec::new();
            for j in 0..lm_ids.len() {
                if i == j {
                    continue;
                }
                if let Some(&rtt) = inter.get(&(i, j)) {
                    let adjusted = if self.config.use_heights {
                        self.bounded_adjust(rtt, heights.get_ms(i), heights.get_ms(j))
                    } else {
                        rtt
                    };
                    let sample = CalibrationSample {
                        latency: adjusted,
                        distance: great_circle(lm_pos[i], lm_pos[j]),
                    };
                    samples.push(sample);
                    pooled.push(sample);
                }
            }
            if report.heights_reused && !dirty[i] {
                report.calibrations_reused += 1;
                calibrations.push(previous.calibrations[i].clone());
            } else {
                report.calibrations_rebuilt += 1;
                calibrations.push(Calibration::from_samples(samples, self.config.calibration));
            }
        }
        let global_calibration = Calibration::from_samples(pooled, self.config.calibration);

        let inter_rtts = inter
            .iter()
            .map(|(&(i, j), &rtt)| ((lm_ids[i], lm_ids[j]), rtt))
            .collect();
        let model = LandmarkModel {
            lm_ids,
            lm_pos,
            heights,
            calibrations,
            global_calibration,
            inter_rtts,
            dropped,
        };
        (model, report)
    }

    /// Localizes one target against a prepared [`LandmarkModel`]. The model
    /// must have been prepared by an `Octant` with this configuration.
    ///
    /// A target that is itself one of the model's landmarks is routed
    /// through the sequential leave-one-out path (a model excluding it is
    /// prepared on the spot): its own measurements must never calibrate its
    /// own solve, and silently reusing the shared model would return a
    /// self-confirming, over-tight estimate.
    pub fn localize_with_model(
        &self,
        provider: &dyn ObservationProvider,
        model: &LandmarkModel,
        target: NodeId,
    ) -> LocationEstimate {
        if model.contains_landmark(target) {
            return self.localize(provider, model.landmark_ids(), target);
        }
        let mut scratch = TargetScratch::default();
        self.localize_prepared(provider, model, target, true, None, &mut scratch)
    }

    /// [`Octant::localize_with_model`] with an explicit
    /// [`RouterEstimateSource`] consulted by the `Recursive` router mode
    /// instead of running each router sub-solve inline. Passing a caching
    /// source makes serving many targets behind shared routers pay for each
    /// router's sub-localization once; results are bit-identical to the
    /// inline path as long as the source honours its contract.
    pub fn localize_with_model_using(
        &self,
        provider: &dyn ObservationProvider,
        model: &LandmarkModel,
        target: NodeId,
        routers: Option<&dyn RouterEstimateSource>,
    ) -> LocationEstimate {
        if model.contains_landmark(target) {
            return self.localize(provider, model.landmark_ids(), target);
        }
        let mut scratch = TargetScratch::default();
        self.localize_prepared(provider, model, target, true, routers, &mut scratch)
    }

    /// Computes the recursive §2.3 location estimate of one on-path router:
    /// a fresh Octant sub-solve (router constraints and WHOIS disabled) from
    /// the model's landmarks' measurements to the router. This is the
    /// reference computation behind [`RouterEstimateSource`] — the inline
    /// `Recursive` path calls it per router encounter, and a caching source
    /// calls it once per `(model, router)` and replays the result.
    ///
    /// Sub-solves always run the **standard** evidence pipeline (with
    /// router and WHOIS evidence disabled via the config), independent of
    /// the parent's pipeline: router estimates are shared across requests,
    /// so they must not depend on per-request source selections.
    pub fn compute_router_estimate(
        &self,
        provider: &dyn ObservationProvider,
        model: &LandmarkModel,
        router: NodeId,
    ) -> RouterEstimate {
        let sub = Octant::new(OctantConfig {
            router_localization: RouterLocalization::Off,
            use_whois: false,
            ..self.config
        });
        let est = sub.localize_node(provider, &model.lm_ids, router, false);
        RouterEstimate {
            region: est.region,
            point: est.point,
        }
    }

    /// Localizes an arbitrary node (host or router) for which the landmarks
    /// have ping measurements. This is the entry point used both for targets
    /// and, recursively, for on-path routers.
    fn localize_node(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        target: NodeId,
        allow_router_constraints: bool,
    ) -> LocationEstimate {
        let model = self.prepare_excluding(provider, landmarks, Some(target));
        let mut scratch = TargetScratch::default();
        self.localize_prepared(
            provider,
            &model,
            target,
            allow_router_constraints,
            None,
            &mut scratch,
        )
    }

    /// The target-dependent half of a solve, against a prepared model and
    /// with caller-owned scratch buffers (the batch engine hands each worker
    /// thread one [`TargetScratch`] and reuses it across that worker's
    /// targets).
    pub(crate) fn localize_prepared(
        &self,
        provider: &dyn ObservationProvider,
        model: &LandmarkModel,
        target: NodeId,
        allow_router_constraints: bool,
        routers: Option<&dyn RouterEstimateSource>,
        scratch: &mut TargetScratch,
    ) -> LocationEstimate {
        let lm_ids = &model.lm_ids;
        let lm_pos = &model.lm_pos;
        let heights = &model.heights;
        if lm_ids.is_empty() {
            return self.unknown_estimate(model);
        }

        // ---- Target RTTs (minimum over the probes) ------------------------------
        scratch.target_rtts.clear();
        scratch
            .target_rtts
            .extend(lm_ids.iter().map(|&lm| provider.ping(lm, target).min()));
        let target_rtts = &scratch.target_rtts;
        if target_rtts.iter().all(|r| r.is_none()) {
            return self.unknown_estimate(model);
        }

        let target_height = estimate_target_height(lm_pos, heights, target_rtts);
        let target_height_ms = if self.config.use_heights {
            target_height.height_ms
        } else {
            0.0
        };

        // The projection is centred on the coarse position estimate so that
        // constraint disks suffer minimal distortion.
        let projection = AzimuthalEquidistant::new(target_height.coarse_position);

        let ctx = TargetContext {
            provider,
            model,
            octant: self,
            config: &self.config,
            target,
            target_rtts,
            target_height_ms,
            projection,
            allow_router_constraints,
            routers,
        };

        // ---- Evidence collection (§2.1–§2.5 as pipeline sources) ------------------
        // Constraints are concatenated in pipeline order; `ranges[i]` is the
        // slice source `i` contributed, so the solver's per-constraint
        // decisions can be attributed back to their source.
        scratch.constraints.clear();
        let constraints = &mut scratch.constraints;
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(self.pipeline.len());
        for entry in self.pipeline.entries() {
            let start = constraints.len();
            if entry.enabled() {
                let _span = octant_telemetry::span(entry.source().id().span_name());
                let mut emitted = entry.source().constraints(&ctx);
                let scale = entry.weight_scale();
                if scale != 1.0 {
                    for c in &mut emitted {
                        c.weight = sanitize_weight(c.weight * scale);
                    }
                }
                constraints.append(&mut emitted);
            }
            ranges.push((start, constraints.len()));
        }

        // ---- Solve -------------------------------------------------------------------
        let solver = Solver::new(
            SolverConfig::default()
                .with_min_region_area_km2(self.config.min_region_area_km2)
                .with_simplify_tolerance_km(self.config.region_simplify_tolerance_km),
        );
        let (mut region, report, applied) = solver.solve_traced(projection, constraints);

        // ---- Provenance + post-solve refinements (§2.5) ---------------------------
        let mut provenance = ProvenanceReport {
            sources: Vec::with_capacity(self.pipeline.len()),
            dropped_landmarks: model.dropped_landmarks().len(),
        };
        for (entry, &(start, end)) in self.pipeline.entries().iter().zip(&ranges) {
            let mut sr = SourceReport::for_entry(entry);
            for idx in start..end {
                let c = &constraints[idx];
                sr.total_weight += c.weight;
                if c.is_positive() {
                    sr.emitted_positive += 1;
                    if applied[idx] {
                        sr.applied_positive += 1;
                    } else {
                        sr.skipped_positive += 1;
                    }
                } else {
                    sr.emitted_negative += 1;
                    if applied[idx] {
                        sr.applied_negative += 1;
                    } else {
                        sr.skipped_negative += 1;
                    }
                }
            }
            if entry.enabled() && entry.source().refines() {
                let _span = octant_telemetry::span(entry.source().id().span_name());
                let before = region.area_km2();
                region = entry.source().refine(&ctx, region);
                sr.area_before_km2 = Some(before);
                sr.area_after_km2 = Some(region.area_km2());
            }
            provenance.sources.push(sr);
        }

        let point = weighted_point_estimate(
            &region,
            constraints,
            &mut scratch.candidates,
            &mut scratch.scored,
        )
        .or_else(|| region.centroid())
        .or(Some(target_height.coarse_position));
        LocationEstimate {
            region: if region.is_empty() {
                None
            } else {
                Some(region)
            },
            point,
            report,
            target_height_ms: if self.config.use_heights {
                Some(target_height_ms)
            } else {
                None
            },
            provenance,
            profile: None,
        }
    }

    /// Builds router-derived constraints for a target. In `Recursive` mode
    /// the per-router sub-solves are taken from `routers` when supplied
    /// (e.g. a cross-target cache) and computed inline otherwise. Called by
    /// the `RouterSource` pipeline stage, which owns the sort/truncate
    /// policy.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn router_constraints(
        &self,
        provider: &dyn ObservationProvider,
        model: &LandmarkModel,
        target_rtts: &[Option<Latency>],
        target: NodeId,
        target_height_ms: f64,
        projection: AzimuthalEquidistant,
        routers: Option<&dyn RouterEstimateSource>,
    ) -> Vec<Constraint> {
        let lm_ids = &model.lm_ids;
        let global_calibration = &model.global_calibration;
        let mut out = Vec::new();
        let mut seen_routers: HashMap<NodeId, Latency> = HashMap::new();

        for (i, &lm) in lm_ids.iter().enumerate() {
            let end_to_end = match target_rtts[i] {
                Some(r) => r,
                None => continue,
            };
            // The residual between the last router and the target contains the
            // target's own queuing delay; remove the estimated height (bounded
            // the same way as for the direct constraints) so the residual
            // reflects propagation as closely as possible.
            let end_to_end = if self.config.use_heights {
                self.bounded_adjust(end_to_end, 0.0, target_height_ms)
            } else {
                end_to_end
            };
            let hops = provider.traceroute(lm, target);
            if hops.is_empty() {
                continue;
            }
            match self.config.router_localization {
                RouterLocalization::Off => {}
                RouterLocalization::CityHint => {
                    if let Some(localized) = piecewise::last_localizable_hop(&hops, end_to_end) {
                        // Keep only the tightest residual per router.
                        let keep = seen_routers
                            .get(&localized.hop.node)
                            .map(|prev| localized.residual.ms() < prev.ms())
                            .unwrap_or(true);
                        if keep {
                            seen_routers.insert(localized.hop.node, localized.residual);
                            out.push(piecewise::city_hint_router_constraint(
                                projection,
                                &localized,
                                global_calibration,
                                Distance::from_km(self.config.router_city_uncertainty_km),
                                self.config.weight_decay_ms,
                            ));
                        }
                    }
                }
                RouterLocalization::Recursive => {
                    // Use the last hop (closest to the target) regardless of
                    // whether its name parses, and localize it with Octant
                    // itself from the landmarks' measurements to it.
                    let last = match hops.last() {
                        Some(h) => h,
                        None => continue,
                    };
                    let residual = Latency::from_ms((end_to_end.ms() - last.rtt.ms()).max(0.0));
                    let better = seen_routers
                        .get(&last.node)
                        .map(|prev| residual.ms() < prev.ms())
                        .unwrap_or(true);
                    if !better {
                        continue;
                    }
                    seen_routers.insert(last.node, residual);
                    let router_estimate = match routers {
                        Some(source) => source.router_estimate(self, provider, model, last.node),
                        None => std::sync::Arc::new(
                            self.compute_router_estimate(provider, model, last.node),
                        ),
                    };
                    // A caching source may answer the (expensive) region
                    // dilation from a shared radius-class cache; otherwise
                    // it is computed inline per encounter.
                    let cached_dilation = routers.and_then(|source| {
                        source.dilated_region(
                            last.node,
                            &router_estimate,
                            piecewise::secondary_landmark_radius(residual, global_calibration),
                        )
                    });
                    if let Some(dilated) = cached_dilation {
                        out.push(piecewise::secondary_landmark_constraint_from_dilated(
                            dilated.reproject(projection),
                            residual,
                            self.config.weight_decay_ms,
                            format!("router:{}", last.hostname),
                        ));
                    } else if let Some(router_region) = &router_estimate.region {
                        let anchored = router_region.reproject(projection);
                        out.push(piecewise::secondary_landmark_constraint(
                            &anchored,
                            residual,
                            global_calibration,
                            self.config.weight_decay_ms,
                            format!("router:{}", last.hostname),
                        ));
                    } else if let Some(p) = router_estimate.point {
                        let small = GeoRegion::disk(
                            projection,
                            p,
                            Distance::from_km(self.config.router_city_uncertainty_km),
                        );
                        out.push(piecewise::secondary_landmark_constraint(
                            &small,
                            residual,
                            global_calibration,
                            self.config.weight_decay_ms,
                            format!("router:{}", last.hostname),
                        ));
                    }
                }
            }
        }
        out
    }
}

impl Geolocator for Octant {
    fn name(&self) -> &str {
        "Octant"
    }

    fn localize(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        target: NodeId,
    ) -> LocationEstimate {
        self.localize_node(provider, landmarks, target, true)
    }
}

/// Looks up a host's descriptor from the provider's host list — the one
/// place the by-id scan lives (the WHOIS and DNS-name sources both need a
/// slice of it).
pub(crate) fn host_descriptor(
    provider: &dyn ObservationProvider,
    id: NodeId,
) -> Option<octant_netsim::observation::HostDescriptor> {
    provider.hosts().into_iter().find(|h| h.id == id)
}

/// Looks up a host's IP address from the provider's host list.
pub(crate) fn host_ip(provider: &dyn ObservationProvider, id: NodeId) -> Option<[u8; 4]> {
    host_descriptor(provider, id).map(|h| h.ip)
}

/// The weighted point estimate of §2.4: instead of the plain area centroid,
/// favour the part of the estimated region covered by the largest total
/// constraint weight. Implemented by scoring the centroid plus a fixed number
/// of deterministic region samples against the constraint set and averaging
/// the top quartile on the unit sphere.
///
/// `candidates` and `scored` are caller-owned scratch buffers (cleared here)
/// so the batch engine can reuse their capacity across targets.
fn weighted_point_estimate(
    region: &GeoRegion,
    constraints: &[Constraint],
    candidates: &mut Vec<GeoPoint>,
    scored: &mut Vec<(f64, GeoPoint)>,
) -> Option<GeoPoint> {
    use rand::SeedableRng;
    let centroid = region.centroid()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    candidates.clear();
    candidates.push(centroid);
    for _ in 0..160 {
        if let Some(p) = region.sample_point(&mut rng) {
            candidates.push(p);
        }
    }
    let score = |p: GeoPoint| -> f64 {
        constraints
            .iter()
            .map(|c| {
                if c.region.contains(p) {
                    if c.is_positive() {
                        c.weight
                    } else {
                        -c.weight
                    }
                } else {
                    0.0
                }
            })
            .sum()
    };
    scored.clear();
    scored.extend(candidates.iter().map(|&p| (score(p), p)));
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let top = &scored[..(scored.len() / 4).max(1)];
    let mut v = [0.0f64; 3];
    for (_, p) in top {
        let u = p.to_unit_vector();
        v[0] += u[0];
        v[1] += u[1];
        v[2] += u[2];
    }
    Some(GeoPoint::from_vector(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::distance::great_circle_km;
    use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use octant_netsim::latency::LatencyModel;
    use octant_netsim::probe::Prober;
    use octant_netsim::ObservationProvider;

    /// A small deployment (subset of the PlanetLab sites) keeps unit tests fast.
    fn small_prober(n: usize, seed: u64) -> Prober {
        let mut builder = NetworkBuilder::new(NetworkConfig {
            seed,
            ..NetworkConfig::default()
        });
        for site in octant_geo::sites::planetlab_51().iter().take(n) {
            builder = builder.add_host(HostSpec::from_site(site));
        }
        Prober::with_options(builder.build(), LatencyModel::default(), 0.1, 10, seed)
    }

    #[test]
    fn octant_localizes_a_target_with_usable_accuracy() {
        let prober = small_prober(16, 11);
        let hosts = prober.hosts();
        let octant = Octant::new(OctantConfig::default());
        // Localize the Cornell node using the other 15.
        let target = hosts[0].id;
        let landmarks: Vec<NodeId> = hosts[1..].iter().map(|h| h.id).collect();
        let est = octant.localize(&prober, &landmarks, target);
        let truth = prober.network().node(target).location;
        let point = est.point.expect("a point estimate must exist");
        let err = great_circle_km(point, truth);
        assert!(
            err < 600.0,
            "error {err:.0} km is implausibly large for 15 landmarks"
        );
        let region = est.region.expect("a region estimate must exist");
        assert!(region.area_km2() > 0.0);
        assert!(est.report.applied_positive >= 5);
    }

    #[test]
    fn estimate_region_usually_contains_the_truth() {
        let prober = small_prober(14, 23);
        let hosts = prober.hosts();
        let octant = Octant::new(OctantConfig::default());
        let mut hits = 0;
        let mut total = 0;
        for t in 0..6 {
            let target = hosts[t].id;
            let landmarks: Vec<NodeId> = hosts
                .iter()
                .map(|h| h.id)
                .filter(|&id| id != target)
                .collect();
            let est = octant.localize(&prober, &landmarks, target);
            if let Some(region) = est.region {
                total += 1;
                if region.contains(prober.network().node(target).location) {
                    hits += 1;
                }
            }
        }
        assert!(total >= 5, "almost every solve should produce a region");
        // With 13 landmarks the aggressively-derived hulls are sparse, so a
        // minority of regions may miss the truth; require that the mechanism
        // works for a meaningful share rather than a majority here (the
        // 51-landmark behaviour is covered by the figure4 harness).
        assert!(
            hits >= 2,
            "at least a third of the regions should contain the truth ({hits}/{total})"
        );
    }

    #[test]
    fn unknown_when_no_landmarks_are_usable() {
        let prober = small_prober(6, 3);
        let hosts = prober.hosts();
        let octant = Octant::new(OctantConfig::default());
        let est = octant.localize(&prober, &[], hosts[0].id);
        assert!(est.point.is_none());
        assert!(est.region.is_none());
        // Landmarks equal to the target are ignored.
        let est = octant.localize(&prober, &[hosts[0].id], hosts[0].id);
        assert!(est.point.is_none());
    }

    fn assert_models_identical(a: &LandmarkModel, b: &LandmarkModel) {
        assert_eq!(a.lm_ids, b.lm_ids);
        assert_eq!(a.lm_pos, b.lm_pos);
        assert_eq!(a.heights, b.heights);
        assert_eq!(a.calibrations, b.calibrations);
        assert_eq!(a.global_calibration, b.global_calibration);
        assert_eq!(a.inter_rtts, b.inter_rtts);
        assert_eq!(a.dropped, b.dropped);
    }

    #[test]
    fn incremental_prepare_with_no_changes_reuses_the_model_wholesale() {
        let ds = octant_netsim::MeasurementDataset::capture(&small_prober(10, 17));
        let landmarks = ds.host_ids();
        let octant = Octant::new(OctantConfig::default());
        let full = octant.prepare_landmarks(&ds, &landmarks);
        let (inc, report) = octant.prepare_landmarks_incremental(&ds, &landmarks, &full, &[]);
        assert_models_identical(&full, &inc);
        assert!(!report.full_rebuild);
        assert_eq!(report.refreshed_pairs, 0);
        assert_eq!(report.changed_pairs, 0);
        assert!(report.heights_reused);
        assert_eq!(report.calibrations_reused, landmarks.len());
        // Even re-probing some landmarks reuses everything when the minima
        // round-trip unchanged (the dataset is replay-stable).
        let touched = &landmarks[..3];
        let (inc, report) = octant.prepare_landmarks_incremental(&ds, &landmarks, &full, touched);
        assert_models_identical(&full, &inc);
        assert!(report.refreshed_pairs > 0);
        assert_eq!(report.changed_pairs, 0);
    }

    #[test]
    fn incremental_prepare_matches_full_prepare_after_observation_churn() {
        use octant_netsim::store::{ObservationRecord, StoreConfig};
        use octant_netsim::ObservationStore;
        let ds = octant_netsim::MeasurementDataset::capture(&small_prober(10, 19));
        let landmarks = ds.host_ids();
        let octant = Octant::new(OctantConfig::default());
        let store = ObservationStore::from_dataset(StoreConfig::default(), &ds);
        let v0 = store.version();
        let previous = octant.prepare_landmarks(&store, &landmarks);

        // A fresh, lower-minimum observation for two directed pairs touching
        // one landmark: its observation set changed, the rest did not.
        let faster = |from, to| {
            let mut obs = ds.ping(from, to);
            obs.samples.push(obs.min().unwrap() * 0.9);
            ObservationRecord::Ping {
                from,
                to,
                observation: obs,
                seq: 1,
            }
        };
        store.ingest(vec![
            faster(landmarks[0], landmarks[4]),
            faster(landmarks[4], landmarks[0]),
        ]);
        let changed = store.changed_since(v0);
        assert_eq!(changed.len(), 2);

        let full = octant.prepare_landmarks(&store, &landmarks);
        let (inc, report) =
            octant.prepare_landmarks_incremental(&store, &landmarks, &previous, &changed);
        assert_models_identical(&full, &inc);
        assert!(!report.full_rebuild);
        assert_eq!(report.changed_pairs, 2);
        // Only pairs adjacent to the two touched landmarks were re-measured.
        let l = landmarks.len();
        assert_eq!(report.refreshed_pairs + report.reused_pairs, l * (l - 1));
        assert!(report.refreshed_pairs < l * (l - 1) / 2);
    }

    #[test]
    fn incremental_prepare_falls_back_on_roster_change() {
        let ds = octant_netsim::MeasurementDataset::capture(&small_prober(8, 31));
        let landmarks = ds.host_ids();
        let octant = Octant::new(OctantConfig::default());
        let previous = octant.prepare_landmarks(&ds, &landmarks);
        let shrunk: Vec<NodeId> = landmarks[..6].to_vec();
        let (inc, report) = octant.prepare_landmarks_incremental(&ds, &shrunk, &previous, &[]);
        assert!(report.full_rebuild);
        let full = octant.prepare_landmarks(&ds, &shrunk);
        assert_models_identical(&full, &inc);
    }

    #[test]
    fn minimal_config_still_works_but_is_less_precise() {
        let prober = small_prober(14, 5);
        let hosts = prober.hosts();
        let target = hosts[2].id;
        let landmarks: Vec<NodeId> = hosts
            .iter()
            .map(|h| h.id)
            .filter(|&id| id != target)
            .collect();
        let truth = prober.network().node(target).location;

        let full = Octant::new(OctantConfig::default()).localize(&prober, &landmarks, target);
        let minimal = Octant::new(OctantConfig::minimal()).localize(&prober, &landmarks, target);
        let full_region = full.region.unwrap();
        let minimal_region = minimal.region.unwrap();
        // The fully-featured configuration must not be (much) worse in area.
        assert!(
            full_region.area_km2() <= minimal_region.area_km2() * 1.5,
            "full {:.0} km² vs minimal {:.0} km²",
            full_region.area_km2(),
            minimal_region.area_km2()
        );
        let full_err = great_circle_km(full.point.unwrap(), truth);
        assert!(full_err < 800.0);
        assert!(minimal.target_height_ms.is_none());
        assert!(full.target_height_ms.is_some());
    }

    #[test]
    fn recursive_router_localization_produces_an_estimate() {
        let prober = small_prober(10, 29);
        let hosts = prober.hosts();
        let target = hosts[1].id;
        let landmarks: Vec<NodeId> = hosts
            .iter()
            .map(|h| h.id)
            .filter(|&id| id != target)
            .collect();
        let cfg = OctantConfig {
            router_localization: RouterLocalization::Recursive,
            max_router_constraints: 3,
            ..OctantConfig::default()
        };
        let est = Octant::new(cfg).localize(&prober, &landmarks, target);
        let truth = prober.network().node(target).location;
        let err = great_circle_km(est.point.unwrap(), truth);
        assert!(err < 1000.0, "recursive mode error {err:.0} km");
    }

    #[test]
    fn geolocator_trait_object_works() {
        let prober = small_prober(8, 31);
        let hosts = prober.hosts();
        let octant = Octant::new(OctantConfig::default());
        let geolocator: &dyn Geolocator = &octant;
        assert_eq!(geolocator.name(), "Octant");
        let target = hosts[0].id;
        let landmarks: Vec<NodeId> = hosts[1..].iter().map(|h| h.id).collect();
        let est = geolocator.localize(&prober, &landmarks, target);
        assert!(est.point.is_some());
    }
}
