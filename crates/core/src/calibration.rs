//! Mapping latencies to distances (§2.1).
//!
//! Octant calibrates each landmark by correlating the round-trip latencies it
//! measures to its *peer landmarks* with the known great-circle distances to
//! them. The convex hull of the resulting (latency, distance) scatter yields
//! two piecewise-linear functions: the upper facet `R_L(d)` (the farthest a
//! node with ping time `d` has been observed to be) and the lower facet
//! `r_L(d)` (the closest). A latency measurement to the target then produces
//! a positive constraint of radius `R_L(d)` and a negative constraint of
//! radius `r_L(d)`.
//!
//! Because a landmark has only a limited number of peers, the hull is only
//! trusted up to a latency cutoff `ρ` chosen so that a configurable
//! percentile of the peers lies to its left. Beyond `ρ`, `r_L` is held
//! constant and `R_L` relaxes linearly toward a far-away *sentinel* point on
//! the speed-of-light line, giving a smooth transition from aggressive,
//! data-driven bounds to the conservative physical bound.

use octant_geo::units::{Distance, Latency};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`Calibration::from_samples`] invocations.
static BUILD_COUNT: AtomicU64 = AtomicU64::new(0);

/// How many calibrations have been built in this process so far.
///
/// Instrumentation for the batch engine's cache-regression tests (and for
/// operational dashboards): a batch of `N` targets against `L` landmarks
/// builds exactly `L + 1` calibrations (one per landmark plus the pooled
/// one), independent of `N` — provided no target is itself a landmark
/// (such targets take the sequential leave-one-out path, `L + 1` builds
/// each) and router localization is not
/// [`RouterLocalization::Recursive`](crate::RouterLocalization::Recursive)
/// (which sub-localizes on-path routers, each a fresh model). Monotonically
/// increasing; compare deltas, not absolute values.
pub fn build_count() -> u64 {
    BUILD_COUNT.load(Ordering::Relaxed)
}

/// A single calibration observation: measured RTT to a peer landmark and the
/// known great-circle distance to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSample {
    /// Minimum observed round-trip latency to the peer.
    pub latency: Latency,
    /// Great-circle distance to the peer.
    pub distance: Distance,
}

/// Configuration of the calibration step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Percentile (0–1) of peer latencies that must lie left of the cutoff ρ.
    pub cutoff_percentile: f64,
    /// Latency of the fictitious sentinel data point (ms).
    pub sentinel_latency_ms: f64,
    /// Minimum number of samples required before the hull is trusted at all;
    /// below this only speed-of-light constraints are produced.
    pub min_samples: usize,
    /// Relative slack applied to the upper facet: `R = hull · (1 + frac) + km`.
    /// The raw hull is the most aggressive possible bound (a target slightly
    /// more distant than any peer at the same latency would be wrongly
    /// excluded); a small margin trades a little precision for soundness when
    /// the peer set is sparse. Set both margins to zero for the paper's raw
    /// hull.
    pub upper_margin_frac: f64,
    /// Absolute slack (km) added to the upper facet.
    pub upper_margin_km: f64,
    /// Relative shrink applied to the lower facet: `r = hull · (1 − frac)`.
    pub lower_margin_frac: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            cutoff_percentile: 0.75,
            sentinel_latency_ms: 400.0,
            min_samples: 5,
            upper_margin_frac: 0.10,
            upper_margin_km: 50.0,
            lower_margin_frac: 0.10,
        }
    }
}

impl CalibrationConfig {
    /// The paper's raw convex-hull bounds with no safety margins.
    pub fn aggressive() -> Self {
        CalibrationConfig {
            upper_margin_frac: 0.0,
            upper_margin_km: 0.0,
            lower_margin_frac: 0.0,
            ..Self::default()
        }
    }
}

/// The calibrated latency→distance bounds for one landmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    samples: Vec<CalibrationSample>,
    /// Upper hull facet vertices, sorted by latency.
    upper: Vec<(f64, f64)>,
    /// Lower hull facet vertices, sorted by latency.
    lower: Vec<(f64, f64)>,
    /// Latency cutoff ρ (ms).
    cutoff_ms: f64,
    /// Slope of the sentinel extension of the upper facet (km per ms).
    sentinel_slope: f64,
    config: CalibrationConfig,
}

impl Calibration {
    /// Builds a calibration from peer observations. Samples with zero latency
    /// are ignored.
    pub fn from_samples(mut samples: Vec<CalibrationSample>, config: CalibrationConfig) -> Self {
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        samples.retain(|s| s.latency.ms() > 0.0);
        samples.sort_by(|a, b| {
            a.latency
                .ms()
                .partial_cmp(&b.latency.ms())
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let pts: Vec<(f64, f64)> = samples
            .iter()
            .map(|s| (s.latency.ms(), s.distance.km()))
            .collect();
        let (lower, upper) = convex_hull_facets(&pts);

        // Cutoff: the latency below which `cutoff_percentile` of peers lie.
        let cutoff_ms = if samples.is_empty() {
            0.0
        } else {
            let idx = ((samples.len() as f64 - 1.0) * config.cutoff_percentile.clamp(0.0, 1.0))
                .round() as usize;
            samples[idx.min(samples.len() - 1)].latency.ms()
        };

        // Sentinel: a fictitious far-away point on the speed-of-light line.
        let sentinel_x = config.sentinel_latency_ms.max(cutoff_ms + 1.0);
        let sentinel_y = Distance::max_fiber_distance_for_rtt(Latency::from_ms(sentinel_x)).km();
        let r_at_cutoff = eval_piecewise(&upper, cutoff_ms).unwrap_or(0.0);
        let sentinel_slope = if sentinel_x > cutoff_ms {
            (sentinel_y - r_at_cutoff) / (sentinel_x - cutoff_ms)
        } else {
            0.0
        };

        Calibration {
            samples,
            upper,
            lower,
            cutoff_ms,
            sentinel_slope,
            config,
        }
    }

    /// A calibration with no data: every query falls back to the
    /// speed-of-light bound (positive) and zero (negative).
    pub fn speed_of_light_only() -> Self {
        Calibration::from_samples(Vec::new(), CalibrationConfig::default())
    }

    /// The calibration samples (sorted by latency).
    pub fn samples(&self) -> &[CalibrationSample] {
        &self.samples
    }

    /// The latency cutoff ρ in milliseconds.
    pub fn cutoff_ms(&self) -> f64 {
        self.cutoff_ms
    }

    /// The upper convex-hull facet as (latency ms, distance km) vertices.
    pub fn upper_facet(&self) -> &[(f64, f64)] {
        &self.upper
    }

    /// The lower convex-hull facet as (latency ms, distance km) vertices.
    pub fn lower_facet(&self) -> &[(f64, f64)] {
        &self.lower
    }

    /// `true` when enough peers were observed for the hull to be trusted.
    pub fn is_data_driven(&self) -> bool {
        self.samples.len() >= self.config.min_samples
    }

    /// The positive-constraint radius `R_L(d)`: an upper bound on the
    /// distance to a node whose measured RTT is `d`. Always capped by the
    /// speed-of-light bound, which also serves as the fallback when the
    /// calibration has too little data.
    pub fn max_distance(&self, rtt: Latency) -> Distance {
        let sol = Distance::max_fiber_distance_for_rtt(rtt);
        if !self.is_data_driven() {
            return sol;
        }
        let x = rtt.ms();
        let first_x = self.upper.first().map(|p| p.0).unwrap_or(0.0);
        let estimate = if x <= first_x {
            // Below the observed range the hull says nothing; the physical
            // bound is already tight for small latencies.
            sol.km()
        } else if x <= self.cutoff_ms {
            eval_piecewise(&self.upper, x).unwrap_or(sol.km())
        } else {
            let r_at_cutoff = eval_piecewise(&self.upper, self.cutoff_ms).unwrap_or(sol.km());
            r_at_cutoff + self.sentinel_slope * (x - self.cutoff_ms)
        };
        let with_margin = estimate * (1.0 + self.config.upper_margin_frac.max(0.0))
            + self.config.upper_margin_km.max(0.0);
        Distance::from_km(with_margin.min(sol.km()))
    }

    /// The negative-constraint radius `r_L(d)`: a lower bound on the distance
    /// to a node whose measured RTT is `d` (0 when the calibration cannot
    /// support a claim).
    pub fn min_distance(&self, rtt: Latency) -> Distance {
        if !self.is_data_driven() {
            return Distance::ZERO;
        }
        let x = rtt.ms();
        let first_x = self.lower.first().map(|p| p.0).unwrap_or(0.0);
        let last_x = self.lower.last().map(|p| p.0).unwrap_or(0.0);
        let estimate = if x < first_x {
            0.0
        } else if x <= self.cutoff_ms.min(last_x) {
            eval_piecewise(&self.lower, x).unwrap_or(0.0)
        } else {
            // Beyond the cutoff r_L is held constant at r_L(ρ).
            eval_piecewise(&self.lower, self.cutoff_ms.min(last_x)).unwrap_or(0.0)
        };
        Distance::from_km(
            (estimate * (1.0 - self.config.lower_margin_frac.clamp(0.0, 1.0))).max(0.0),
        )
    }
}

/// A piecewise-linear facet: (latency ms, distance km) vertices sorted by x.
type Facet = Vec<(f64, f64)>;

/// Lower and upper facets of the convex hull of a point set, each returned as
/// a list of vertices sorted by x. Duplicated x values keep the extreme y.
fn convex_hull_facets(points: &[(f64, f64)]) -> (Facet, Facet) {
    if points.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup();
    if pts.len() == 1 {
        return (pts.clone(), pts);
    }
    let cross = |o: (f64, f64), a: (f64, f64), b: (f64, f64)| -> f64 {
        (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
    };
    // Monotone chain.
    let mut lower: Vec<(f64, f64)> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<(f64, f64)> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    upper.reverse();
    (lower, upper)
}

/// Evaluates a piecewise-linear function given as x-sorted vertices. Clamps
/// to the end values outside the range; `None` for an empty vertex list.
fn eval_piecewise(vertices: &[(f64, f64)], x: f64) -> Option<f64> {
    if vertices.is_empty() {
        return None;
    }
    if x <= vertices[0].0 {
        return Some(vertices[0].1);
    }
    if x >= vertices[vertices.len() - 1].0 {
        return Some(vertices[vertices.len() - 1].1);
    }
    for w in vertices.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x >= x0 && x <= x1 {
            if (x1 - x0).abs() < 1e-12 {
                return Some(y0.max(y1));
            }
            return Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0));
        }
    }
    Some(vertices[vertices.len() - 1].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(lat_ms: f64, dist_km: f64) -> CalibrationSample {
        CalibrationSample {
            latency: Latency::from_ms(lat_ms),
            distance: Distance::from_km(dist_km),
        }
    }

    /// A synthetic peer scatter roughly matching Figure 2: distance grows
    /// with latency, with spread.
    fn figure2_like_samples() -> Vec<CalibrationSample> {
        let mut out = Vec::new();
        for i in 1..=40 {
            let lat = i as f64 * 2.5;
            // "true" relationship ~ 70 km/ms with scatter above (never below a
            // floor because close nodes answer quickly).
            out.push(sample(lat, lat * 70.0));
            out.push(sample(lat * 1.2, lat * 70.0 * 0.8));
            out.push(sample(lat * 1.5, lat * 70.0 * 0.6));
        }
        out
    }

    #[test]
    fn hull_facets_bracket_all_samples() {
        let samples = figure2_like_samples();
        let cal = Calibration::from_samples(samples.clone(), CalibrationConfig::default());
        assert!(cal.is_data_driven());
        for s in &samples {
            if s.latency.ms() <= cal.cutoff_ms() {
                let upper = cal.max_distance(s.latency).km();
                let lower = cal.min_distance(s.latency).km();
                assert!(
                    s.distance.km() <= upper + 1e-6,
                    "sample ({}, {}) above upper bound {upper}",
                    s.latency.ms(),
                    s.distance.km()
                );
                assert!(
                    s.distance.km() >= lower - 1e-6,
                    "sample ({}, {}) below lower bound {lower}",
                    s.latency.ms(),
                    s.distance.km()
                );
            }
        }
    }

    #[test]
    fn bounds_are_much_tighter_than_speed_of_light() {
        let cal = Calibration::from_samples(figure2_like_samples(), CalibrationConfig::default());
        let rtt = Latency::from_ms(40.0);
        let sol = Distance::max_fiber_distance_for_rtt(rtt).km();
        let hull = cal.max_distance(rtt).km();
        assert!(
            hull < sol * 0.8,
            "hull bound {hull} should be far tighter than speed of light {sol}"
        );
        assert!(
            cal.min_distance(rtt).km() > 0.0,
            "a negative constraint should exist"
        );
    }

    #[test]
    fn upper_bound_never_exceeds_speed_of_light() {
        // Even with adversarial samples claiming super-luminal distances, the
        // bound is capped.
        let samples = vec![
            sample(1.0, 5000.0),
            sample(2.0, 8000.0),
            sample(3.0, 9000.0),
            sample(4.0, 9500.0),
            sample(5.0, 9900.0),
        ];
        let cal = Calibration::from_samples(samples, CalibrationConfig::default());
        for ms in [1.0, 2.0, 5.0, 20.0] {
            let rtt = Latency::from_ms(ms);
            assert!(
                cal.max_distance(rtt).km() <= Distance::max_fiber_distance_for_rtt(rtt).km() + 1e-9
            );
        }
    }

    #[test]
    fn too_few_samples_fall_back_to_speed_of_light() {
        let cal = Calibration::from_samples(
            vec![sample(10.0, 500.0), sample(20.0, 900.0)],
            CalibrationConfig::default(),
        );
        assert!(!cal.is_data_driven());
        let rtt = Latency::from_ms(30.0);
        assert_eq!(
            cal.max_distance(rtt),
            Distance::max_fiber_distance_for_rtt(rtt)
        );
        assert_eq!(cal.min_distance(rtt), Distance::ZERO);
        let empty = Calibration::speed_of_light_only();
        assert!(!empty.is_data_driven());
        assert_eq!(
            empty.max_distance(rtt),
            Distance::max_fiber_distance_for_rtt(rtt)
        );
    }

    #[test]
    fn beyond_cutoff_the_bounds_relax_smoothly() {
        let cal = Calibration::from_samples(figure2_like_samples(), CalibrationConfig::default());
        let rho = cal.cutoff_ms();
        let at_cutoff = cal.max_distance(Latency::from_ms(rho)).km();
        let beyond = cal.max_distance(Latency::from_ms(rho + 30.0)).km();
        let far = cal.max_distance(Latency::from_ms(rho + 120.0)).km();
        assert!(beyond >= at_cutoff, "R must not shrink past the cutoff");
        assert!(far >= beyond);
        // The negative bound stays frozen at its cutoff value.
        let r_cut = cal.min_distance(Latency::from_ms(rho)).km();
        let r_far = cal.min_distance(Latency::from_ms(rho + 120.0)).km();
        assert!((r_cut - r_far).abs() < 1e-6);
    }

    #[test]
    fn monotone_latency_gives_monotone_positive_bound() {
        let cal = Calibration::from_samples(figure2_like_samples(), CalibrationConfig::default());
        let mut prev = 0.0;
        for ms in (2..200).step_by(2) {
            let d = cal.max_distance(Latency::from_ms(ms as f64)).km();
            assert!(
                d + 1e-6 >= prev,
                "R_L must be monotone in latency (at {ms} ms: {d} < {prev})"
            );
            prev = d;
        }
    }

    #[test]
    fn min_distance_is_never_above_max_distance() {
        let cal = Calibration::from_samples(figure2_like_samples(), CalibrationConfig::default());
        for ms in (1..300).step_by(3) {
            let rtt = Latency::from_ms(ms as f64);
            assert!(
                cal.min_distance(rtt).km() <= cal.max_distance(rtt).km() + 1e-6,
                "crossed bounds at {ms} ms"
            );
        }
    }

    #[test]
    fn zero_latency_samples_are_discarded() {
        let cal = Calibration::from_samples(
            vec![
                sample(0.0, 100.0),
                sample(10.0, 700.0),
                sample(15.0, 900.0),
                sample(20.0, 1200.0),
                sample(25.0, 1500.0),
                sample(30.0, 1800.0),
            ],
            CalibrationConfig::default(),
        );
        assert_eq!(cal.samples().len(), 5);
    }

    #[test]
    fn convex_hull_of_degenerate_inputs() {
        let (lo, up) = convex_hull_facets(&[]);
        assert!(lo.is_empty() && up.is_empty());
        let (lo, up) = convex_hull_facets(&[(5.0, 7.0)]);
        assert_eq!(lo, vec![(5.0, 7.0)]);
        assert_eq!(up, vec![(5.0, 7.0)]);
        // Collinear points: both facets span the full range.
        let (lo, up) = convex_hull_facets(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(lo.first().unwrap().0, 0.0);
        assert_eq!(lo.last().unwrap().0, 2.0);
        assert_eq!(up.first().unwrap().0, 0.0);
        assert_eq!(up.last().unwrap().0, 2.0);
    }

    #[test]
    fn piecewise_evaluation() {
        let v = vec![(0.0, 0.0), (10.0, 100.0), (20.0, 150.0)];
        assert_eq!(eval_piecewise(&v, -5.0), Some(0.0));
        assert_eq!(eval_piecewise(&v, 5.0), Some(50.0));
        assert_eq!(eval_piecewise(&v, 15.0), Some(125.0));
        assert_eq!(eval_piecewise(&v, 25.0), Some(150.0));
        assert_eq!(eval_piecewise(&[], 1.0), None);
    }
}
