//! Constraints and their weights (§2, §2.4).
//!
//! A constraint is a region of the globe in which the target is believed to
//! reside (positive) or believed *not* to reside (negative), together with a
//! weight expressing the strength of that belief. Latency-derived constraints
//! get weights that decay exponentially with the measured latency, because
//! distant landmarks' measurements are empirically less trustworthy (§2.4).

use octant_geo::units::Latency;
use octant_region::GeoRegion;

/// Whether a constraint asserts presence or absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// The target lies inside the region.
    Positive,
    /// The target lies outside the region.
    Negative,
}

/// A weighted geographic constraint on the target's position.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Positive or negative.
    pub kind: ConstraintKind,
    /// The region the constraint refers to.
    pub region: GeoRegion,
    /// Strength of the belief; higher weights are applied first and win
    /// conflicts.
    pub weight: f64,
    /// Human-readable provenance (landmark hostname, "whois", "landmass", …)
    /// for diagnostics.
    pub label: String,
}

impl Constraint {
    /// A positive constraint.
    pub fn positive(region: GeoRegion, weight: f64, label: impl Into<String>) -> Self {
        Constraint {
            kind: ConstraintKind::Positive,
            region,
            weight: sanitize(weight),
            label: label.into(),
        }
    }

    /// A negative constraint.
    pub fn negative(region: GeoRegion, weight: f64, label: impl Into<String>) -> Self {
        Constraint {
            kind: ConstraintKind::Negative,
            region,
            weight: sanitize(weight),
            label: label.into(),
        }
    }

    /// `true` for positive constraints.
    pub fn is_positive(&self) -> bool {
        self.kind == ConstraintKind::Positive
    }
}

fn sanitize(weight: f64) -> f64 {
    if weight.is_finite() {
        weight.max(0.0)
    } else {
        0.0
    }
}

/// Clamps a weight to the valid range (finite, non-negative). Used by the
/// evidence pipeline when applying per-source weight scales.
pub(crate) fn sanitize_weight(weight: f64) -> f64 {
    sanitize(weight)
}

/// The default decay constant (ms) of the exponential latency weighting —
/// the single place the paper's §2.4 weighting constant lives. Configurable
/// per run via `OctantConfig::weight_decay_ms`.
pub const DEFAULT_WEIGHT_DECAY_MS: f64 = 80.0;

/// The exponential latency weighting of §2.4: `exp(-latency / decay)`.
/// Nearby landmarks (small latency) approach weight 1, far landmarks decay
/// towards 0 and lose conflicts against nearby ones.
pub fn latency_weight(latency: Latency, decay_ms: f64) -> f64 {
    let decay = decay_ms.max(1e-6);
    (-latency.ms() / decay).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::point::GeoPoint;
    use octant_geo::projection::AzimuthalEquidistant;
    use octant_geo::units::Distance;

    fn disk(radius_km: f64) -> GeoRegion {
        let c = GeoPoint::new(40.0, -75.0);
        GeoRegion::disk(
            AzimuthalEquidistant::new(c),
            c,
            Distance::from_km(radius_km),
        )
    }

    #[test]
    fn constructors_set_kind_and_sanitize_weight() {
        let p = Constraint::positive(disk(100.0), 0.7, "landmark a");
        assert!(p.is_positive());
        assert_eq!(p.kind, ConstraintKind::Positive);
        assert_eq!(p.weight, 0.7);
        assert_eq!(p.label, "landmark a");

        let n = Constraint::negative(disk(50.0), -3.0, "landmark b");
        assert!(!n.is_positive());
        assert_eq!(n.weight, 0.0, "negative weights are clamped");

        let nan = Constraint::positive(disk(10.0), f64::NAN, "broken");
        assert_eq!(nan.weight, 0.0);
    }

    #[test]
    fn latency_weight_decays_monotonically() {
        let decay = DEFAULT_WEIGHT_DECAY_MS;
        let w0 = latency_weight(Latency::ZERO, decay);
        let w1 = latency_weight(Latency::from_ms(40.0), decay);
        let w2 = latency_weight(Latency::from_ms(80.0), decay);
        let w3 = latency_weight(Latency::from_ms(400.0), decay);
        assert!((w0 - 1.0).abs() < 1e-12);
        assert!(w0 > w1 && w1 > w2 && w2 > w3);
        assert!((w2 - (-1.0f64).exp()).abs() < 1e-12);
        assert!(w3 < 0.01);
    }

    #[test]
    fn latency_weight_handles_degenerate_decay() {
        let w = latency_weight(Latency::from_ms(10.0), 0.0);
        assert!(w.is_finite());
        assert!((0.0..=1.0).contains(&w));
    }
}
