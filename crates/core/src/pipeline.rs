//! The pluggable evidence pipeline (§2, §2.5, §3).
//!
//! Octant's headline contribution is a *comprehensive* framework: any kind
//! of evidence — latency, indirect-route router constraints, oceans and
//! landmass outlines, WHOIS registrations, DNS naming hints, demographic
//! priors — reduces to weighted positive/negative geometric constraints
//! over one solver. This module makes that composition a first-class API
//! instead of logic hardwired into [`Octant`]:
//!
//! * [`ConstraintSource`] — one kind of evidence. A source converts a
//!   [`TargetContext`] (the per-target measurement view) into weighted
//!   [`Constraint`]s, and may additionally *refine* the solved region
//!   (the §2.5 landmass restriction is a refinement, not a solver
//!   constraint, so a single erroneous outline can never empty the
//!   estimate).
//! * [`EvidencePipeline`] — an ordered set of sources, each with an
//!   enable switch and a weight scale. [`EvidencePipeline::standard`]
//!   reproduces the classic Octant mix **bit-identically**; disabling,
//!   re-weighting, or appending sources is a configuration change, not a
//!   code change — exactly how the paper's §3 ablations toggle constraint
//!   families.
//! * [`ProvenanceReport`] — every [`LocationEstimate`] records, per
//!   source, how many constraints it emitted, how the solver disposed of
//!   them (applied vs. skipped, by kind), the total weight it contributed,
//!   and — for refining sources — the estimate area before and after the
//!   refinement. Ablation studies and debugging fall out of the API.
//!
//! The built-in sources map to the paper as follows:
//!
//! | Source | Paper | Default |
//! |---|---|---|
//! | [`LatencySource`] | §2.1/§2.2 positive + negative latency shells | on |
//! | [`RouterSource`] | §2.3 piecewise secondary landmarks | on (per [`OctantConfig::router_localization`]) |
//! | [`HintSource`] | §2.5 WHOIS registration hints | on (per [`OctantConfig::use_whois`]) |
//! | [`DnsNameSource`] | §2.5 `undns`-style names of the *target itself* | off ([`OctantConfig::use_dns_hints`]) |
//! | [`PopulationPrior`] | §2.5 demographic prior | off ([`OctantConfig::use_population_prior`]) |
//! | [`GeographySource`] | §2.5 oceans/uninhabitable exclusion | on (per [`OctantConfig::use_landmass_constraint`]) |
//!
//! [`LocationEstimate`]: crate::framework::LocationEstimate

use crate::batch::LandmarkModel;
use crate::constraint::{latency_weight, Constraint};
use crate::framework::{
    host_descriptor, host_ip, Octant, OctantConfig, RouterEstimateSource, RouterLocalization,
};
use crate::geography;
use octant_geo::projection::AzimuthalEquidistant;
use octant_geo::units::{Distance, Latency};
use octant_netsim::dns;
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use octant_region::GeoRegion;
use std::sync::Arc;

/// Stable identity of a [`ConstraintSource`], used for per-request source
/// selection, weight scaling, and provenance reporting. The `Ord` is the
/// declaration order (with `Custom` labels last, ordered by label) — used to
/// canonicalize source lists into deterministic cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceId {
    /// Direct landmark latency constraints (§2.1/§2.2).
    Latency,
    /// Piecewise router-derived constraints (§2.3).
    Router,
    /// Landmass/ocean restriction (§2.5).
    Geography,
    /// WHOIS registration hints (§2.5).
    Hint,
    /// `undns`-style city codes parsed from the target's own hostname.
    DnsName,
    /// Coarse population-density prior.
    PopulationPrior,
    /// A user-supplied source, identified by a static label.
    Custom(&'static str),
}

impl SourceId {
    /// A short stable label for tables and JSON output.
    pub fn as_str(&self) -> &'static str {
        match self {
            SourceId::Latency => "latency",
            SourceId::Router => "router",
            SourceId::Geography => "geography",
            SourceId::Hint => "hint",
            SourceId::DnsName => "dns",
            SourceId::PopulationPrior => "population",
            SourceId::Custom(s) => s,
        }
    }

    /// The telemetry span/stage name for this source (`source.latency`,
    /// `source.router`, …). Custom sources share one `source.custom` stage:
    /// span names must be `'static` and known up front, and per-request
    /// stage tables stay bounded that way.
    pub fn span_name(&self) -> &'static str {
        match self {
            SourceId::Latency => "source.latency",
            SourceId::Router => "source.router",
            SourceId::Geography => "source.geography",
            SourceId::Hint => "source.hint",
            SourceId::DnsName => "source.dns",
            SourceId::PopulationPrior => "source.population",
            SourceId::Custom(_) => "source.custom",
        }
    }
}

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The per-target measurement view a [`ConstraintSource`] works from: the
/// shared landmark model, the target's RTT vector, the height estimate, and
/// the projection the solve runs in. Sources must treat it as read-only.
pub struct TargetContext<'a> {
    /// The observation interface (pings, traceroutes, WHOIS, reverse DNS).
    pub provider: &'a dyn ObservationProvider,
    /// The prepared target-independent landmark state.
    pub model: &'a LandmarkModel,
    /// The framework instance running the solve (configuration plus the
    /// recursive sub-solve entry points the router source needs).
    pub octant: &'a Octant,
    /// Shorthand for `octant.config()`.
    pub config: &'a OctantConfig,
    /// The target being localized.
    pub target: NodeId,
    /// Minimum RTT from each model landmark to the target (parallel to
    /// `model.landmark_ids()`; `None` = unreachable).
    pub target_rtts: &'a [Option<Latency>],
    /// The target's estimated queuing delay (0 when heights are disabled).
    pub target_height_ms: f64,
    /// The projection every constraint region must be expressed in.
    pub projection: AzimuthalEquidistant,
    /// `false` for recursive router sub-solves, which must not recurse
    /// further (§2.3's one-level construction).
    pub allow_router_constraints: bool,
    /// Shared router estimate source (e.g. `octant-service`'s cache), when
    /// the caller supplied one.
    pub routers: Option<&'a dyn RouterEstimateSource>,
}

/// One kind of localization evidence, reduced to weighted geometric
/// constraints (§2's unifying idea).
///
/// Implementations must be deterministic functions of the context: the
/// batch engine and the serving layer call them from multiple threads and
/// rely on replayed calls producing identical constraints.
pub trait ConstraintSource: Send + Sync {
    /// The source's stable identity.
    fn id(&self) -> SourceId;

    /// Converts the target's evidence into weighted constraints. Constraint
    /// order within one source is preserved into the solver (which breaks
    /// weight ties by arrival order), so implementations should emit in a
    /// stable order.
    fn constraints(&self, ctx: &TargetContext<'_>) -> Vec<Constraint>;

    /// Post-solve refinement of the estimate (applied in pipeline order
    /// after the solver ran). The default is the identity. Refinements must
    /// never empty a non-empty estimate — prefer returning it unchanged
    /// (the §2.4 robustness principle).
    fn refine(&self, ctx: &TargetContext<'_>, estimate: GeoRegion) -> GeoRegion {
        let _ = ctx;
        estimate
    }

    /// `true` when [`ConstraintSource::refine`] is overridden, so the
    /// pipeline records before/after areas only where they are meaningful.
    fn refines(&self) -> bool {
        false
    }
}

/// One pipeline slot: a source plus its enable switch and weight scale.
#[derive(Clone)]
pub struct PipelineEntry {
    source: Arc<dyn ConstraintSource>,
    enabled: bool,
    weight_scale: f64,
}

impl PipelineEntry {
    /// The source's identity.
    pub fn id(&self) -> SourceId {
        self.source.id()
    }

    /// Whether the source participates in solves.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The multiplier applied to every constraint weight the source emits.
    pub fn weight_scale(&self) -> f64 {
        self.weight_scale
    }

    /// The source itself.
    pub fn source(&self) -> &Arc<dyn ConstraintSource> {
        &self.source
    }
}

impl std::fmt::Debug for PipelineEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineEntry")
            .field("id", &self.id())
            .field("enabled", &self.enabled)
            .field("weight_scale", &self.weight_scale)
            .finish()
    }
}

/// An ordered, configurable set of [`ConstraintSource`]s feeding the
/// weighted solver. See the module docs for the built-in sources and
/// [`EvidencePipeline::standard`] for the default mix.
#[derive(Clone, Debug)]
pub struct EvidencePipeline {
    entries: Vec<PipelineEntry>,
}

impl Default for EvidencePipeline {
    fn default() -> Self {
        EvidencePipeline::standard()
    }
}

impl EvidencePipeline {
    /// A pipeline with no sources (solves yield the whole world).
    pub fn empty() -> Self {
        EvidencePipeline {
            entries: Vec::new(),
        }
    }

    /// The classic Octant evidence mix, in the order the pre-pipeline
    /// framework hardcoded it: latency shells, router constraints, WHOIS
    /// hints, then the (default-off) DNS-name and population sources, and
    /// finally the landmass refinement. With a default [`OctantConfig`]
    /// this pipeline is bit-identical to the historical behaviour.
    pub fn standard() -> Self {
        EvidencePipeline::empty()
            .with_source(Arc::new(LatencySource))
            .with_source(Arc::new(RouterSource))
            .with_source(Arc::new(HintSource))
            .with_source(Arc::new(DnsNameSource))
            .with_source(Arc::new(PopulationPrior))
            .with_source(Arc::new(GeographySource))
    }

    /// Appends a source (enabled, weight scale 1).
    pub fn with_source(mut self, source: Arc<dyn ConstraintSource>) -> Self {
        self.entries.push(PipelineEntry {
            source,
            enabled: true,
            weight_scale: 1.0,
        });
        self
    }

    /// Appends a source with an explicit enable switch and weight scale.
    pub fn with_source_config(
        mut self,
        source: Arc<dyn ConstraintSource>,
        enabled: bool,
        weight_scale: f64,
    ) -> Self {
        self.entries.push(PipelineEntry {
            source,
            enabled,
            weight_scale,
        });
        self
    }

    /// The pipeline's slots, in application order.
    pub fn entries(&self) -> &[PipelineEntry] {
        &self.entries
    }

    /// Number of sources (enabled or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the pipeline has no sources.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enables or disables every source with the given id. Returns `true`
    /// when at least one entry matched.
    pub fn set_enabled(&mut self, id: SourceId, enabled: bool) -> bool {
        let mut found = false;
        for e in &mut self.entries {
            if e.id() == id {
                e.enabled = enabled;
                found = true;
            }
        }
        found
    }

    /// Sets the weight scale of every source with the given id. Returns
    /// `true` when at least one entry matched.
    pub fn set_weight_scale(&mut self, id: SourceId, scale: f64) -> bool {
        let mut found = false;
        for e in &mut self.entries {
            if e.id() == id {
                e.weight_scale = scale;
                found = true;
            }
        }
        found
    }

    /// Whether any source with the given id is present and enabled.
    pub fn enabled(&self, id: SourceId) -> bool {
        self.entries.iter().any(|e| e.id() == id && e.enabled)
    }

    /// A copy with the listed sources disabled and the listed weight scales
    /// applied — the one-call form behind per-request source selection
    /// (`octant-service`'s `LocalizeOptions`). Unknown ids are ignored.
    pub fn adjusted(&self, disabled: &[SourceId], weight_scales: &[(SourceId, f64)]) -> Self {
        let mut out = self.clone();
        for id in disabled {
            out.set_enabled(*id, false);
        }
        for (id, scale) in weight_scales {
            out.set_weight_scale(*id, *scale);
        }
        out
    }
}

/// Per-source accounting of one solve — what the source contributed and how
/// the solver disposed of it.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceReport {
    /// The source's identity.
    pub id: SourceId,
    /// Whether the source was enabled for this solve.
    pub enabled: bool,
    /// The weight scale that was applied to its constraints.
    pub weight_scale: f64,
    /// Positive constraints the source emitted.
    pub emitted_positive: usize,
    /// Negative constraints the source emitted.
    pub emitted_negative: usize,
    /// Positive constraints the solver applied.
    pub applied_positive: usize,
    /// Positive constraints the solver set aside as conflicting (§2.4).
    pub skipped_positive: usize,
    /// Negative constraints the solver applied.
    pub applied_negative: usize,
    /// Negative constraints the solver set aside.
    pub skipped_negative: usize,
    /// Sum of the (scaled) weights the source contributed.
    pub total_weight: f64,
    /// Estimate area (km²) entering the source's post-solve refinement
    /// (refining sources only).
    pub area_before_km2: Option<f64>,
    /// Estimate area (km²) after the refinement (refining sources only).
    pub area_after_km2: Option<f64>,
}

impl SourceReport {
    /// A zeroed report for one pipeline slot.
    pub(crate) fn for_entry(entry: &PipelineEntry) -> Self {
        SourceReport::new(entry.id(), entry.enabled(), entry.weight_scale())
    }

    fn new(id: SourceId, enabled: bool, weight_scale: f64) -> Self {
        SourceReport {
            id,
            enabled,
            weight_scale,
            emitted_positive: 0,
            emitted_negative: 0,
            applied_positive: 0,
            skipped_positive: 0,
            applied_negative: 0,
            skipped_negative: 0,
            total_weight: 0.0,
            area_before_km2: None,
            area_after_km2: None,
        }
    }

    /// Total constraints the source emitted.
    pub fn emitted(&self) -> usize {
        self.emitted_positive + self.emitted_negative
    }

    /// Total constraints the solver applied from this source.
    pub fn applied(&self) -> usize {
        self.applied_positive + self.applied_negative
    }
}

/// The per-estimate provenance record: one [`SourceReport`] per pipeline
/// slot (disabled sources included, with zero counts), plus diagnostics of
/// the landmark model the solve ran against.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProvenanceReport {
    /// Per-source accounting, in pipeline order.
    pub sources: Vec<SourceReport>,
    /// Landmarks the model dropped because they advertised no location
    /// (see [`LandmarkModel::dropped_landmarks`]) — the estimate used
    /// fewer landmarks than the caller supplied.
    pub dropped_landmarks: usize,
}

impl ProvenanceReport {
    /// The report of one source, when present in the pipeline.
    pub fn source(&self, id: SourceId) -> Option<&SourceReport> {
        self.sources.iter().find(|s| s.id == id)
    }

    /// Total constraints emitted across all sources.
    pub fn total_emitted(&self) -> usize {
        self.sources.iter().map(|s| s.emitted()).sum()
    }
}

// ---------------------------------------------------------------------------
// Built-in sources
// ---------------------------------------------------------------------------

/// §2.1/§2.2: per-landmark positive shells `R(d)` and (optionally) negative
/// shells `r(d)` from the height-adjusted minimum RTTs, weighted by the
/// exponential latency decay of §2.4.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySource;

impl ConstraintSource for LatencySource {
    fn id(&self) -> SourceId {
        SourceId::Latency
    }

    fn constraints(&self, ctx: &TargetContext<'_>) -> Vec<Constraint> {
        let model = ctx.model;
        let cfg = ctx.config;
        let mut out = Vec::new();
        for i in 0..model.lm_ids.len() {
            let raw = match ctx.target_rtts[i] {
                Some(r) => r,
                None => continue,
            };
            let adjusted = if cfg.use_heights {
                ctx.octant
                    .bounded_adjust(raw, model.heights.get_ms(i), ctx.target_height_ms)
            } else {
                raw
            };
            let weight = latency_weight(adjusted, cfg.weight_decay_ms);
            let r_max = model.calibrations[i]
                .max_distance(adjusted)
                .max(Distance::from_km(cfg.min_positive_radius_km));
            let region = GeoRegion::disk(ctx.projection, model.lm_pos[i], r_max);
            out.push(Constraint::positive(region, weight, format!("lm{}+", i)));

            if cfg.use_negative_constraints {
                let r_min = model.calibrations[i].min_distance(adjusted);
                if r_min.km() > 1.0 {
                    let region = GeoRegion::disk(ctx.projection, model.lm_pos[i], r_min);
                    out.push(Constraint::negative(region, weight, format!("lm{}-", i)));
                }
            }
        }
        out
    }
}

/// §2.3: piecewise constraints from on-path routers promoted to secondary
/// landmarks, under the configured [`RouterLocalization`] strategy. The
/// tightest (smallest-region) constraints win when more than
/// [`OctantConfig::max_router_constraints`] are available.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterSource;

impl ConstraintSource for RouterSource {
    fn id(&self) -> SourceId {
        SourceId::Router
    }

    fn constraints(&self, ctx: &TargetContext<'_>) -> Vec<Constraint> {
        if !ctx.allow_router_constraints
            || ctx.config.router_localization == RouterLocalization::Off
        {
            return Vec::new();
        }
        let mut out = ctx.octant.router_constraints(
            ctx.provider,
            ctx.model,
            ctx.target_rtts,
            ctx.target,
            ctx.target_height_ms,
            ctx.projection,
            ctx.routers,
        );
        // Keep the tightest (smallest-region) router constraints.
        out.sort_by(|a, b| {
            a.region
                .area_km2()
                .partial_cmp(&b.region.area_km2())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out.truncate(ctx.config.max_router_constraints);
        out
    }
}

/// §2.5: the WHOIS registration of the target's prefix as a modest-weight
/// positive hint.
#[derive(Debug, Clone, Copy, Default)]
pub struct HintSource;

impl ConstraintSource for HintSource {
    fn id(&self) -> SourceId {
        SourceId::Hint
    }

    fn constraints(&self, ctx: &TargetContext<'_>) -> Vec<Constraint> {
        let cfg = ctx.config;
        if !cfg.use_whois {
            return Vec::new();
        }
        let ip = match host_ip(ctx.provider, ctx.target) {
            Some(ip) => ip,
            None => return Vec::new(),
        };
        let city = match ctx.provider.whois_city(ip) {
            Some(city) => city,
            None => return Vec::new(),
        };
        geography::whois_constraint(
            ctx.projection,
            &city,
            Distance::from_km(cfg.whois_radius_km),
            cfg.whois_weight,
        )
        .into_iter()
        .collect()
    }
}

/// §2.5: `undns`-style city/airport codes parsed from the **target's own**
/// hostname (real ISPs frequently embed the customer's metro into reverse
/// DNS). Off by default ([`OctantConfig::use_dns_hints`]): hostnames that
/// merely *contain* a code-like label would otherwise inject spurious
/// hints. The netsim builder's `host_dns_city_rate` knob generates
/// ISP-style customer names this source can parse.
#[derive(Debug, Clone, Copy, Default)]
pub struct DnsNameSource;

impl ConstraintSource for DnsNameSource {
    fn id(&self) -> SourceId {
        SourceId::DnsName
    }

    fn constraints(&self, ctx: &TargetContext<'_>) -> Vec<Constraint> {
        let cfg = ctx.config;
        if !cfg.use_dns_hints {
            return Vec::new();
        }
        let hostname = host_descriptor(ctx.provider, ctx.target).map(|h| h.hostname);
        let city = match hostname.as_deref().and_then(dns::parse_router_city) {
            Some(city) => city,
            None => return Vec::new(),
        };
        let region = GeoRegion::disk(
            ctx.projection,
            city.location(),
            Distance::from_km(cfg.dns_hint_radius_km),
        );
        vec![Constraint::positive(
            region,
            cfg.dns_hint_weight,
            format!("dns:{}", city.code),
        )]
    }
}

/// §2.5: a coarse population-density prior — people (and therefore hosts)
/// cluster in metropolitan areas, so a low-weight positive constraint over
/// the populated cells nudges the estimate away from empty countryside the
/// latency shells cannot exclude. Off by default
/// ([`OctantConfig::use_population_prior`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PopulationPrior;

impl ConstraintSource for PopulationPrior {
    fn id(&self) -> SourceId {
        SourceId::PopulationPrior
    }

    fn constraints(&self, ctx: &TargetContext<'_>) -> Vec<Constraint> {
        let cfg = ctx.config;
        if !cfg.use_population_prior {
            return Vec::new();
        }
        let region = geography::population_prior_region_cached(
            ctx.projection,
            cfg.population_cell_deg,
            cfg.population_min_cell_k,
        );
        if region.is_empty() {
            return Vec::new();
        }
        vec![Constraint::positive(
            region,
            cfg.population_weight,
            "population",
        )]
    }
}

/// §2.5: the oceans/uninhabitable-area restriction, applied as a post-solve
/// refinement (never as a solver constraint) so it can never empty the
/// estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeographySource;

impl ConstraintSource for GeographySource {
    fn id(&self) -> SourceId {
        SourceId::Geography
    }

    fn constraints(&self, _ctx: &TargetContext<'_>) -> Vec<Constraint> {
        Vec::new()
    }

    fn refine(&self, ctx: &TargetContext<'_>, estimate: GeoRegion) -> GeoRegion {
        if !ctx.config.use_landmass_constraint || estimate.is_empty() {
            return estimate;
        }
        geography::restrict_to_land(&estimate)
    }

    fn refines(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_pipeline_lists_the_paper_sources_in_order() {
        let p = EvidencePipeline::standard();
        let ids: Vec<SourceId> = p.entries().iter().map(|e| e.id()).collect();
        assert_eq!(
            ids,
            vec![
                SourceId::Latency,
                SourceId::Router,
                SourceId::Hint,
                SourceId::DnsName,
                SourceId::PopulationPrior,
                SourceId::Geography,
            ]
        );
        assert!(p.entries().iter().all(|e| e.enabled()));
        assert!(p.entries().iter().all(|e| e.weight_scale() == 1.0));
    }

    #[test]
    fn enable_and_scale_knobs_find_their_source() {
        let mut p = EvidencePipeline::standard();
        assert!(p.set_enabled(SourceId::Router, false));
        assert!(!p.enabled(SourceId::Router));
        assert!(p.enabled(SourceId::Latency));
        assert!(p.set_weight_scale(SourceId::Hint, 0.5));
        assert!(!p.set_enabled(SourceId::Custom("nope"), false));

        let adjusted = EvidencePipeline::standard()
            .adjusted(&[SourceId::Geography], &[(SourceId::Latency, 2.0)]);
        assert!(!adjusted.enabled(SourceId::Geography));
        let latency = adjusted
            .entries()
            .iter()
            .find(|e| e.id() == SourceId::Latency)
            .unwrap();
        assert_eq!(latency.weight_scale(), 2.0);
    }

    #[test]
    fn source_ids_have_stable_labels() {
        assert_eq!(SourceId::Latency.as_str(), "latency");
        assert_eq!(SourceId::PopulationPrior.as_str(), "population");
        assert_eq!(SourceId::Custom("mine").as_str(), "mine");
        assert_eq!(format!("{}", SourceId::DnsName), "dns");
    }

    #[test]
    fn provenance_report_lookup_and_totals() {
        let mut report = ProvenanceReport::default();
        let mut s = SourceReport::new(SourceId::Latency, true, 1.0);
        s.emitted_positive = 3;
        s.applied_positive = 2;
        s.skipped_positive = 1;
        s.emitted_negative = 1;
        s.applied_negative = 1;
        report.sources.push(s);
        assert_eq!(report.total_emitted(), 4);
        let lat = report.source(SourceId::Latency).unwrap();
        assert_eq!(lat.emitted(), 4);
        assert_eq!(lat.applied(), 3);
        assert!(report.source(SourceId::Router).is_none());
    }
}
