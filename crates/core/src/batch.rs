//! Parallel batch geolocalization.
//!
//! The sequential [`Octant::localize`] entry point rebuilds the entire
//! landmark-side state — inter-landmark RTT collection, the §2.2 height
//! least-squares solve, and one §2.1 convex-hull [`Calibration`] per
//! landmark — for *every* target, even though none of it depends on the
//! target. For a production service localizing many hosts against one
//! landmark deployment that is the dominant waste: with `L` landmarks and
//! `N` targets, the landmark model costs `O(L²)` measurements and `L + 1`
//! hull builds, paid `N` times instead of once.
//!
//! [`BatchGeolocator`] fixes both axes:
//!
//! * **Shared landmark model** — [`Octant::prepare_landmarks`] captures the
//!   target-independent state once in a [`LandmarkModel`]; every target in
//!   the batch reuses it (the cache-regression test in
//!   `tests/batch_cache.rs` pins the "exactly `L + 1` hull builds per
//!   batch" property — which holds when no target is itself a landmark and
//!   router localization is not `Recursive`; both of those paths
//!   legitimately build extra models per target).
//! * **Parallel fan-out** — targets are localized on a rayon parallel
//!   iterator with worker-local [`TargetScratch`] buffers (`map_init`), so
//!   per-target allocations are amortized across each worker's whole chunk.
//!
//! ## Exactness
//!
//! Against a *replay-stable* provider — one that answers the same query with
//! the same observation regardless of call order, like
//! [`octant_netsim::MeasurementDataset`] — `localize_batch` produces
//! estimates **bit-identical** to calling [`Octant::localize`] in a loop:
//! both paths run the same code over the same model (the sequential path is
//! itself implemented as "prepare, then localize against the model"). A
//! *live* [`octant_netsim::Prober`] draws probe jitter from one seeded
//! stream, so there the measurement draws themselves depend on call order —
//! exactly as two real measurement campaigns differ — and no two evaluation
//! orders agree, batched or not. The paper's methodology (and this repo's
//! harness) therefore always captures a dataset first.

use crate::calibration::Calibration;
use crate::constraint::Constraint;
use crate::framework::{Geolocator, LocationEstimate, Octant, OctantConfig, RouterEstimateSource};
use crate::heights::Heights;
use octant_geo::point::GeoPoint;
use octant_geo::units::Latency;
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use rayon::prelude::*;
use std::collections::HashMap;

/// The target-independent half of an Octant solve, computed once per
/// landmark set by [`Octant::prepare_landmarks`] and shared by every target
/// localized against it.
#[derive(Debug, Clone)]
pub struct LandmarkModel {
    /// Landmarks with a usable advertised location, in input order.
    pub(crate) lm_ids: Vec<NodeId>,
    /// Advertised positions, parallel to `lm_ids`.
    pub(crate) lm_pos: Vec<GeoPoint>,
    /// Per-landmark queuing delays solved from the inter-landmark RTTs.
    pub(crate) heights: Heights,
    /// Per-landmark latency→distance calibrations, parallel to `lm_ids`.
    pub(crate) calibrations: Vec<Calibration>,
    /// Calibration pooled over every landmark pair (used for router
    /// constraints, whose "landmark" is not in the calibrated set).
    pub(crate) global_calibration: Calibration,
    /// Minimum RTT observed for each ordered inter-landmark pair, keyed by
    /// node id. Retained so an incremental re-prepare
    /// ([`Octant::prepare_landmarks_incremental`]) can reuse the
    /// measurements of unchanged pairs without re-querying the provider.
    pub(crate) inter_rtts: HashMap<(NodeId, NodeId), Latency>,
    /// Landmarks that were supplied but dropped because they advertised no
    /// location (diagnosable via [`LandmarkModel::dropped_landmarks`] and
    /// every estimate's provenance report).
    pub(crate) dropped: Vec<NodeId>,
}

impl LandmarkModel {
    /// Number of usable landmarks in the model.
    pub fn landmark_count(&self) -> usize {
        self.lm_ids.len()
    }

    /// The landmark ids the model covers, in input order.
    pub fn landmark_ids(&self) -> &[NodeId] {
        &self.lm_ids
    }

    /// The solved landmark heights (§2.2).
    pub fn heights(&self) -> &Heights {
        &self.heights
    }

    /// The calibration of landmark `i` (§2.1).
    pub fn calibration(&self, i: usize) -> Option<&Calibration> {
        self.calibrations.get(i)
    }

    /// The calibration pooled across all landmark pairs.
    pub fn global_calibration(&self) -> &Calibration {
        &self.global_calibration
    }

    /// `true` when `id` is one of the model's landmarks (such targets need
    /// the leave-one-out slow path: their own measurements must not
    /// calibrate their own solve).
    pub fn contains_landmark(&self, id: NodeId) -> bool {
        self.lm_ids.contains(&id)
    }

    /// Landmarks the preparation dropped because the provider advertised no
    /// location for them, in input order. A non-empty list means the model
    /// covers fewer landmarks than the caller supplied — the classic
    /// partial-coverage-dataset surprise, now visible instead of silent.
    pub fn dropped_landmarks(&self) -> &[NodeId] {
        &self.dropped
    }
}

/// Reusable per-worker buffers for one target solve. `localize_batch` hands
/// one instance to each worker thread (`map_init`), so the buffers are
/// allocated once per worker and reused across all of that worker's
/// targets; capacity stays warm between solves.
#[derive(Debug, Default)]
pub struct TargetScratch {
    /// Minimum RTT from each landmark to the current target.
    pub(crate) target_rtts: Vec<Option<Latency>>,
    /// Constraint set under construction for the current target.
    pub(crate) constraints: Vec<Constraint>,
    /// Candidate points for the weighted point estimate (§2.4).
    pub(crate) candidates: Vec<GeoPoint>,
    /// Scored candidates, reused by the same estimate.
    pub(crate) scored: Vec<(f64, GeoPoint)>,
}

/// Localizes many targets against one landmark deployment, in parallel,
/// with the landmark-side state computed once.
///
/// ```
/// use octant::{BatchGeolocator, Octant, OctantConfig, Geolocator};
/// use octant_netsim::{MeasurementDataset, NetworkBuilder, NetworkConfig, Prober};
/// use octant_netsim::builder::HostSpec;
///
/// let mut builder = NetworkBuilder::new(NetworkConfig::default());
/// for site in octant_geo::sites::planetlab_51().iter().take(12) {
///     builder = builder.add_host(HostSpec::from_site(site));
/// }
/// let dataset = MeasurementDataset::capture(&Prober::new(builder.build(), 7));
/// let hosts = dataset.host_ids();
/// let (landmarks, targets) = hosts.split_at(8);
///
/// let batch = BatchGeolocator::new(OctantConfig::default());
/// let estimates = batch.localize_batch(&dataset, landmarks, targets);
/// assert_eq!(estimates.len(), targets.len());
///
/// // Bit-identical to the sequential path on a replay-stable provider:
/// let octant = Octant::new(OctantConfig::default());
/// let sequential = octant.localize(&dataset, landmarks, targets[0]);
/// assert_eq!(estimates[0].point, sequential.point);
/// ```
#[derive(Debug, Clone)]
pub struct BatchGeolocator {
    octant: Octant,
}

impl BatchGeolocator {
    /// Creates a batch geolocator with the given configuration and the
    /// standard evidence pipeline.
    pub fn new(config: OctantConfig) -> Self {
        BatchGeolocator {
            octant: Octant::new(config),
        }
    }

    /// Creates a batch geolocator with an explicit evidence pipeline (see
    /// [`crate::pipeline::EvidencePipeline`]).
    pub fn with_pipeline(
        config: OctantConfig,
        pipeline: crate::pipeline::EvidencePipeline,
    ) -> Self {
        BatchGeolocator {
            octant: Octant::with_pipeline(config, pipeline),
        }
    }

    /// Wraps an existing [`Octant`] instance.
    pub fn from_octant(octant: Octant) -> Self {
        BatchGeolocator { octant }
    }

    /// The underlying sequential framework.
    pub fn octant(&self) -> &Octant {
        &self.octant
    }

    /// Localizes every target in `targets`, reusing one [`LandmarkModel`]
    /// across the whole batch and fanning the per-target solves out over
    /// the available cores. Estimates are returned in `targets` order.
    ///
    /// Targets that are themselves landmarks take the sequential
    /// leave-one-out path (their measurements must not calibrate their own
    /// solve), so mixed batches remain exact.
    pub fn localize_batch<P>(
        &self,
        provider: &P,
        landmarks: &[NodeId],
        targets: &[NodeId],
    ) -> Vec<LocationEstimate>
    where
        P: ObservationProvider + Sync,
    {
        if targets.is_empty() {
            return Vec::new();
        }
        let model = self.octant.prepare_landmarks(provider, landmarks);
        self.localize_batch_with_model(provider, &model, targets)
    }

    /// Like [`BatchGeolocator::localize_batch`] but against a model the
    /// caller already prepared (for services that amortize one model across
    /// many batches). Targets that are landmarks of `model` take the
    /// leave-one-out slow path.
    pub fn localize_batch_with_model<P>(
        &self,
        provider: &P,
        model: &LandmarkModel,
        targets: &[NodeId],
    ) -> Vec<LocationEstimate>
    where
        P: ObservationProvider + Sync,
    {
        self.localize_batch_with_routers(provider, model, targets, None)
    }

    /// Like [`BatchGeolocator::localize_batch_with_model`] with an explicit
    /// [`RouterEstimateSource`] consulted by `Recursive` router localization
    /// instead of re-running each router's sub-solve inline per target. A
    /// caching source (see `octant-service`) makes a batch of `N` targets
    /// behind `R` shared routers pay for `R` sub-localizations instead of
    /// `O(N · L)`; results stay bit-identical to the uncached path on a
    /// replay-stable provider.
    pub fn localize_batch_with_routers<P>(
        &self,
        provider: &P,
        model: &LandmarkModel,
        targets: &[NodeId],
        routers: Option<&dyn RouterEstimateSource>,
    ) -> Vec<LocationEstimate>
    where
        P: ObservationProvider + Sync,
    {
        targets
            .par_iter()
            .map_init(TargetScratch::default, |scratch, &target| {
                if model.contains_landmark(target) {
                    self.octant.localize(provider, model.landmark_ids(), target)
                } else {
                    self.octant
                        .localize_prepared(provider, model, target, true, routers, scratch)
                }
            })
            .collect()
    }

    /// Like [`BatchGeolocator::localize_batch_with_model`] but with per-stage
    /// profiling enabled: each estimate carries a
    /// [`octant_telemetry::StageProfile`] in
    /// [`LocationEstimate::profile`] breaking its solve wall time down by
    /// evidence source and solver stage.
    pub fn localize_batch_profiled<P>(
        &self,
        provider: &P,
        model: &LandmarkModel,
        targets: &[NodeId],
    ) -> Vec<LocationEstimate>
    where
        P: ObservationProvider + Sync,
    {
        self.localize_batch_with_routers_profiled(provider, model, targets, None)
    }

    /// [`BatchGeolocator::localize_batch_with_routers`] with per-stage
    /// profiling. Each target's solve runs under a thread-local
    /// [`octant_telemetry::begin_capture`] with a top-level `solve` span, so
    /// the returned [`LocationEstimate::profile`] partitions that target's
    /// measured wall time across `source.*`, `solver.*` and `region.*`
    /// stages (uninstrumented time stays attributed to `solve` itself). The
    /// estimates are otherwise bit-identical to the unprofiled path.
    pub fn localize_batch_with_routers_profiled<P>(
        &self,
        provider: &P,
        model: &LandmarkModel,
        targets: &[NodeId],
        routers: Option<&dyn RouterEstimateSource>,
    ) -> Vec<LocationEstimate>
    where
        P: ObservationProvider + Sync,
    {
        targets
            .par_iter()
            .map_init(TargetScratch::default, |scratch, &target| {
                let capture = octant_telemetry::begin_capture();
                let mut estimate = {
                    let _solve = octant_telemetry::span("solve");
                    if model.contains_landmark(target) {
                        self.octant.localize(provider, model.landmark_ids(), target)
                    } else {
                        self.octant
                            .localize_prepared(provider, model, target, true, routers, scratch)
                    }
                };
                estimate.profile = Some(capture.finish());
                estimate
            })
            .collect()
    }
}

impl Geolocator for BatchGeolocator {
    fn name(&self) -> &str {
        "Octant"
    }

    fn localize(
        &self,
        provider: &dyn ObservationProvider,
        landmarks: &[NodeId],
        target: NodeId,
    ) -> LocationEstimate {
        self.octant.localize(provider, landmarks, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use octant_netsim::probe::Prober;
    use octant_netsim::MeasurementDataset;

    fn small_dataset(n: usize, seed: u64) -> MeasurementDataset {
        let mut builder = NetworkBuilder::new(NetworkConfig {
            seed,
            ..NetworkConfig::default()
        });
        for site in octant_geo::sites::planetlab_51().iter().take(n) {
            builder = builder.add_host(HostSpec::from_site(site));
        }
        MeasurementDataset::capture(&Prober::new(builder.build(), seed))
    }

    #[test]
    fn empty_batch_is_empty() {
        let ds = small_dataset(6, 3);
        let hosts = ds.host_ids();
        let batch = BatchGeolocator::new(OctantConfig::default());
        assert!(batch.localize_batch(&ds, &hosts, &[]).is_empty());
    }

    #[test]
    fn batch_matches_sequential_on_a_dataset() {
        let ds = small_dataset(10, 11);
        let hosts = ds.host_ids();
        let (landmarks, targets) = hosts.split_at(7);
        let batch = BatchGeolocator::new(OctantConfig::default());
        let octant = Octant::new(OctantConfig::default());
        let estimates = batch.localize_batch(&ds, landmarks, targets);
        for (&target, est) in targets.iter().zip(&estimates) {
            let seq = octant.localize(&ds, landmarks, target);
            assert_eq!(
                est.point, seq.point,
                "point estimates diverged for {target:?}"
            );
            assert_eq!(
                est.region.as_ref().map(|r| r.area_km2()),
                seq.region.as_ref().map(|r| r.area_km2()),
                "region areas diverged for {target:?}"
            );
        }
    }

    #[test]
    fn landmark_targets_take_the_leave_one_out_path() {
        let ds = small_dataset(8, 5);
        let hosts = ds.host_ids();
        // Every host is a landmark AND a target: classic leave-one-out.
        let batch = BatchGeolocator::new(OctantConfig::default());
        let octant = Octant::new(OctantConfig::default());
        let estimates = batch.localize_batch(&ds, &hosts, &hosts);
        for (&target, est) in hosts.iter().zip(&estimates) {
            let seq = octant.localize(&ds, &hosts, target);
            assert_eq!(
                est.point, seq.point,
                "leave-one-out parity broke for {target:?}"
            );
        }
    }

    #[test]
    fn prepared_model_exposes_landmark_state() {
        let ds = small_dataset(9, 13);
        let hosts = ds.host_ids();
        let octant = Octant::new(OctantConfig::default());
        let model = octant.prepare_landmarks(&ds, &hosts[..6]);
        assert_eq!(model.landmark_count(), 6);
        assert_eq!(model.landmark_ids(), &hosts[..6]);
        assert!(model.contains_landmark(hosts[0]));
        assert!(!model.contains_landmark(hosts[7]));
        assert!(model.calibration(0).is_some());
        assert!(model.calibration(6).is_none());
        assert!(model.global_calibration().is_data_driven());
        assert_eq!(model.heights().len(), 6);

        let batch = BatchGeolocator::new(OctantConfig::default());
        let via_model = batch.localize_batch_with_model(&ds, &model, &hosts[6..]);
        let direct = batch.localize_batch(&ds, &hosts[..6], &hosts[6..]);
        for (a, b) in via_model.iter().zip(&direct) {
            assert_eq!(a.point, b.point);
        }
    }

    #[test]
    fn localize_with_model_matches_localize_on_both_dispatch_paths() {
        let ds = small_dataset(10, 21);
        let hosts = ds.host_ids();
        let octant = Octant::new(OctantConfig::default());
        let model = octant.prepare_landmarks(&ds, &hosts[..7]);

        // Non-landmark target: the shared-model fast path.
        let via_model = octant.localize_with_model(&ds, &model, hosts[8]);
        let direct = octant.localize(&ds, &hosts[..7], hosts[8]);
        assert_eq!(via_model.point, direct.point);
        assert_eq!(via_model.report, direct.report);

        // Landmark target: must be routed through leave-one-out, never the
        // shared model (whose calibrations include the target's own pings).
        let lm_via_model = octant.localize_with_model(&ds, &model, hosts[0]);
        let lm_direct = octant.localize(&ds, &hosts[..7], hosts[0]);
        assert_eq!(lm_via_model.point, lm_direct.point);
        assert_eq!(lm_via_model.report, lm_direct.report);
    }

    #[test]
    fn batch_geolocator_implements_geolocator() {
        let ds = small_dataset(8, 17);
        let hosts = ds.host_ids();
        let batch = BatchGeolocator::new(OctantConfig::default());
        let geolocator: &dyn Geolocator = &batch;
        assert_eq!(geolocator.name(), "Octant");
        let est = geolocator.localize(&ds, &hosts[1..], hosts[0]);
        assert!(est.point.is_some());
    }
}
