//! The weighted constraint solver (§2, §2.4).
//!
//! The paper's formal solution is `βᵢ = ⋂ positives \ ⋃ negatives`, but a
//! literal intersection is brittle: a single erroneous (overly aggressive)
//! constraint empties the estimate. Octant therefore weights constraints and
//! combines them so that high-weight constraints win conflicts and
//! low-weight constraints that would annihilate the estimate are set aside.
//!
//! This solver implements that policy as a greedy weighted combination:
//! constraints are applied in decreasing weight order, and a constraint that
//! would shrink the estimate below a configurable minimum area is skipped
//! (recorded in the [`SolveReport`]). The result is exactly the paper's
//! intersection when the constraints are consistent, and a maximal-weight
//! consistent subset when they are not.

use crate::constraint::{Constraint, ConstraintKind};
use octant_geo::point::GeoPoint;
use octant_geo::projection::AzimuthalEquidistant;
use octant_region::GeoRegion;
use serde::{Deserialize, Serialize};

/// Configuration of the constraint solver.
///
/// `#[non_exhaustive]`: construct via [`SolverConfig::default`] and the
/// builder-style `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SolverConfig {
    /// A constraint is skipped when applying it would leave less than this
    /// much area (km²). This is the "desired size threshold" of §2.4.
    pub min_region_area_km2: f64,
    /// A negative constraint is additionally skipped when it would remove
    /// more than this fraction of the current estimate: a single exclusion
    /// that wipes out most of what every positive constraint agreed on is far
    /// more likely to be an over-aggressive lower bound than real
    /// information (the weighted-combination rationale of §2.4).
    pub max_negative_removal_frac: f64,
    /// Boundary-simplification tolerance (km) applied to the running
    /// estimate between solver iterations. Chained boolean operations
    /// fragment ring boundaries at scanline band seams; reclaiming the
    /// (near-)collinear vertices after each applied constraint keeps the
    /// cost of subsequent operations from growing with chain length. The
    /// default is far below both the 1 km curve-flattening tolerance and
    /// any constraint radius, so it never affects localization decisions.
    pub simplify_tolerance_km: f64,
    /// The estimate's representation is re-simplified with escalating
    /// tolerance whenever it exceeds this many boundary vertices (see
    /// [`octant_region::Region::simplify_to_budget`]).
    pub max_estimate_vertices: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            min_region_area_km2: 5_000.0,
            max_negative_removal_frac: 0.6,
            simplify_tolerance_km: 0.25,
            max_estimate_vertices: 4096,
        }
    }
}

crate::config_setters!(SolverConfig {
    /// Sets the minimum preserved estimate area (km², §2.4).
    with_min_region_area_km2: min_region_area_km2: f64,
    /// Sets the cap on the estimate fraction one negative constraint may
    /// remove.
    with_max_negative_removal_frac: max_negative_removal_frac: f64,
    /// Sets the between-iterations boundary-simplification tolerance (km).
    with_simplify_tolerance_km: simplify_tolerance_km: f64,
    /// Sets the estimate's boundary vertex budget.
    with_max_estimate_vertices: max_estimate_vertices: usize,
});

/// Bookkeeping of what the solver did — how many constraints were applied and
/// how many were skipped as inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SolveReport {
    /// Positive constraints applied.
    pub applied_positive: usize,
    /// Positive constraints skipped because they conflicted with
    /// higher-weight information.
    pub skipped_positive: usize,
    /// Negative constraints applied.
    pub applied_negative: usize,
    /// Negative constraints skipped.
    pub skipped_negative: usize,
    /// Area of the final estimated region, km².
    pub final_area_km2: f64,
}

impl SolveReport {
    /// Total constraints considered.
    pub fn total(&self) -> usize {
        self.applied_positive
            + self.skipped_positive
            + self.applied_negative
            + self.skipped_negative
    }
}

/// The weighted constraint solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Solver {
    config: SolverConfig,
}

impl Solver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SolverConfig) -> Self {
        Solver { config }
    }

    /// The solver's configuration.
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Combines the constraints into an estimated location region.
    ///
    /// `projection` fixes the plane all regions are expressed in; it should
    /// be centred near the expected target position (any landmark-weighted
    /// centroid works — the azimuthal-equidistant distortion is negligible at
    /// constraint scale).
    pub fn solve(
        &self,
        projection: AzimuthalEquidistant,
        constraints: &[Constraint],
    ) -> (GeoRegion, SolveReport) {
        let (region, report, _) = self.solve_traced(projection, constraints);
        (region, report)
    }

    /// [`Solver::solve`] that additionally reports, per input constraint,
    /// whether it was applied (`true`) or set aside (`false`), aligned to
    /// `constraints` order. This is what attributes solver decisions back
    /// to the evidence source that emitted each constraint (the provenance
    /// report of the pipeline API). The region and [`SolveReport`] are
    /// identical to [`Solver::solve`]'s.
    pub fn solve_traced(
        &self,
        projection: AzimuthalEquidistant,
        constraints: &[Constraint],
    ) -> (GeoRegion, SolveReport, Vec<bool>) {
        let mut report = SolveReport::default();
        let mut applied = vec![false; constraints.len()];

        let positives_raw: Vec<(usize, &Constraint)> = constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == ConstraintKind::Positive)
            .collect();
        let mut negatives: Vec<(usize, &Constraint)> = constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == ConstraintKind::Negative)
            .collect();

        // Stable sorts on the weight alone, so ties keep input order — the
        // decision sequence matches the pre-traced solver exactly.
        let mut positives: Vec<(usize, &Constraint)> = positives_raw;
        positives.sort_by(|a, b| {
            b.1.weight
                .partial_cmp(&a.1.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        negatives.sort_by(|a, b| {
            b.1.weight
                .partial_cmp(&a.1.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // §2.4 weighted combination, greedy form: seed the estimate with the
        // highest-weight positive constraint whose region is itself large
        // enough to be meaningful (a degenerate region would otherwise poison
        // the whole combination), then fold in the remaining constraints in
        // decreasing weight order, setting aside any that would shrink the
        // estimate below the size threshold.
        let simplify_tol = self.config.simplify_tolerance_km;
        let mut estimate = GeoRegion::world(projection);
        let mut seeded = false;
        let mut pending: Vec<(usize, &Constraint)> = Vec::with_capacity(positives.len());
        for &(idx, c) in &positives {
            if !seeded {
                if c.region.area_km2() >= self.config.min_region_area_km2 {
                    estimate = c.region.reproject(projection);
                    report.applied_positive += 1;
                    applied[idx] = true;
                    seeded = true;
                } else {
                    report.skipped_positive += 1;
                }
                continue;
            }
            pending.push((idx, c));
        }

        // Chunked single-sweep application: along the greedy chain the
        // estimate's area only shrinks, so if a whole chunk of constraints
        // intersected at once (with the running estimate) clears the size
        // threshold, then every prefix inside the chunk did too and the
        // pairwise chain would have applied each of them — apply/skip
        // decisions match the pairwise chain (up to the tolerance-bounded,
        // shrink-only simplification the chain additionally applies between
        // steps, which the floor comfortably dominates), but N−1 pairwise
        // sweeps collapse into one n-ary sweep per chunk. A chunk that
        // fails the threshold is replayed pairwise (so conflict resolution
        // is unchanged) and the chunk size drops to 1 — single-constraint
        // "chunks" go straight to the pairwise op, so conflict-heavy
        // workloads degrade to the plain greedy chain with no wasted
        // sweeps; consistent stretches double the chunk back up. The
        // running estimate is an operand of every sweep, so its (small)
        // bounding box drives the sweep's y-window pruning.
        //
        // The chunk result stays **banded** across the §2.4 gate: the area
        // is read straight off the sweep's band decomposition, and rings
        // are only stitched at the simplify boundary of an *accepted*
        // chunk (the stitch itself reproduces the ring-form path's rings
        // bit for bit; a rejected chunk is discarded without ever
        // polygonizing). The gate *value* is the per-cell trapezoid sum
        // rather than the stitched rings' shoelace sum — equal to within
        // last-ulp rounding, ~12 orders of magnitude below the area
        // threshold — so decision identity is pinned empirically by the
        // parity goldens rather than holding bit-for-bit by construction.
        let max_vertices = self.config.max_estimate_vertices;
        if seeded {
            let mut idx = 0;
            let mut chunk = 4usize;
            while idx < pending.len() {
                let end = (idx + chunk).min(pending.len());
                let batch = &pending[idx..end];
                let combined_ok = batch.len() > 1 && {
                    let _span = octant_telemetry::span("solver.intersect");
                    let combined = GeoRegion::intersect_many_banded(
                        projection,
                        std::iter::once(&estimate).chain(batch.iter().map(|(_, c)| &c.region)),
                    );
                    if combined.area_km2() >= self.config.min_region_area_km2 {
                        report.applied_positive += batch.len();
                        for &(i, _) in batch {
                            applied[i] = true;
                        }
                        let _simplify = octant_telemetry::span("solver.simplify");
                        estimate = combined.into_geo_region().simplify_to_budget(
                            octant_geo::units::Distance::from_km(simplify_tol),
                            max_vertices,
                        );
                        true
                    } else {
                        false
                    }
                };
                if combined_ok {
                    chunk = (chunk * 2).min(16);
                } else {
                    // Replay this chunk pairwise so individual conflicting
                    // constraints are skipped exactly as the greedy chain
                    // would have.
                    let _span = octant_telemetry::span("solver.fallback");
                    let mut any_skipped = false;
                    for &(i, c) in batch {
                        let candidate = estimate.intersect(&c.region);
                        if candidate.area_km2() >= self.config.min_region_area_km2 {
                            let _simplify = octant_telemetry::span("solver.simplify");
                            estimate = candidate.simplify_to_budget(
                                octant_geo::units::Distance::from_km(simplify_tol),
                                max_vertices,
                            );
                            report.applied_positive += 1;
                            applied[i] = true;
                        } else {
                            report.skipped_positive += 1;
                            any_skipped = true;
                        }
                    }
                    chunk = if any_skipped { 1 } else { (chunk * 2).min(16) };
                }
                idx = end;
            }
        }

        for &(i, c) in &negatives {
            let candidate = estimate.subtract(&c.region);
            let floor = (estimate.area_km2()
                * (1.0 - self.config.max_negative_removal_frac.clamp(0.0, 1.0)))
            .max(self.config.min_region_area_km2);
            if candidate.area_km2() >= floor {
                estimate = candidate.simplify_to_budget(
                    octant_geo::units::Distance::from_km(simplify_tol),
                    max_vertices,
                );
                report.applied_negative += 1;
                applied[i] = true;
            } else {
                report.skipped_negative += 1;
            }
        }

        report.final_area_km2 = estimate.area_km2();
        (estimate, report, applied)
    }

    /// Convenience: solve and return the centroid point estimate alongside
    /// the region.
    pub fn solve_with_point(
        &self,
        projection: AzimuthalEquidistant,
        constraints: &[Constraint],
    ) -> (GeoRegion, Option<GeoPoint>, SolveReport) {
        let (region, report) = self.solve(projection, constraints);
        let point = region.centroid();
        (region, point, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use octant_geo::cities;
    use octant_geo::distance::great_circle_km;
    use octant_geo::units::Distance;

    fn proj() -> AzimuthalEquidistant {
        AzimuthalEquidistant::new(cities::by_code("pit").unwrap().location())
    }

    fn disk_at(code: &str, km: f64) -> GeoRegion {
        let c = cities::by_code(code).unwrap().location();
        GeoRegion::disk(proj(), c, Distance::from_km(km))
    }

    #[test]
    fn consistent_positive_constraints_are_all_applied() {
        // Three landmark disks that genuinely contain Pittsburgh.
        let constraints = vec![
            Constraint::positive(disk_at("nyc", 600.0), 0.9, "nyc"),
            Constraint::positive(disk_at("chi", 750.0), 0.8, "chi"),
            Constraint::positive(disk_at("was", 500.0), 0.7, "was"),
        ];
        let solver = Solver::default();
        let (region, report) = solver.solve(proj(), &constraints);
        assert_eq!(report.applied_positive, 3);
        assert_eq!(report.skipped_positive, 0);
        assert!(region.contains(cities::by_code("pit").unwrap().location()));
        assert!(!region.contains(cities::by_code("den").unwrap().location()));
        assert!(report.final_area_km2 > 0.0);
    }

    #[test]
    fn conflicting_low_weight_constraint_is_skipped() {
        // Two consistent high-weight disks around Pittsburgh plus a bogus
        // low-weight disk around Los Angeles that intersects neither.
        let constraints = vec![
            Constraint::positive(disk_at("nyc", 600.0), 0.9, "nyc"),
            Constraint::positive(disk_at("was", 500.0), 0.8, "was"),
            Constraint::positive(disk_at("lax", 300.0), 0.1, "bogus"),
        ];
        let solver = Solver::default();
        let (region, report) = solver.solve(proj(), &constraints);
        assert_eq!(report.applied_positive, 2);
        assert_eq!(report.skipped_positive, 1);
        assert!(!region.is_empty());
        assert!(region.contains(cities::by_code("pit").unwrap().location()));
    }

    #[test]
    fn weights_determine_who_wins_a_conflict() {
        // Two mutually exclusive disks; the heavier one must survive.
        let constraints = vec![
            Constraint::positive(disk_at("lax", 300.0), 0.9, "lax"),
            Constraint::positive(disk_at("bos", 300.0), 0.2, "bos"),
        ];
        let (region, report) = Solver::default().solve(proj(), &constraints);
        assert_eq!(report.applied_positive, 1);
        assert_eq!(report.skipped_positive, 1);
        assert!(region.contains(cities::by_code("lax").unwrap().location()));
        assert!(!region.contains(cities::by_code("bos").unwrap().location()));
    }

    #[test]
    fn negative_constraints_carve_holes_but_cannot_empty_the_estimate() {
        let constraints = vec![
            Constraint::positive(disk_at("pit", 400.0), 1.0, "pos"),
            Constraint::negative(disk_at("pit", 100.0), 0.8, "ring"),
            // A negative constraint covering everything would empty the
            // estimate, so it must be skipped.
            Constraint::negative(disk_at("pit", 5000.0), 0.5, "too big"),
        ];
        let (region, report) = Solver::default().solve(proj(), &constraints);
        assert_eq!(report.applied_negative, 1);
        assert_eq!(report.skipped_negative, 1);
        let pit = cities::by_code("pit").unwrap().location();
        assert!(!region.contains(pit), "the inner disk is excluded");
        assert!(
            region.contains(cities::by_code("cle").unwrap().location()),
            "the annulus remains"
        );
    }

    #[test]
    fn no_constraints_yields_the_world() {
        let (region, report) = Solver::default().solve(proj(), &[]);
        assert_eq!(report.total(), 0);
        assert!(region.contains(cities::by_code("nrt").unwrap().location()));
        assert!(region.contains(cities::by_code("lax").unwrap().location()));
    }

    #[test]
    fn point_estimate_lands_between_consistent_landmarks() {
        let constraints = vec![
            Constraint::positive(disk_at("nyc", 620.0), 0.9, "nyc"),
            Constraint::positive(disk_at("chi", 780.0), 0.8, "chi"),
        ];
        let (region, point, _) = Solver::default().solve_with_point(proj(), &constraints);
        let p = point.unwrap();
        assert!(
            region.contains(p),
            "the centroid of the estimate lies inside it"
        );
        // Roughly between NYC and Chicago: within 600 km of Pittsburgh.
        assert!(great_circle_km(p, cities::by_code("pit").unwrap().location()) < 600.0);
    }

    #[test]
    fn min_area_threshold_is_respected() {
        let solver = Solver::new(SolverConfig {
            min_region_area_km2: 1_000_000.0,
            ..SolverConfig::default()
        });
        let constraints = vec![
            Constraint::positive(disk_at("nyc", 600.0), 0.9, "nyc"),
            // Applying this would leave less than the (huge) minimum area.
            Constraint::positive(disk_at("chi", 750.0), 0.8, "chi"),
        ];
        let (region, report) = solver.solve(proj(), &constraints);
        assert_eq!(report.applied_positive, 1);
        assert_eq!(report.skipped_positive, 1);
        assert!(region.area_km2() >= 1_000_000.0);
    }

    #[test]
    fn traced_solve_attributes_decisions_to_input_order() {
        let constraints = vec![
            Constraint::positive(disk_at("nyc", 600.0), 0.9, "nyc"),
            Constraint::positive(disk_at("was", 500.0), 0.8, "was"),
            Constraint::positive(disk_at("lax", 300.0), 0.1, "bogus"),
            Constraint::negative(disk_at("pit", 5000.0), 0.5, "too big"),
        ];
        let (region, report, applied) = Solver::default().solve_traced(proj(), &constraints);
        assert_eq!(applied, vec![true, true, false, false]);
        assert_eq!(
            applied.iter().filter(|a| **a).count(),
            report.applied_positive + report.applied_negative
        );
        // Identical to the untraced entry point, bit for bit.
        let (r2, rep2) = Solver::default().solve(proj(), &constraints);
        assert_eq!(report, rep2);
        assert_eq!(region.area_km2().to_bits(), r2.area_km2().to_bits());
    }

    #[test]
    fn report_totals_add_up() {
        let constraints = vec![
            Constraint::positive(disk_at("nyc", 600.0), 0.9, "a"),
            Constraint::positive(disk_at("was", 600.0), 0.8, "b"),
            Constraint::negative(disk_at("nyc", 50.0), 0.5, "c"),
        ];
        let (_, report) = Solver::default().solve(proj(), &constraints);
        assert_eq!(report.total(), 3);
        assert!(report.final_area_km2 > 0.0);
    }
}
