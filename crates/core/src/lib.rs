//! # octant
//!
//! A Rust implementation of **Octant** — the comprehensive framework for the
//! geolocalization of Internet hosts introduced by Wong, Stoyanov and Sirer
//! (NSDI 2007).
//!
//! Octant poses geolocalization as *error-minimizing constraint
//! satisfaction*: every network measurement from a landmark (a host whose
//! position is at least approximately known) is converted into a geometric
//! constraint — positive ("the target lies within `R(d)` of me") or negative
//! ("the target lies farther than `r(d)` from me") — and the target's
//! estimated location region is the weighted combination of those
//! constraints, represented as a Bézier-bounded region that may be non-convex
//! and disconnected.
//!
//! The crate is organised by the sections of the paper:
//!
//! | Paper section | Module |
//! |---|---|
//! | §2 constraint framework, region representation | [`constraint`], [`solver`] (regions come from `octant-region`) |
//! | §2.1 mapping latencies to distances (convex-hull calibration, cutoff ρ) | [`calibration`] |
//! | §2.2 queuing delays ("heights") | [`heights`], [`linalg`] |
//! | §2.3 indirect routes (piecewise localization of routers) | [`piecewise`] |
//! | §2.4 handling uncertainty (weights, weighted solution) | [`constraint`], [`solver`] |
//! | §2.5 geographic constraints (oceans, WHOIS) | [`geography`] |
//! | §3 evaluation harness | [`eval`] |
//!
//! The top-level entry point is [`Octant`]: configure it with an
//! [`OctantConfig`], hand it an
//! [`octant_netsim::ObservationProvider`] (the live simulator, a recorded
//! dataset, or your own implementation backed by real measurements), a set of
//! landmarks and a target, and it produces a [`LocationEstimate`].
//!
//! ```
//! use octant::{Octant, OctantConfig, Geolocator};
//! use octant_netsim::{NetworkBuilder, NetworkConfig, Prober, ObservationProvider};
//!
//! // Simulate a small PlanetLab-like deployment.
//! let network = NetworkBuilder::planetlab(NetworkConfig::default()).build();
//! let prober = Prober::new(network, 7);
//! let hosts = prober.hosts();
//!
//! // Use every host except the first as a landmark; localize the first.
//! let target = hosts[0].id;
//! let landmarks: Vec<_> = hosts[1..].iter().map(|h| h.id).collect();
//!
//! let octant = Octant::new(OctantConfig::default());
//! let estimate = octant.localize(&prober, &landmarks, target);
//! assert!(estimate.point.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod calibration;
pub mod constraint;
pub mod eval;
pub mod framework;
pub mod geography;
pub mod heights;
pub mod linalg;
pub mod piecewise;
pub mod solver;

pub use batch::{BatchGeolocator, LandmarkModel, TargetScratch};
pub use constraint::{Constraint, ConstraintKind};
pub use eval::{ErrorCdf, TargetOutcome};
pub use framework::{
    Geolocator, LocationEstimate, Octant, OctantConfig, RouterEstimate, RouterEstimateSource,
    RouterLocalization,
};
pub use solver::{SolveReport, Solver};
