//! # octant
//!
//! A Rust implementation of **Octant** — the comprehensive framework for the
//! geolocalization of Internet hosts introduced by Wong, Stoyanov and Sirer
//! (NSDI 2007).
//!
//! Octant poses geolocalization as *error-minimizing constraint
//! satisfaction*: every network measurement from a landmark (a host whose
//! position is at least approximately known) is converted into a geometric
//! constraint — positive ("the target lies within `R(d)` of me") or negative
//! ("the target lies farther than `r(d)` from me") — and the target's
//! estimated location region is the weighted combination of those
//! constraints, represented as a Bézier-bounded region that may be non-convex
//! and disconnected.
//!
//! The crate is organised by the sections of the paper:
//!
//! | Paper section | Module |
//! |---|---|
//! | §2 constraint framework, region representation | [`constraint`], [`solver`] (regions come from `octant-region`) |
//! | §2/§2.5 composable evidence ("any information → constraints") | [`pipeline`] |
//! | §2.1 mapping latencies to distances (convex-hull calibration, cutoff ρ) | [`calibration`] |
//! | §2.2 queuing delays ("heights") | [`heights`], [`linalg`] |
//! | §2.3 indirect routes (piecewise localization of routers) | [`piecewise`] |
//! | §2.4 handling uncertainty (weights, weighted solution) | [`constraint`], [`solver`] |
//! | §2.5 geographic constraints (oceans, WHOIS) | [`geography`] |
//! | §3 evaluation harness | [`eval`] |
//! | §3 measurement methodology (stage timing, cache/solver counters) | `octant-telemetry` (spans, metrics registry, [`LocationEstimate::profile`]) |
//!
//! ## Evidence sources and the §2.5/§3 ablations
//!
//! The paper evaluates Octant by toggling constraint families (§3's
//! ablations; §2.5's "comprehensive framework" claim). Each family is a
//! [`pipeline::ConstraintSource`] you can enable, disable, or re-weight
//! without touching the framework:
//!
//! | Evidence (paper) | Source | Switch |
//! |---|---|---|
//! | §2.1/§2.2 latency shells (positive + negative) | [`pipeline::LatencySource`] | [`OctantConfig::use_negative_constraints`] (negatives) |
//! | §2.3 indirect routes via router sub-localization | [`pipeline::RouterSource`] | [`OctantConfig::router_localization`] |
//! | §2.5 WHOIS registration hints | [`pipeline::HintSource`] | [`OctantConfig::use_whois`] |
//! | §2.5 DNS naming hints for the target itself | [`pipeline::DnsNameSource`] | [`OctantConfig::use_dns_hints`] |
//! | §2.5 demographic (population) priors | [`pipeline::PopulationPrior`] | [`OctantConfig::use_population_prior`] |
//! | §2.5 oceans / uninhabitable areas | [`pipeline::GeographySource`] | [`OctantConfig::use_landmass_constraint`] |
//!
//! Every [`LocationEstimate`] carries a [`pipeline::ProvenanceReport`]
//! recording what each source contributed, so an ablation study is "flip a
//! switch, diff the provenance".
//!
//! The top-level entry point is [`Octant`]: configure it with an
//! [`OctantConfig`], hand it an
//! [`octant_netsim::ObservationProvider`] (the live simulator, a recorded
//! dataset, or your own implementation backed by real measurements), a set of
//! landmarks and a target, and it produces a [`LocationEstimate`].
//!
//! ```
//! use octant::{Octant, OctantConfig, Geolocator};
//! use octant_netsim::{NetworkBuilder, NetworkConfig, Prober, ObservationProvider};
//!
//! // Simulate a small PlanetLab-like deployment.
//! let network = NetworkBuilder::planetlab(NetworkConfig::default()).build();
//! let prober = Prober::new(network, 7);
//! let hosts = prober.hosts();
//!
//! // Use every host except the first as a landmark; localize the first.
//! let target = hosts[0].id;
//! let landmarks: Vec<_> = hosts[1..].iter().map(|h| h.id).collect();
//!
//! let octant = Octant::new(OctantConfig::default());
//! let estimate = octant.localize(&prober, &landmarks, target);
//! assert!(estimate.point.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Generates builder-style `with_*` setters for a `#[non_exhaustive]`
/// config struct — the one place the setter pattern lives, shared by every
/// config in this crate and in `octant-service`.
///
/// ```ignore
/// octant::config_setters!(MyConfig {
///     /// Sets the thing.
///     with_thing: thing: usize,
/// });
/// ```
#[macro_export]
#[doc(hidden)]
macro_rules! config_setters {
    ($(#[$outer:meta])* $struct:ident { $($(#[$doc:meta])* $setter:ident: $field:ident: $ty:ty),+ $(,)? }) => {
        impl $struct {
            $(
                $(#[$doc])*
                #[must_use]
                pub fn $setter(mut self, value: $ty) -> Self {
                    self.$field = value;
                    self
                }
            )+
        }
    };
}

pub mod batch;
pub mod calibration;
pub mod constraint;
pub mod eval;
pub mod framework;
pub mod geography;
pub mod heights;
pub mod linalg;
pub mod piecewise;
pub mod pipeline;
pub mod solver;

pub use batch::{BatchGeolocator, LandmarkModel, TargetScratch};
pub use constraint::{Constraint, ConstraintKind, DEFAULT_WEIGHT_DECAY_MS};
pub use eval::{ErrorCdf, TargetOutcome};
pub use framework::{
    Geolocator, LocationEstimate, Octant, OctantConfig, RecalibrationReport, RouterEstimate,
    RouterEstimateSource, RouterLocalization,
};
pub use pipeline::{
    ConstraintSource, EvidencePipeline, ProvenanceReport, SourceId, SourceReport, TargetContext,
};
pub use solver::{SolveReport, Solver};
