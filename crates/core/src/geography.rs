//! Geographic and demographic constraints (§2.5).
//!
//! Beyond latency, Octant folds in any geographic knowledge available:
//! negative constraints removing oceans and other uninhabitable areas, and
//! positive constraints derived from the WHOIS record of the target's IP
//! prefix (a city/ZIP-level registration that is sometimes stale or wrong and
//! therefore enters with a modest weight).

use crate::constraint::Constraint;
use octant_geo::cities;
use octant_geo::landmass::LANDMASSES;
use octant_geo::point::GeoPoint;
use octant_geo::projection::AzimuthalEquidistant;
use octant_geo::units::Distance;
use octant_region::GeoRegion;

/// The union of all coarse landmass outlines, expressed in `projection`.
/// Intersecting an estimate with this region implements the paper's "the
/// target is not in an ocean" negative constraint.
///
/// The outlines are merged in a single n-ary sweep ([`GeoRegion::union_many`])
/// instead of a chain of pairwise unions; mutually bbox-disjoint continents
/// (the common case) concatenate without any sweep at all.
pub fn landmass_union(projection: AzimuthalEquidistant) -> GeoRegion {
    let regions: Vec<GeoRegion> = LANDMASSES
        .iter()
        .map(|lm| GeoRegion::from_landmass(projection, lm))
        .collect();
    GeoRegion::union_many(projection, regions.iter())
}

/// [`landmass_union`] behind a process-wide per-projection cache.
///
/// Every solve (and every recursive router sub-solve) folds the landmass
/// restriction in, and each used to rebuild the union — projecting every
/// outline vertex and re-running the union sweep — from scratch. The union
/// depends only on the projection centre, so it is cached in a
/// process-wide map keyed on the centre's coordinate bits, mirroring
/// [`population_prior_region_cached`]'s process-wide pattern. Unlike the
/// population prior the cached value is **built directly in the requested
/// projection** (not reprojected from a reference projection), so cache
/// hits are bit-identical to fresh builds — repeated solves of the same
/// target, replayed service requests and cache-backed router sub-solves
/// all reuse the exact region the uncached path would compute.
///
/// The map is bounded: when it exceeds a fixed cap (distinct projections
/// are as numerous as distinct targets) it is cleared wholesale — the next
/// build repopulates it, and correctness never depends on residency.
/// Hit/miss counters are published as `landmass_cache.hits` /
/// `landmass_cache.misses` in [`octant_telemetry::MetricsRegistry::global`].
pub fn landmass_union_cached(projection: AzimuthalEquidistant) -> std::sync::Arc<GeoRegion> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};

    type LandCache = Mutex<HashMap<(u64, u64), Arc<GeoRegion>>>;
    static CACHE: OnceLock<LandCache> = OnceLock::new();
    const MAX_ENTRIES: usize = 1024;

    let center = projection.center();
    let key = (center.lat.to_bits(), center.lon.to_bits());
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let map = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = map.get(&key) {
            land_cache_hits().inc();
            return hit.clone();
        }
    }
    // Build outside the lock: concurrent misses may both build (identical
    // values — the build is deterministic), but neither blocks the other.
    land_cache_misses().inc();
    let built = Arc::new(landmass_union(projection));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if map.len() >= MAX_ENTRIES {
        map.clear();
    }
    map.entry(key).or_insert_with(|| built.clone()).clone()
}

fn land_cache_hits() -> &'static octant_telemetry::Counter {
    static HITS: std::sync::OnceLock<octant_telemetry::Counter> = std::sync::OnceLock::new();
    HITS.get_or_init(|| octant_telemetry::MetricsRegistry::global().counter("landmass_cache.hits"))
}

fn land_cache_misses() -> &'static octant_telemetry::Counter {
    static MISSES: std::sync::OnceLock<octant_telemetry::Counter> = std::sync::OnceLock::new();
    MISSES.get_or_init(|| {
        octant_telemetry::MetricsRegistry::global().counter("landmass_cache.misses")
    })
}

/// `(hits, misses)` counters of [`landmass_union_cached`], process-wide and
/// monotonically increasing (callers measure deltas).
#[deprecated(
    since = "0.1.0",
    note = "read `landmass_cache.hits` / `landmass_cache.misses` from \
            `octant_telemetry::MetricsRegistry::global()` instead"
)]
pub fn landmass_cache_stats() -> (u64, u64) {
    (land_cache_hits().get(), land_cache_misses().get())
}

/// Restricts `estimate` to land. When the intersection would wipe the
/// estimate out entirely (which can only happen if the estimate already
/// contradicts the latency constraints), the original estimate is returned
/// unchanged — geographic hints must never empty the solution (§2.4's
/// robustness principle).
pub fn restrict_to_land(estimate: &GeoRegion) -> GeoRegion {
    let land = landmass_union_cached(estimate.projection());
    let restricted = estimate.intersect(&land);
    if restricted.is_empty() {
        estimate.clone()
    } else {
        restricted
    }
}

/// A positive constraint from a WHOIS registration: the target is believed to
/// be within `radius` of the registered city. Returns `None` when the city
/// code is unknown to the city table.
pub fn whois_constraint(
    projection: AzimuthalEquidistant,
    city_code: &str,
    radius: Distance,
    weight: f64,
) -> Option<Constraint> {
    let city = cities::by_code(city_code)?;
    let region = GeoRegion::disk(projection, city.location(), radius);
    Some(Constraint::positive(
        region,
        weight,
        format!("whois:{}", city.code),
    ))
}

/// A positive constraint from a known city hint (e.g. a router whose DNS name
/// reveals its city), with an explicit radius and weight.
pub fn city_hint_constraint(
    projection: AzimuthalEquidistant,
    city: &cities::City,
    radius: Distance,
    weight: f64,
    label: impl Into<String>,
) -> Constraint {
    let region = GeoRegion::disk(projection, city.location(), radius);
    Constraint::positive(region, weight, label)
}

/// `true` when a point is on land according to the coarse landmass outlines
/// (re-exported convenience used by the evaluation and the examples).
pub fn is_plausible_host_location(p: GeoPoint) -> bool {
    octant_geo::landmass::is_on_land(p)
}

/// A coarse population-density prior region (§2.5's demographic
/// constraints): the city table is aggregated onto a `cell_deg`-degree
/// lat/lon grid, and every cell whose summed metro population clears
/// `min_cell_population_k` contributes a disk at its population-weighted
/// centroid, sized to cover the cell. The union of those disks is where
/// "most hosts plausibly are" — used by the `PopulationPrior` source as a
/// low-weight positive constraint.
///
/// Deterministic: cells are accumulated and unioned in sorted grid order,
/// so repeated calls produce bit-identical regions.
pub fn population_prior_region(
    projection: AzimuthalEquidistant,
    cell_deg: f64,
    min_cell_population_k: u32,
) -> GeoRegion {
    use std::collections::BTreeMap;
    let cell = cell_deg.clamp(1.0, 45.0);
    // (pop sum, pop-weighted lat sum, pop-weighted lon sum) per grid cell.
    let mut cells: BTreeMap<(i32, i32), (f64, f64, f64)> = BTreeMap::new();
    for city in cities::CITIES {
        let key = (
            (city.lat / cell).floor() as i32,
            (city.lon / cell).floor() as i32,
        );
        let pop = city.population_k as f64;
        let entry = cells.entry(key).or_insert((0.0, 0.0, 0.0));
        entry.0 += pop;
        entry.1 += pop * city.lat;
        entry.2 += pop * city.lon;
    }
    // A disk that covers the whole cell from its population-weighted
    // centroid: the centroid is only guaranteed to lie *somewhere* inside
    // the cell, so the radius must be the full equatorial cell diagonal
    // (the farthest any cell point can be from any interior point; cells
    // only shrink towards the poles). A tighter radius would let a metro
    // near the far corner of a qualifying cell fall outside the prior and
    // be wrongly excluded.
    let radius_km = cell * 111.32 * std::f64::consts::SQRT_2;
    let disks: Vec<GeoRegion> = cells
        .values()
        .filter(|(pop, _, _)| *pop >= min_cell_population_k as f64)
        .map(|(pop, lat_sum, lon_sum)| {
            let center = GeoPoint::new(lat_sum / pop, lon_sum / pop);
            // A planar circle in azimuthal-equidistant covers less *true*
            // tangential distance the farther its centre sits from the
            // projection origin (by sin(c)/c for angular distance c).
            // Inflate the radius by the inverse factor so the geodesic
            // cell-coverage guarantee holds wherever the projection is
            // centred — essential for the cached variant, which builds
            // the prior once in a fixed reference projection. Inflation
            // only loosens the prior, never tightens it. The factor is
            // clamped: near the antipode the projection degenerates, but
            // antipodal cells are ~20 000 km from the estimate and can
            // never interact with a solve's constraint region.
            let c_rad = octant_geo::distance::great_circle(projection.center(), center).km()
                / octant_geo::EARTH_RADIUS_KM;
            let inflate = if c_rad < 1e-6 {
                1.0
            } else {
                (c_rad / c_rad.sin().abs().max(1e-3)).min(4.0)
            };
            GeoRegion::disk(projection, center, Distance::from_km(radius_km * inflate))
        })
        .collect();
    GeoRegion::union_many(projection, disks.iter())
}

/// [`population_prior_region`] behind a process-wide cache: the aggregation
/// and union depend only on the two knobs, so they are computed **once** in
/// a fixed reference projection and reprojected onto each solve's
/// projection (the same reproject-per-target pattern the router-constraint
/// caches use). This is what the `PopulationPrior` source calls — without
/// it, every target solve (and every recursive router sub-solve inheriting
/// the flag) would rebuild the whole grid union from scratch.
pub fn population_prior_region_cached(
    projection: AzimuthalEquidistant,
    cell_deg: f64,
    min_cell_population_k: u32,
) -> GeoRegion {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};

    type PriorCache = Mutex<HashMap<(u64, u32), Arc<GeoRegion>>>;
    static CACHE: OnceLock<PriorCache> = OnceLock::new();

    let key = (cell_deg.to_bits(), min_cell_population_k);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let reference = {
        let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key)
            .or_insert_with(|| {
                let reference_projection = AzimuthalEquidistant::new(GeoPoint::new(0.0, 0.0));
                Arc::new(population_prior_region(
                    reference_projection,
                    cell_deg,
                    min_cell_population_k,
                ))
            })
            .clone()
    };
    reference.reproject(projection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::units::Distance;

    fn proj() -> AzimuthalEquidistant {
        AzimuthalEquidistant::new(GeoPoint::new(40.0, -75.0))
    }

    #[test]
    fn landmass_union_contains_major_cities_not_oceans() {
        let land = landmass_union(proj());
        for code in ["nyc", "chi", "lax", "mia"] {
            assert!(
                land.contains(cities::by_code(code).unwrap().location()),
                "{code} should be on land"
            );
        }
        assert!(
            !land.contains(GeoPoint::new(35.0, -45.0)),
            "mid-Atlantic is ocean"
        );
    }

    #[test]
    fn restricting_to_land_removes_ocean_area() {
        let nyc = cities::by_code("nyc").unwrap().location();
        let region = GeoRegion::disk(proj(), nyc, Distance::from_km(600.0));
        let restricted = restrict_to_land(&region);
        assert!(
            restricted.area_km2() < region.area_km2(),
            "the Atlantic part must disappear"
        );
        assert!(restricted.contains(cities::by_code("phl").unwrap().location()));
        assert!(!restricted.contains(GeoPoint::new(37.5, -68.0)));
    }

    #[test]
    fn restriction_never_empties_the_estimate() {
        // A disk entirely in the middle of the Pacific: restricting it to
        // land would empty it, so the original must be returned.
        let pacific = GeoPoint::new(30.0, -160.0);
        let region = GeoRegion::disk(
            AzimuthalEquidistant::new(pacific),
            pacific,
            Distance::from_km(300.0),
        );
        let restricted = restrict_to_land(&region);
        assert!(!restricted.is_empty());
        assert!((restricted.area_km2() - region.area_km2()).abs() < 1.0);
    }

    #[test]
    fn whois_constraints_resolve_known_cities() {
        let c = whois_constraint(proj(), "chi", Distance::from_km(200.0), 0.4).unwrap();
        assert!(c.is_positive());
        assert_eq!(c.weight, 0.4);
        assert!(c
            .region
            .contains(cities::by_code("chi").unwrap().location()));
        assert!(!c
            .region
            .contains(cities::by_code("nyc").unwrap().location()));
        assert!(whois_constraint(proj(), "not-a-city", Distance::from_km(200.0), 0.4).is_none());
    }

    #[test]
    fn city_hint_constraint_is_centred_on_the_city() {
        let city = cities::by_code("den").unwrap();
        let c = city_hint_constraint(proj(), city, Distance::from_km(150.0), 0.9, "router hint");
        assert!(c.region.contains(city.location()));
        assert_eq!(c.label, "router hint");
    }

    #[test]
    fn plausibility_check_delegates_to_landmass_data() {
        assert!(is_plausible_host_location(GeoPoint::new(40.71, -74.01)));
        assert!(!is_plausible_host_location(GeoPoint::new(0.0, -30.0)));
    }

    #[test]
    fn cached_landmass_union_is_bit_identical_and_counts_hits() {
        // Read hit/miss counters straight off the process-wide registry
        // (`landmass_cache_stats()` is the deprecated shim over the same
        // counters, kept only for external callers).
        let counters = || (land_cache_hits().get(), land_cache_misses().get());
        // A projection centre no other test uses, so the first call is a
        // genuine miss whatever the test interleaving.
        let p = AzimuthalEquidistant::new(GeoPoint::new(51.23456, -0.54321));
        let fresh = landmass_union(p);
        let (_, m0) = counters();
        let first = landmass_union_cached(p);
        let (h1, m1) = counters();
        // The counters are process-wide and other tests in this binary may
        // drive solves concurrently, so only *our* contribution is pinned:
        // a never-seen key must record at least one miss (ours).
        assert!(m1 - m0 >= 1, "first lookup builds");
        // The cached build runs in the requested projection directly, so it
        // is bit-identical to the uncached construction.
        assert_eq!(first.area_km2().to_bits(), fresh.area_km2().to_bits());
        assert_eq!(first.region().ring_count(), fresh.region().ring_count());

        let second = landmass_union_cached(p);
        let (h2, _) = counters();
        // The race-proof hit evidence: the same shared value comes back (a
        // pointer bump, not a rebuild), and at least our hit was counted.
        assert!(
            std::sync::Arc::ptr_eq(&first, &second),
            "second lookup must replay the cached Arc"
        );
        assert!(h2 - h1 >= 1, "second lookup hits");
        assert_eq!(second.area_km2().to_bits(), first.area_km2().to_bits());
    }

    #[test]
    fn cached_landmass_union_reprojection_parity() {
        // Membership agreement between unions built (and cached) under two
        // different projection centres, and against a reprojection of one
        // onto the other: the per-projection cache must behave exactly like
        // building in the target projection, including for consumers that
        // reproject regions across solves.
        let p_east = AzimuthalEquidistant::new(GeoPoint::new(40.7001, -74.0001));
        let p_west = AzimuthalEquidistant::new(GeoPoint::new(47.6001, -122.3001));
        let east = landmass_union_cached(p_east);
        let west = landmass_union_cached(p_west);
        let east_on_west = east.reproject(p_west);
        for code in ["nyc", "chi", "den", "sea", "mia"] {
            let city = cities::by_code(code).unwrap().location();
            assert!(east.contains(city), "{code} on land (east projection)");
            assert!(west.contains(city), "{code} on land (west projection)");
            assert!(
                east_on_west.contains(city),
                "{code} survives reprojection of the cached union"
            );
        }
        for ocean in [GeoPoint::new(35.0, -45.0), GeoPoint::new(30.0, -160.0)] {
            assert!(!east.contains(ocean));
            assert!(!west.contains(ocean));
            assert!(!east_on_west.contains(ocean));
        }
    }

    #[test]
    fn population_prior_covers_metros_and_skips_open_ocean() {
        let prior = population_prior_region(proj(), 7.5, 1500);
        assert!(!prior.is_empty());
        for code in ["nyc", "chi", "lhr", "nrt"] {
            assert!(
                prior.contains(cities::by_code(code).unwrap().location()),
                "{code} should be inside the population prior"
            );
        }
        assert!(
            !prior.contains(GeoPoint::new(35.0, -45.0)),
            "mid-Atlantic has no population"
        );
        // Deterministic across calls (bit-identical area).
        let again = population_prior_region(proj(), 7.5, 1500);
        assert_eq!(prior.area_km2().to_bits(), again.area_km2().to_bits());
    }

    #[test]
    fn population_prior_threshold_filters_cells() {
        let loose = population_prior_region(proj(), 7.5, 1000);
        let strict = population_prior_region(proj(), 7.5, 20_000);
        assert!(strict.area_km2() < loose.area_km2());
    }

    #[test]
    fn cached_population_prior_still_covers_metros_after_reprojection() {
        // The cached variant builds the prior once in a reference
        // projection centred at (0, 0) and reprojects — the tangential
        // compression of far-from-origin disks must not break the
        // cell-coverage guarantee (that is what the distortion inflation
        // in `population_prior_region` exists for).
        let prior = population_prior_region_cached(proj(), 7.5, 1500);
        for code in ["nyc", "chi", "lax", "sea", "lhr", "nrt"] {
            assert!(
                prior.contains(cities::by_code(code).unwrap().location()),
                "{code} must stay inside the cached, reprojected prior"
            );
        }
        // Second call hits the cache and reprojects identically.
        let again = population_prior_region_cached(proj(), 7.5, 1500);
        assert_eq!(prior.area_km2().to_bits(), again.area_km2().to_bits());
    }
}
