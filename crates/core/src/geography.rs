//! Geographic and demographic constraints (§2.5).
//!
//! Beyond latency, Octant folds in any geographic knowledge available:
//! negative constraints removing oceans and other uninhabitable areas, and
//! positive constraints derived from the WHOIS record of the target's IP
//! prefix (a city/ZIP-level registration that is sometimes stale or wrong and
//! therefore enters with a modest weight).

use crate::constraint::Constraint;
use octant_geo::cities;
use octant_geo::landmass::LANDMASSES;
use octant_geo::point::GeoPoint;
use octant_geo::projection::AzimuthalEquidistant;
use octant_geo::units::Distance;
use octant_region::GeoRegion;

/// The union of all coarse landmass outlines, expressed in `projection`.
/// Intersecting an estimate with this region implements the paper's "the
/// target is not in an ocean" negative constraint.
///
/// The outlines are merged in a single n-ary sweep ([`GeoRegion::union_many`])
/// instead of a chain of pairwise unions; mutually bbox-disjoint continents
/// (the common case) concatenate without any sweep at all.
pub fn landmass_union(projection: AzimuthalEquidistant) -> GeoRegion {
    let regions: Vec<GeoRegion> = LANDMASSES
        .iter()
        .map(|lm| GeoRegion::from_landmass(projection, lm))
        .collect();
    GeoRegion::union_many(projection, regions.iter())
}

/// Restricts `estimate` to land. When the intersection would wipe the
/// estimate out entirely (which can only happen if the estimate already
/// contradicts the latency constraints), the original estimate is returned
/// unchanged — geographic hints must never empty the solution (§2.4's
/// robustness principle).
pub fn restrict_to_land(estimate: &GeoRegion) -> GeoRegion {
    let land = landmass_union(estimate.projection());
    let restricted = estimate.intersect(&land);
    if restricted.is_empty() {
        estimate.clone()
    } else {
        restricted
    }
}

/// A positive constraint from a WHOIS registration: the target is believed to
/// be within `radius` of the registered city. Returns `None` when the city
/// code is unknown to the city table.
pub fn whois_constraint(
    projection: AzimuthalEquidistant,
    city_code: &str,
    radius: Distance,
    weight: f64,
) -> Option<Constraint> {
    let city = cities::by_code(city_code)?;
    let region = GeoRegion::disk(projection, city.location(), radius);
    Some(Constraint::positive(
        region,
        weight,
        format!("whois:{}", city.code),
    ))
}

/// A positive constraint from a known city hint (e.g. a router whose DNS name
/// reveals its city), with an explicit radius and weight.
pub fn city_hint_constraint(
    projection: AzimuthalEquidistant,
    city: &cities::City,
    radius: Distance,
    weight: f64,
    label: impl Into<String>,
) -> Constraint {
    let region = GeoRegion::disk(projection, city.location(), radius);
    Constraint::positive(region, weight, label)
}

/// `true` when a point is on land according to the coarse landmass outlines
/// (re-exported convenience used by the evaluation and the examples).
pub fn is_plausible_host_location(p: GeoPoint) -> bool {
    octant_geo::landmass::is_on_land(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::units::Distance;

    fn proj() -> AzimuthalEquidistant {
        AzimuthalEquidistant::new(GeoPoint::new(40.0, -75.0))
    }

    #[test]
    fn landmass_union_contains_major_cities_not_oceans() {
        let land = landmass_union(proj());
        for code in ["nyc", "chi", "lax", "mia"] {
            assert!(
                land.contains(cities::by_code(code).unwrap().location()),
                "{code} should be on land"
            );
        }
        assert!(
            !land.contains(GeoPoint::new(35.0, -45.0)),
            "mid-Atlantic is ocean"
        );
    }

    #[test]
    fn restricting_to_land_removes_ocean_area() {
        let nyc = cities::by_code("nyc").unwrap().location();
        let region = GeoRegion::disk(proj(), nyc, Distance::from_km(600.0));
        let restricted = restrict_to_land(&region);
        assert!(
            restricted.area_km2() < region.area_km2(),
            "the Atlantic part must disappear"
        );
        assert!(restricted.contains(cities::by_code("phl").unwrap().location()));
        assert!(!restricted.contains(GeoPoint::new(37.5, -68.0)));
    }

    #[test]
    fn restriction_never_empties_the_estimate() {
        // A disk entirely in the middle of the Pacific: restricting it to
        // land would empty it, so the original must be returned.
        let pacific = GeoPoint::new(30.0, -160.0);
        let region = GeoRegion::disk(
            AzimuthalEquidistant::new(pacific),
            pacific,
            Distance::from_km(300.0),
        );
        let restricted = restrict_to_land(&region);
        assert!(!restricted.is_empty());
        assert!((restricted.area_km2() - region.area_km2()).abs() < 1.0);
    }

    #[test]
    fn whois_constraints_resolve_known_cities() {
        let c = whois_constraint(proj(), "chi", Distance::from_km(200.0), 0.4).unwrap();
        assert!(c.is_positive());
        assert_eq!(c.weight, 0.4);
        assert!(c
            .region
            .contains(cities::by_code("chi").unwrap().location()));
        assert!(!c
            .region
            .contains(cities::by_code("nyc").unwrap().location()));
        assert!(whois_constraint(proj(), "not-a-city", Distance::from_km(200.0), 0.4).is_none());
    }

    #[test]
    fn city_hint_constraint_is_centred_on_the_city() {
        let city = cities::by_code("den").unwrap();
        let c = city_hint_constraint(proj(), city, Distance::from_km(150.0), 0.9, "router hint");
        assert!(c.region.contains(city.location()));
        assert_eq!(c.label, "router hint");
    }

    #[test]
    fn plausibility_check_delegates_to_landmass_data() {
        assert!(is_plausible_host_location(GeoPoint::new(40.71, -74.01)));
        assert!(!is_plausible_host_location(GeoPoint::new(0.0, -30.0)));
    }
}
