//! Queuing-delay ("height") estimation (§2.2).
//!
//! Latency measurements include an inelastic component — last-mile and
//! processing delays — that has nothing to do with geographic distance.
//! Octant captures each node's minimum queuing delay in a single scalar, its
//! *height*, in the spirit of Vivaldi's height vectors but derived
//! differently: landmark heights are solved directly from the inter-landmark
//! measurements (whose mutual distances are known), and a target's height is
//! estimated together with a coarse position by minimising the residual of
//! the height-adjusted measurements.
//!
//! Adjusted latencies (`raw RTT − landmark height − target height`) are then
//! used everywhere a latency is mapped to a distance, which removes a
//! systematic positive bias from the constraints.

use crate::linalg::{solve_least_squares, Matrix};
use octant_geo::distance::great_circle;
use octant_geo::point::GeoPoint;
use octant_geo::units::Latency;
use std::collections::HashMap;

/// Heights (minimum attributable queuing delay, in milliseconds) for a set of
/// landmarks, keyed by an opaque landmark index chosen by the caller.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Heights {
    values_ms: Vec<f64>,
}

impl Heights {
    /// Solves the landmark-height system from pairwise observations.
    ///
    /// `positions[i]` is landmark `i`'s (approximately) known location and
    /// `rtt[(i, j)]` the minimum observed RTT between landmarks `i` and `j`.
    /// Missing pairs are simply skipped. With fewer than two usable pairs all
    /// heights are zero.
    pub fn solve_landmarks(
        positions: &[GeoPoint],
        rtt: &HashMap<(usize, usize), Latency>,
    ) -> Heights {
        let n = positions.len();
        if n == 0 {
            return Heights {
                values_ms: Vec::new(),
            };
        }
        // Sort the observations: HashMap iteration order varies per map
        // instance, and the least-squares solve is sensitive to row order in
        // its floating-point rounding. Deterministic row order makes the
        // heights — and everything derived from them — bit-reproducible, in
        // particular between the batch engine's shared landmark model and a
        // per-target sequential solve.
        let mut observations: Vec<((usize, usize), Latency)> =
            rtt.iter().map(|(&k, &v)| (k, v)).collect();
        observations.sort_unstable_by_key(|&(k, _)| k);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();
        for ((i, j), lat) in observations {
            if i >= n || j >= n || i == j {
                continue;
            }
            let transmission = great_circle(positions[i], positions[j]).min_rtt_over_fiber();
            let queuing = (lat.ms() - transmission.ms()).max(0.0);
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            row[j] = 1.0;
            rows.push(row);
            rhs.push(queuing);
        }
        if rows.len() < 2 {
            return Heights {
                values_ms: vec![0.0; n],
            };
        }
        let a = Matrix::from_rows(&rows);
        let mut values = solve_least_squares(&a, &rhs).unwrap_or_else(|| vec![0.0; n]);
        for v in &mut values {
            if !v.is_finite() || *v < 0.0 {
                *v = 0.0;
            }
        }
        Heights { values_ms: values }
    }

    /// The height of landmark `i`, in milliseconds (zero for unknown
    /// indices).
    pub fn get_ms(&self, i: usize) -> f64 {
        self.values_ms.get(i).copied().unwrap_or(0.0)
    }

    /// Number of landmarks covered.
    pub fn len(&self) -> usize {
        self.values_ms.len()
    }

    /// `true` when no landmark heights are known.
    pub fn is_empty(&self) -> bool {
        self.values_ms.is_empty()
    }

    /// All heights in milliseconds.
    pub fn as_slice(&self) -> &[f64] {
        &self.values_ms
    }
}

/// The result of estimating a target's height.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetHeight {
    /// Estimated target height in milliseconds.
    pub height_ms: f64,
    /// The coarse position estimate produced as a by-product (the paper notes
    /// it "has relatively high error and is not used in the later stages" —
    /// it exists for diagnostics and for the Vivaldi-style comparison).
    pub coarse_position: GeoPoint,
    /// Root-mean-square residual of the fit, in milliseconds.
    pub residual_ms: f64,
}

/// Estimates a target's height from its measurements to landmarks with known
/// heights, per §2.2: find the height `t'` and coarse coordinates minimising
/// the residual of `a' + t' + (a,t) = [a,t]` over all landmarks `a`.
///
/// The minimisation alternates between (a) a grid-refined position search and
/// (b) the closed-form optimal `t'` for a fixed position (the mean positive
/// residual). Both steps are deterministic.
pub fn estimate_target_height(
    landmark_positions: &[GeoPoint],
    landmark_heights: &Heights,
    target_rtts: &[Option<Latency>],
) -> TargetHeight {
    // Collect usable observations.
    let obs: Vec<(GeoPoint, f64, f64)> = landmark_positions
        .iter()
        .zip(target_rtts.iter())
        .enumerate()
        .filter_map(|(i, (&pos, rtt))| rtt.map(|r| (pos, landmark_heights.get_ms(i), r.ms())))
        .collect();
    if obs.is_empty() {
        return TargetHeight {
            height_ms: 0.0,
            coarse_position: GeoPoint::new(0.0, 0.0),
            residual_ms: 0.0,
        };
    }

    // Initial position: landmarks weighted by inverse squared latency.
    let mut best = weighted_centroid(&obs);
    let mut best_cost = cost_at(best, &obs).0;

    // Coarse-to-fine grid search around the current best position.
    let mut span_deg = 20.0;
    for _ in 0..5 {
        let steps = 7;
        let mut improved = false;
        for dy in -steps..=steps {
            for dx in -steps..=steps {
                let cand = GeoPoint::new(
                    best.lat + span_deg * dy as f64 / steps as f64,
                    best.lon + span_deg * dx as f64 / steps as f64,
                );
                let (cost, _) = cost_at(cand, &obs);
                if cost < best_cost {
                    best_cost = cost;
                    best = cand;
                    improved = true;
                }
            }
        }
        span_deg /= 3.0;
        if !improved && span_deg < 0.5 {
            break;
        }
    }

    let (_, height) = cost_at(best, &obs);
    let rms = {
        let residuals: Vec<f64> = obs
            .iter()
            .map(|&(pos, h, rtt)| {
                let trans = great_circle(best, pos).min_rtt_over_fiber().ms();
                rtt - h - height - trans
            })
            .collect();
        (residuals.iter().map(|r| r * r).sum::<f64>() / residuals.len() as f64).sqrt()
    };
    TargetHeight {
        height_ms: height,
        coarse_position: best,
        residual_ms: rms,
    }
}

/// Adjusts a raw RTT by removing the landmark's and target's heights, never
/// going below zero.
pub fn adjust_rtt(raw: Latency, landmark_height_ms: f64, target_height_ms: f64) -> Latency {
    Latency::from_ms((raw.ms() - landmark_height_ms - target_height_ms).max(0.0))
}

/// For a candidate target position, picks the height that explains the
/// residuals and returns (sum of squared residuals with that height, height).
///
/// The residual of each landmark is `rtt − landmark height − transmission`,
/// which still contains that path's route inflation. A mean estimator would
/// absorb the *average* inflation into the target height and over-correct
/// every subsequent constraint, so the height is taken from the lower
/// quartile of the residuals: the least-inflated paths are the ones whose
/// residual is closest to the pure queuing component.
fn cost_at(candidate: GeoPoint, obs: &[(GeoPoint, f64, f64)]) -> (f64, f64) {
    let mut residuals: Vec<f64> = obs
        .iter()
        .map(|&(pos, h, rtt)| {
            let trans = great_circle(candidate, pos).min_rtt_over_fiber().ms();
            rtt - h - trans
        })
        .collect();
    residuals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q25 = residuals[(residuals.len() - 1) / 4];
    let height = q25.max(0.0);
    let cost = residuals
        .iter()
        .map(|r| (r - height) * (r - height))
        .sum::<f64>();
    (cost, height)
}

fn weighted_centroid(obs: &[(GeoPoint, f64, f64)]) -> GeoPoint {
    let mut sum = [0.0f64; 3];
    let mut total = 0.0;
    for &(pos, _, rtt) in obs {
        let w = 1.0 / (rtt * rtt).max(1e-6);
        let v = pos.to_unit_vector();
        sum[0] += v[0] * w;
        sum[1] += v[1] * w;
        sum[2] += v[2] * w;
        total += w;
    }
    if total <= 0.0 {
        return obs[0].0;
    }
    GeoPoint::from_vector(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octant_geo::cities;
    use octant_geo::distance::great_circle_km;

    fn positions() -> Vec<GeoPoint> {
        ["nyc", "chi", "den", "sea", "atl", "bos"]
            .iter()
            .map(|c| cities::by_code(c).unwrap().location())
            .collect()
    }

    /// Builds an RTT map from positions and per-node heights with no noise.
    fn synthetic_rtts(positions: &[GeoPoint], heights: &[f64]) -> HashMap<(usize, usize), Latency> {
        let mut map = HashMap::new();
        for i in 0..positions.len() {
            for j in 0..positions.len() {
                if i == j {
                    continue;
                }
                let trans = great_circle(positions[i], positions[j])
                    .min_rtt_over_fiber()
                    .ms();
                map.insert((i, j), Latency::from_ms(trans + heights[i] + heights[j]));
            }
        }
        map
    }

    #[test]
    fn landmark_heights_are_recovered_exactly_without_noise() {
        let pos = positions();
        let true_heights = [2.0, 5.0, 1.0, 8.0, 3.0, 0.5];
        let rtts = synthetic_rtts(&pos, &true_heights);
        let solved = Heights::solve_landmarks(&pos, &rtts);
        assert_eq!(solved.len(), pos.len());
        for (i, &truth) in true_heights.iter().enumerate() {
            assert!(
                (solved.get_ms(i) - truth).abs() < 0.05,
                "height {i}: solved {} vs true {truth}",
                solved.get_ms(i)
            );
        }
    }

    #[test]
    fn landmark_heights_tolerate_noise_and_stay_nonnegative() {
        let pos = positions();
        let true_heights = [2.0, 5.0, 1.0, 8.0, 3.0, 0.0];
        let mut rtts = synthetic_rtts(&pos, &true_heights);
        // Perturb every measurement by a deterministic pseudo-noise.
        for (k, v) in rtts.iter_mut() {
            let bump = ((k.0 * 7 + k.1 * 13) % 5) as f64 * 0.3;
            *v = Latency::from_ms(v.ms() + bump);
        }
        let solved = Heights::solve_landmarks(&pos, &rtts);
        for (i, &truth) in true_heights.iter().enumerate() {
            assert!(solved.get_ms(i) >= 0.0);
            assert!(
                (solved.get_ms(i) - truth).abs() < 1.5,
                "height {i}: {} vs {truth}",
                solved.get_ms(i)
            );
        }
    }

    #[test]
    fn degenerate_height_systems() {
        let empty = Heights::solve_landmarks(&[], &HashMap::new());
        assert!(empty.is_empty());
        assert_eq!(empty.get_ms(3), 0.0);

        let pos = positions();
        let too_few = Heights::solve_landmarks(&pos, &HashMap::new());
        assert_eq!(too_few.len(), pos.len());
        assert!(too_few.as_slice().iter().all(|&h| h == 0.0));
    }

    #[test]
    fn target_height_recovers_synthetic_target() {
        let pos = positions();
        let true_heights = [2.0, 5.0, 1.0, 8.0, 3.0, 0.5];
        let rtts = synthetic_rtts(&pos, &true_heights);
        let heights = Heights::solve_landmarks(&pos, &rtts);

        // A target in Pittsburgh with a 6 ms last-mile delay.
        let target = cities::by_code("pit").unwrap().location();
        let target_height = 6.0;
        let target_rtts: Vec<Option<Latency>> = pos
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let trans = great_circle(target, p).min_rtt_over_fiber().ms();
                Some(Latency::from_ms(trans + true_heights[i] + target_height))
            })
            .collect();

        let est = estimate_target_height(&pos, &heights, &target_rtts);
        assert!(
            (est.height_ms - target_height).abs() < 1.5,
            "estimated height {}",
            est.height_ms
        );
        // The coarse position should land within a few hundred km of Pittsburgh.
        let err = great_circle_km(est.coarse_position, target);
        assert!(err < 500.0, "coarse position error {err} km");
        assert!(est.residual_ms < 2.0, "residual {}", est.residual_ms);
    }

    #[test]
    fn target_height_with_missing_measurements() {
        let pos = positions();
        let heights = Heights::solve_landmarks(&pos, &synthetic_rtts(&pos, &[1.0; 6]));
        let mut target_rtts: Vec<Option<Latency>> = vec![None; pos.len()];
        target_rtts[0] = Some(Latency::from_ms(20.0));
        target_rtts[2] = Some(Latency::from_ms(30.0));
        let est = estimate_target_height(&pos, &heights, &target_rtts);
        assert!(est.height_ms >= 0.0);
        assert!(est.coarse_position.is_valid());
        // With no measurements at all the estimate degrades gracefully.
        let none = estimate_target_height(&pos, &heights, &vec![None; pos.len()]);
        assert_eq!(none.height_ms, 0.0);
    }

    #[test]
    fn rtt_adjustment_clamps_at_zero() {
        let adjusted = adjust_rtt(Latency::from_ms(30.0), 4.0, 6.0);
        assert!((adjusted.ms() - 20.0).abs() < 1e-9);
        assert_eq!(adjust_rtt(Latency::from_ms(5.0), 4.0, 6.0), Latency::ZERO);
    }

    #[test]
    fn paper_example_three_landmark_system() {
        // The 3x3 system shown in §2.2 of the paper: heights are solvable
        // exactly from the three pairwise queuing observations.
        let pos = vec![
            cities::by_code("nyc").unwrap().location(),
            cities::by_code("chi").unwrap().location(),
            cities::by_code("den").unwrap().location(),
        ];
        let truth = [4.0, 1.0, 2.5];
        let rtts = synthetic_rtts(&pos, &truth);
        let h = Heights::solve_landmarks(&pos, &rtts);
        for (i, &t) in truth.iter().enumerate() {
            assert!((h.get_ms(i) - t).abs() < 0.05);
        }
    }
}
