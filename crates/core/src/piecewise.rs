//! Piecewise localization of on-path routers (§2.3).
//!
//! Policy routing makes end-to-end latency a poor proxy for end-to-end
//! distance. Octant mitigates this by localizing the routers on the path from
//! each landmark to the target and using them as *secondary landmarks*: the
//! residual latency between the last localizable router and the target is
//! mostly free of indirect-routing effects, so the constraint it yields is
//! much tighter.
//!
//! Two localization strategies are provided:
//!
//! * **City hints** — the router's DNS name frequently embeds its city
//!   (parsed by the `undns`-style parser in `octant-netsim`); the router's
//!   position estimate is a small disk around that city.
//! * **Recursive localization** — run Octant itself on the router, using the
//!   landmarks' recorded pings to it; the resulting region (however shaped)
//!   becomes the secondary landmark's position estimate and the target
//!   constraint is its dilation by the latency-derived radius, exactly the
//!   `⋃ c(x, y, d)` construction of §2.
//!
//! Both strategies produce [`Constraint`]s tagged with the router identity.

use crate::calibration::Calibration;
use crate::constraint::{latency_weight, Constraint};
use octant_geo::cities::City;
use octant_geo::projection::AzimuthalEquidistant;
use octant_geo::units::{Distance, Latency};
use octant_netsim::dns;
use octant_netsim::observation::TracerouteHop;
use octant_region::{GeoRegion, Ring};

/// The last hop on a traceroute whose DNS name reveals its city, together
/// with the residual latency from that hop to the traceroute destination.
#[derive(Debug, Clone)]
pub struct LocalizedHop<'a> {
    /// The hop itself.
    pub hop: &'a TracerouteHop,
    /// The city parsed from the router's DNS name.
    pub city: &'static City,
    /// Residual round-trip latency between the hop and the destination
    /// (end-to-end RTT minus RTT to the hop, clamped at zero).
    pub residual: Latency,
}

/// Finds the last hop of `hops` whose DNS name reveals a city, given the
/// end-to-end RTT of the full path. Returns `None` when no hop is
/// localizable.
pub fn last_localizable_hop<'a>(
    hops: &'a [TracerouteHop],
    end_to_end: Latency,
) -> Option<LocalizedHop<'a>> {
    hops.iter().rev().find_map(|hop| {
        dns::parse_router_city(&hop.hostname).map(|city| LocalizedHop {
            hop,
            city,
            residual: Latency::from_ms((end_to_end.ms() - hop.rtt.ms()).max(0.0)),
        })
    })
}

/// Every localizable hop on the path (in path order), with residuals.
pub fn localizable_hops<'a>(
    hops: &'a [TracerouteHop],
    end_to_end: Latency,
) -> Vec<LocalizedHop<'a>> {
    hops.iter()
        .filter_map(|hop| {
            dns::parse_router_city(&hop.hostname).map(|city| LocalizedHop {
                hop,
                city,
                residual: Latency::from_ms((end_to_end.ms() - hop.rtt.ms()).max(0.0)),
            })
        })
        .collect()
}

/// Builds a positive constraint from a city-hinted router: the target lies
/// within `R(residual)` (from `calibration`) of a small disk around the
/// router's city. The disk radius accounts for the router being anywhere in
/// its metro area; the dilation is folded into the disk radius directly,
/// since the dilation of a disk is a disk.
pub fn city_hint_router_constraint(
    projection: AzimuthalEquidistant,
    localized: &LocalizedHop<'_>,
    calibration: &Calibration,
    city_uncertainty: Distance,
    weight_decay_ms: f64,
) -> Constraint {
    let radius = calibration.max_distance(localized.residual) + city_uncertainty;
    let region = GeoRegion::disk(projection, localized.city.location(), radius);
    let weight = latency_weight(localized.residual, weight_decay_ms);
    Constraint::positive(
        region,
        weight,
        format!("router:{}@{}", localized.hop.hostname, localized.city.code),
    )
}

/// The §2.3 secondary-landmark dilation radius for a residual latency: the
/// calibrated maximum distance `R(residual)`.
pub fn secondary_landmark_radius(residual: Latency, calibration: &Calibration) -> Distance {
    calibration.max_distance(residual)
}

/// The boundary vertex budget applied to router regions before dilation.
pub const ROUTER_REGION_VERTEX_BUDGET: usize = 512;

/// The pre-dilation simplification tolerance for a router region, keyed to
/// the dilation radius (1 %, clamped to 0.5–10 km): a recursive sub-solve
/// hands back a trapezoid decomposition whose sub-kilometre seam detail is
/// geometrically meaningless once the region is grown by hundreds of
/// kilometres, and the Minkowski construction's cost scales with the
/// boundary vertex count.
pub fn router_region_budget_tolerance(radius: Distance) -> Distance {
    Distance::from_km((radius.km() * 0.01).clamp(0.5, 10.0))
}

/// Builds a positive constraint from a router localized to an arbitrary
/// region (the recursive strategy): the secondary-landmark construction of
/// §2, i.e. the dilation of the router's region by the latency-derived
/// radius (see [`secondary_landmark_radius`] and
/// [`router_region_budget_tolerance`]).
pub fn secondary_landmark_constraint(
    router_region: &GeoRegion,
    residual: Latency,
    calibration: &Calibration,
    weight_decay_ms: f64,
    label: impl Into<String>,
) -> Constraint {
    let radius = secondary_landmark_radius(residual, calibration);
    let region = router_region
        .simplify_to_budget(
            router_region_budget_tolerance(radius),
            ROUTER_REGION_VERTEX_BUDGET,
        )
        .dilate(radius);
    Constraint::positive(region, latency_weight(residual, weight_decay_ms), label)
}

/// The merged outer contours of a router region, extracted once so every
/// radius class of a shared dilation cache can reuse them: a recursive
/// sub-solve's estimate is trapezoid soup (hundreds of quads whose seam
/// edges are interior, not boundary), while its contours are a handful of
/// clean rings carrying only genuine boundary edges — the thing dilation
/// cost actually scales with. Returned as planar rings in the region's own
/// projection, holes preserved (clockwise).
pub fn router_region_contours(region: &GeoRegion) -> Vec<Ring> {
    region.contours()
}

/// The §2.3 radius-class dilation performed by `octant-service`'s banded
/// dilation cache: each shared contour ring is budget-simplified at the
/// class tolerance (see [`router_region_budget_tolerance`]; shrink-only on
/// outers, hole-shrinking — i.e. region-loosening — on holes, so the
/// result can only get looser, preserving the positive-constraint
/// soundness that radius-class rounding already relies on), then the
/// region is dilated through the simplified contours. The expensive
/// contour extraction happens once per `(epoch, router)`; this per-class
/// step is linear in the contour vertex count.
pub fn class_dilated_router_region(
    region: &GeoRegion,
    contours: &[Ring],
    class_radius: Distance,
) -> GeoRegion {
    let tol = router_region_budget_tolerance(class_radius);
    let simplified: Vec<Ring> = contours.iter().map(|r| r.simplified(tol.km())).collect();
    region.dilate_with_contours(&simplified, class_radius)
}

/// Builds the §2.3 secondary-landmark constraint from an **already dilated**
/// router region (e.g. one answered by a shared radius-class dilation cache
/// — see `RouterEstimateSource::dilated_region`), reprojected by the caller
/// into the target's projection. Only the weighting is applied here.
pub fn secondary_landmark_constraint_from_dilated(
    dilated_region: GeoRegion,
    residual: Latency,
    weight_decay_ms: f64,
    label: impl Into<String>,
) -> Constraint {
    Constraint::positive(
        dilated_region,
        latency_weight(residual, weight_decay_ms),
        label,
    )
}

/// A negative constraint from a secondary landmark: the target cannot be
/// anywhere that is within `r(residual)` of *every* possible router position,
/// i.e. the erosion of the router's region (§2's `⋂ c(x, y, d)`).
pub fn secondary_landmark_negative_constraint(
    router_region: &GeoRegion,
    residual: Latency,
    calibration: &Calibration,
    weight_decay_ms: f64,
    label: impl Into<String>,
) -> Option<Constraint> {
    let radius = calibration.min_distance(residual);
    if radius.km() <= 0.0 {
        return None;
    }
    let region = router_region.erode_to_common_reach(radius);
    if region.is_empty() {
        return None;
    }
    Some(Constraint::negative(
        region,
        latency_weight(residual, weight_decay_ms),
        label,
    ))
}

/// Extension trait adding the "common reach" erosion used by negative
/// secondary-landmark constraints: the set of points within `radius` of
/// *every* point of the region. For a region with diameter larger than
/// `radius` this is empty; for a small router region it is approximately the
/// erosion of the dilated complement, which we compute as a disk around the
/// centroid with radius `radius − max_extent` (a sound under-approximation).
trait CommonReach {
    fn erode_to_common_reach(&self, radius: Distance) -> GeoRegion;
}

impl CommonReach for GeoRegion {
    fn erode_to_common_reach(&self, radius: Distance) -> GeoRegion {
        match self.centroid() {
            None => GeoRegion::empty(self.projection().center()),
            Some(c) => {
                let extent = self.max_distance_from(c);
                let usable = radius.km() - extent.km();
                if usable <= 0.0 {
                    GeoRegion::empty(self.projection().center())
                } else {
                    GeoRegion::disk(self.projection(), c, Distance::from_km(usable))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{Calibration, CalibrationConfig, CalibrationSample};
    use octant_geo::cities;
    use octant_geo::point::GeoPoint;
    use octant_netsim::topology::NodeId;

    fn hop(hostname: &str, rtt_ms: f64) -> TracerouteHop {
        TracerouteHop {
            node: NodeId(99),
            ip: [10, 0, 0, 9],
            hostname: hostname.to_string(),
            rtt: Latency::from_ms(rtt_ms),
        }
    }

    fn calibration() -> Calibration {
        let samples = (1..=30)
            .map(|i| CalibrationSample {
                latency: Latency::from_ms(i as f64 * 3.0),
                distance: Distance::from_km(i as f64 * 3.0 * 60.0),
            })
            .collect();
        Calibration::from_samples(samples, CalibrationConfig::default())
    }

    fn proj() -> AzimuthalEquidistant {
        AzimuthalEquidistant::new(GeoPoint::new(40.0, -80.0))
    }

    #[test]
    fn last_localizable_hop_prefers_the_hop_closest_to_the_target() {
        let hops = vec![
            hop("xe-0-0-0.cr1.nyc.as64500.octantsim.net", 5.0),
            hop("core42.unk1.as64501.octantsim.net", 12.0),
            hop("ge-1-2-0.gw1.chi.as64501.octantsim.net", 20.0),
        ];
        let found = last_localizable_hop(&hops, Latency::from_ms(26.0)).unwrap();
        assert_eq!(found.city.code, "chi");
        assert!((found.residual.ms() - 6.0).abs() < 1e-9);
        let all = localizable_hops(&hops, Latency::from_ms(26.0));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].city.code, "nyc");
    }

    #[test]
    fn no_localizable_hop_returns_none() {
        let hops = vec![hop("core1.unk1.as64500.octantsim.net", 5.0)];
        assert!(last_localizable_hop(&hops, Latency::from_ms(10.0)).is_none());
        assert!(localizable_hops(&hops, Latency::from_ms(10.0)).is_empty());
        assert!(last_localizable_hop(&[], Latency::from_ms(10.0)).is_none());
    }

    #[test]
    fn residual_clamps_at_zero_when_hop_rtt_exceeds_end_to_end() {
        let hops = vec![hop("xe-0-0-0.cr1.nyc.as64500.octantsim.net", 50.0)];
        let found = last_localizable_hop(&hops, Latency::from_ms(30.0)).unwrap();
        assert_eq!(found.residual, Latency::ZERO);
    }

    #[test]
    fn city_hint_constraint_covers_the_neighbourhood_of_the_city() {
        let hops = vec![hop("xe-0-0-0.cr1.pit.as64500.octantsim.net", 10.0)];
        let localized = last_localizable_hop(&hops, Latency::from_ms(14.0)).unwrap();
        let c = city_hint_router_constraint(
            proj(),
            &localized,
            &calibration(),
            Distance::from_km(50.0),
            80.0,
        );
        assert!(c.is_positive());
        let pit = cities::by_code("pit").unwrap().location();
        assert!(c.region.contains(pit));
        // A 4 ms residual bounds the distance to a few hundred km; Denver must
        // be excluded.
        assert!(!c
            .region
            .contains(cities::by_code("den").unwrap().location()));
        assert!(
            c.weight > 0.9,
            "short residuals should carry high weight, got {}",
            c.weight
        );
    }

    #[test]
    fn secondary_landmark_constraint_dilates_the_router_region() {
        let pit = cities::by_code("pit").unwrap().location();
        let router_region = GeoRegion::disk(proj(), pit, Distance::from_km(80.0));
        let c = secondary_landmark_constraint(
            &router_region,
            Latency::from_ms(6.0),
            &calibration(),
            80.0,
            "r1",
        );
        assert!(c.is_positive());
        assert!(c.region.area_km2() > router_region.area_km2());
        assert!(c.region.contains(pit));
        // The dilation radius for 6 ms is ~360 km plus the 80 km region, so
        // Cleveland (~185 km away) must be inside.
        assert!(c
            .region
            .contains(cities::by_code("cle").unwrap().location()));
    }

    #[test]
    fn secondary_negative_constraint_requires_a_meaningful_radius() {
        let pit = cities::by_code("pit").unwrap().location();
        let router_region = GeoRegion::disk(proj(), pit, Distance::from_km(30.0));
        let cal = calibration();
        // Large residual => sizeable r(d) => a common-reach disk exists.
        let some = secondary_landmark_negative_constraint(
            &router_region,
            Latency::from_ms(60.0),
            &cal,
            80.0,
            "r1",
        );
        assert!(some.is_some());
        let c = some.unwrap();
        assert!(!c.is_positive());
        assert!(
            c.region.contains(pit),
            "the excluded area surrounds the router"
        );
        // Zero residual => r(d) = 0 => no constraint.
        assert!(secondary_landmark_negative_constraint(
            &router_region,
            Latency::ZERO,
            &cal,
            80.0,
            "r1"
        )
        .is_none());
        // An empty router region produces no constraint either.
        let empty = GeoRegion::empty(GeoPoint::new(0.0, 0.0));
        assert!(secondary_landmark_negative_constraint(
            &empty,
            Latency::from_ms(60.0),
            &cal,
            80.0,
            "r1"
        )
        .is_none());
    }
}
