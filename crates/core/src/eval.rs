//! Evaluation harness (§3).
//!
//! The paper's evaluation treats every host as a target in turn, localizing
//! it with the remaining hosts as landmarks, and reports (i) the CDF of the
//! distance between the point estimate and the true position (Figure 3) and
//! (ii) the fraction of targets whose true position falls inside the
//! estimated region, as a function of the number of landmarks (Figure 4).
//! This module provides the leave-one-out driver and the statistics types
//! those figures are built from; the `octant-bench` crate contains the
//! binaries that print the actual figure data.

use crate::framework::{Geolocator, LocationEstimate};
use octant_geo::distance::great_circle;
use octant_geo::point::GeoPoint;
use octant_geo::units::Distance;
use octant_netsim::observation::ObservationProvider;
use octant_netsim::topology::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The outcome of localizing a single target.
#[derive(Debug, Clone)]
pub struct TargetOutcome {
    /// The target that was localized.
    pub target: NodeId,
    /// Its ground-truth position.
    pub truth: GeoPoint,
    /// The full estimate (region + point).
    pub estimate: LocationEstimate,
    /// Distance between the point estimate and the truth, if a point estimate
    /// exists.
    pub error: Option<Distance>,
    /// Whether the truth lies inside the estimated region, if a region
    /// exists.
    pub region_hit: Option<bool>,
    /// Area of the estimated region in square miles, if a region exists.
    pub region_area_mi2: Option<f64>,
}

/// Runs the paper's leave-one-out evaluation: each host in `hosts` serves as
/// the target once, with every other host acting as a landmark.
pub fn leave_one_out(
    provider: &dyn ObservationProvider,
    geolocator: &dyn Geolocator,
    hosts: &[NodeId],
) -> Vec<TargetOutcome> {
    hosts
        .iter()
        .map(|&target| {
            let landmarks: Vec<NodeId> = hosts.iter().copied().filter(|&h| h != target).collect();
            evaluate_target(provider, geolocator, &landmarks, target)
        })
        .collect()
}

/// Leave-one-out with a bounded number of landmarks: for every target a
/// random subset of `landmark_count` other hosts is used (the Figure 4
/// experiment).
pub fn leave_one_out_with_landmark_count<R: Rng + ?Sized>(
    provider: &dyn ObservationProvider,
    geolocator: &dyn Geolocator,
    hosts: &[NodeId],
    landmark_count: usize,
    rng: &mut R,
) -> Vec<TargetOutcome> {
    hosts
        .iter()
        .map(|&target| {
            let mut candidates: Vec<NodeId> =
                hosts.iter().copied().filter(|&h| h != target).collect();
            candidates.shuffle(rng);
            candidates.truncate(landmark_count.min(candidates.len()));
            evaluate_target(provider, geolocator, &candidates, target)
        })
        .collect()
}

/// Localizes one target and scores the outcome against the ground truth.
pub fn evaluate_target(
    provider: &dyn ObservationProvider,
    geolocator: &dyn Geolocator,
    landmarks: &[NodeId],
    target: NodeId,
) -> TargetOutcome {
    let truth = provider
        .advertised_location(target)
        .expect("evaluation targets must have a known ground-truth position");
    let estimate = geolocator.localize(provider, landmarks, target);
    let error = estimate.point.map(|p| great_circle(p, truth));
    let region_hit = estimate.region.as_ref().map(|r| r.contains(truth));
    let region_area_mi2 = estimate.region.as_ref().map(|r| r.area_mi2());
    TargetOutcome {
        target,
        truth,
        estimate,
        error,
        region_hit,
        region_area_mi2,
    }
}

/// Fraction of outcomes whose estimated region contains the true position
/// (targets without a region count as misses).
pub fn region_hit_rate(outcomes: &[TargetOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let hits = outcomes
        .iter()
        .filter(|o| o.region_hit == Some(true))
        .count();
    hits as f64 / outcomes.len() as f64
}

/// Mean area of the estimated regions in square miles (over the outcomes that
/// have a region).
pub fn mean_region_area_mi2(outcomes: &[TargetOutcome]) -> Option<f64> {
    let areas: Vec<f64> = outcomes.iter().filter_map(|o| o.region_area_mi2).collect();
    if areas.is_empty() {
        None
    } else {
        Some(areas.iter().sum::<f64>() / areas.len() as f64)
    }
}

/// An empirical CDF of localization errors, in miles (the unit the paper
/// reports).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ErrorCdf {
    sorted_miles: Vec<f64>,
}

impl ErrorCdf {
    /// Builds a CDF from raw errors. Outcomes without a point estimate are
    /// treated as "infinitely wrong" and sorted to the end with an error of
    /// half the Earth's circumference.
    pub fn from_outcomes(outcomes: &[TargetOutcome]) -> Self {
        let worst = octant_geo::EARTH_CIRCUMFERENCE_KM / 2.0 / octant_geo::KM_PER_MILE;
        let mut miles: Vec<f64> = outcomes
            .iter()
            .map(|o| o.error.map(|d| d.miles()).unwrap_or(worst))
            .collect();
        miles.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ErrorCdf {
            sorted_miles: miles,
        }
    }

    /// Builds a CDF from plain distances.
    pub fn from_errors(errors: &[Distance]) -> Self {
        let mut miles: Vec<f64> = errors.iter().map(|d| d.miles()).collect();
        miles.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ErrorCdf {
            sorted_miles: miles,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted_miles.len()
    }

    /// `true` when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted_miles.is_empty()
    }

    /// The `p`-quantile (p in 0..=1) of the error, in miles.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.sorted_miles.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let idx = ((self.sorted_miles.len() as f64 - 1.0) * p).round() as usize;
        Some(self.sorted_miles[idx])
    }

    /// Median error in miles.
    pub fn median(&self) -> Option<f64> {
        self.percentile(0.5)
    }

    /// Worst-case error in miles.
    pub fn max(&self) -> Option<f64> {
        self.sorted_miles.last().copied()
    }

    /// Fraction of targets with error at most `miles`.
    pub fn fraction_within(&self, miles: f64) -> f64 {
        if self.sorted_miles.is_empty() {
            return 0.0;
        }
        let count = self.sorted_miles.iter().filter(|&&m| m <= miles).count();
        count as f64 / self.sorted_miles.len() as f64
    }

    /// The CDF as (error in miles, cumulative fraction) points, one per
    /// sample — exactly what Figure 3 plots.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted_miles.len();
        self.sorted_miles
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, (i + 1) as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Octant, OctantConfig};
    use octant_netsim::builder::{HostSpec, NetworkBuilder, NetworkConfig};
    use octant_netsim::probe::Prober;
    use octant_netsim::ObservationProvider;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_prober(n: usize) -> Prober {
        let mut builder = NetworkBuilder::new(NetworkConfig::default());
        for site in octant_geo::sites::planetlab_51().iter().take(n) {
            builder = builder.add_host(HostSpec::from_site(site));
        }
        Prober::new(builder.build(), 99)
    }

    #[test]
    fn cdf_statistics() {
        let errors: Vec<Distance> = [10.0, 30.0, 20.0, 40.0, 50.0]
            .iter()
            .map(|&m| Distance::from_miles(m))
            .collect();
        let cdf = ErrorCdf::from_errors(&errors);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.median(), Some(30.0));
        assert_eq!(cdf.max(), Some(50.0));
        assert_eq!(cdf.percentile(0.0), Some(10.0));
        assert_eq!(cdf.percentile(1.0), Some(50.0));
        assert!((cdf.fraction_within(35.0) - 0.6).abs() < 1e-12);
        assert_eq!(cdf.fraction_within(5.0), 0.0);
        assert_eq!(cdf.fraction_within(100.0), 1.0);
        let pts = cdf.points();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (10.0, 0.2));
        assert_eq!(pts[4], (50.0, 1.0));
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = ErrorCdf::default();
        assert!(cdf.is_empty());
        assert!(cdf.median().is_none());
        assert!(cdf.max().is_none());
        assert_eq!(cdf.fraction_within(10.0), 0.0);
        assert!(cdf.points().is_empty());
    }

    #[test]
    fn leave_one_out_produces_one_outcome_per_host() {
        let prober = small_prober(10);
        let hosts: Vec<NodeId> = prober.hosts().iter().map(|h| h.id).collect();
        let octant = Octant::new(OctantConfig::default());
        let outcomes = leave_one_out(&prober, &octant, &hosts);
        assert_eq!(outcomes.len(), hosts.len());
        for o in &outcomes {
            assert!(
                o.error.is_some(),
                "every target should receive a point estimate"
            );
        }
        let cdf = ErrorCdf::from_outcomes(&outcomes);
        assert!(
            cdf.median().unwrap() < 500.0,
            "median error {} mi is implausibly large",
            cdf.median().unwrap()
        );
        // With only 9 landmarks the convex hulls are sparse and aggressive, so
        // the region misses the truth for a sizeable share of targets; the
        // full-scale behaviour is tracked by tests/accuracy.rs and figure4.
        let hit_rate = region_hit_rate(&outcomes);
        assert!(hit_rate >= 0.2, "hit rate {hit_rate}");
        assert!(mean_region_area_mi2(&outcomes).unwrap() > 0.0);
    }

    #[test]
    fn landmark_count_sweep_uses_the_requested_number() {
        let prober = small_prober(12);
        let hosts: Vec<NodeId> = prober.hosts().iter().map(|h| h.id).collect();
        let octant = Octant::new(OctantConfig::minimal());
        let mut rng = StdRng::seed_from_u64(4);
        let outcomes = leave_one_out_with_landmark_count(&prober, &octant, &hosts, 5, &mut rng);
        assert_eq!(outcomes.len(), hosts.len());
        // Using fewer landmarks should not crash and should still produce
        // estimates; accuracy naturally degrades.
        assert!(outcomes.iter().all(|o| o.error.is_some()));
        // Requesting more landmarks than available just uses all of them.
        let outcomes = leave_one_out_with_landmark_count(&prober, &octant, &hosts, 500, &mut rng);
        assert_eq!(outcomes.len(), hosts.len());
    }

    #[test]
    fn outcomes_without_regions_count_as_misses() {
        let prober = small_prober(6);
        let hosts: Vec<NodeId> = prober.hosts().iter().map(|h| h.id).collect();
        let truth = prober.advertised_location(hosts[0]).unwrap();
        let outcome = TargetOutcome {
            target: hosts[0],
            truth,
            estimate: LocationEstimate::unknown(),
            error: None,
            region_hit: None,
            region_area_mi2: None,
        };
        assert_eq!(region_hit_rate(&[outcome]), 0.0);
        assert!(mean_region_area_mi2(&[]).is_none());
        assert_eq!(region_hit_rate(&[]), 0.0);
    }
}
