//! Small dense linear algebra used by the height computation.
//!
//! The height system of §2.2 is a least-squares problem with one unknown per
//! landmark (≤ a few dozen), so a straightforward normal-equations solver
//! with Gaussian elimination and partial pivoting is both sufficient and
//! dependency-free.

/// A dense, row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from nested rows. All rows must have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the square system `a · x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` when the matrix is (numerically) singular.
pub fn solve_square(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return None;
    }
    // Augmented matrix.
    let mut m = vec![vec![0.0; n + 1]; n];
    for i in 0..n {
        for j in 0..n {
            m[i][j] = a[(i, j)];
        }
        m[i][n] = b[i];
    }
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        // Eliminate. The pivot row is taken out of the matrix for the
        // duration so the target rows can be mutated through iterators.
        let pivot_row = std::mem::take(&mut m[col]);
        for (row, r) in m.iter_mut().enumerate() {
            if row == col {
                continue;
            }
            let factor = r[col] / pivot_row[col];
            if factor == 0.0 {
                continue;
            }
            for (t, &p) in r[col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                *t -= factor * p;
            }
        }
        m[col] = pivot_row;
    }
    Some((0..n).map(|i| m[i][n] / m[i][i]).collect())
}

/// Solves the (possibly over-determined) system `a · x ≈ b` in the
/// least-squares sense via the normal equations, with a small ridge term for
/// numerical stability. Returns `None` when even the regularized system is
/// singular.
pub fn solve_least_squares(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    if a.rows() != b.len() || a.cols() == 0 {
        return None;
    }
    let at = a.transpose();
    let mut ata = at.matmul(a);
    let ridge = 1e-9;
    for i in 0..ata.rows() {
        ata[(i, i)] += ridge;
    }
    let atb = at.matvec(b);
    solve_square(&ata, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_transpose() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matrix_multiplication() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn solve_square_known_system() {
        // 2x + y = 5 ; x - y = 1  => x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = solve_square(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn solve_square_detects_singularity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve_square(&a, &[1.0, 2.0]).is_none());
        // Dimension mismatches are rejected rather than panicking.
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert!(solve_square(&a, &[1.0]).is_none());
    }

    #[test]
    fn least_squares_recovers_exact_solution_when_consistent() {
        // The paper's 3-landmark height system:
        //   h_a + h_b = 5, h_a + h_c = 7, h_b + h_c = 8  =>  h = (2, 3, 5)
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
        ]);
        let h = solve_least_squares(&a, &[5.0, 7.0, 8.0]).unwrap();
        assert!((h[0] - 2.0).abs() < 1e-6);
        assert!((h[1] - 3.0).abs() < 1e-6);
        assert!((h[2] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn least_squares_minimizes_residual_for_overdetermined_system() {
        // Fit y = c0 + c1 x to noisy points on y = 1 + 2x.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let noise = [0.1, -0.05, 0.07, -0.02, 0.03];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let b: Vec<f64> = xs
            .iter()
            .zip(noise.iter())
            .map(|(&x, &n)| 1.0 + 2.0 * x + n)
            .collect();
        let a = Matrix::from_rows(&rows);
        let c = solve_least_squares(&a, &b).unwrap();
        assert!((c[0] - 1.0).abs() < 0.15, "intercept {}", c[0]);
        assert!((c[1] - 2.0).abs() < 0.08, "slope {}", c[1]);
    }

    #[test]
    fn least_squares_rejects_mismatched_dimensions() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0]]);
        assert!(solve_least_squares(&a, &[1.0, 2.0]).is_none());
        assert!(solve_least_squares(&Matrix::zeros(2, 0), &[1.0, 2.0]).is_none());
    }
}
