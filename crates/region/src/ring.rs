//! Closed polygons ("rings") with the standard geometric queries.
//!
//! Rings are what Bézier loops flatten into and what the boolean-operation
//! engine consumes and produces. A [`Ring`] is a simple closed polygon stored
//! as an ordered vertex list (implicitly closed: the last vertex connects
//! back to the first).

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A closed polygon in the projection plane (kilometre coordinates).
///
/// The axis-aligned bounding box and the convexity flag are computed once at
/// construction and cached: the boolean engine consults both on every
/// operation (bbox-disjoint and absorption fast paths, convex dilation
/// specialization), so recomputing them per query would dominate the very
/// fast paths they enable.
// NOTE(serde): the cached fields below are derived data. When the serde
// stand-in is swapped for the real crate (no consumer serializes bytes
// today), they must be recomputed on deserialize — e.g. `#[serde(from =
// "...")]` over a points-only mirror — both for wire compatibility with
// points-only payloads and so a tampered `convex` flag can never steer the
// engine's convex fast paths.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Ring {
    points: Vec<Vec2>,
    /// Cached axis-aligned bounding box (`None` for empty rings).
    bbox: Option<(Vec2, Vec2)>,
    /// Cached convexity of the cleaned vertex list.
    convex: bool,
}

impl Ring {
    /// Creates a ring from a vertex list. Consecutive duplicate vertices are
    /// removed; the polygon is implicitly closed.
    pub fn new(points: Vec<Vec2>) -> Self {
        let mut cleaned: Vec<Vec2> = Vec::with_capacity(points.len());
        for p in points {
            if !p.is_finite() {
                continue;
            }
            if cleaned
                .last()
                .map(|q| q.distance(p) < 1e-12)
                .unwrap_or(false)
            {
                continue;
            }
            cleaned.push(p);
        }
        // Drop a trailing vertex that duplicates the first.
        if cleaned.len() > 1 && cleaned[0].distance(*cleaned.last().unwrap()) < 1e-12 {
            cleaned.pop();
        }
        Ring::from_cleaned(cleaned)
    }

    /// Builds a ring from an already-cleaned vertex list, computing the
    /// cached bounding box and convexity flag.
    fn from_cleaned(points: Vec<Vec2>) -> Self {
        let bbox = if points.is_empty() {
            None
        } else {
            let mut min = points[0];
            let mut max = points[0];
            for &p in &points {
                min = min.min(p);
                max = max.max(p);
            }
            Some((min, max))
        };
        let convex = convexity(&points);
        Ring {
            points,
            bbox,
            convex,
        }
    }

    /// A rectangle ring from opposite corners.
    pub fn rectangle(min: Vec2, max: Vec2) -> Self {
        let lo = min.min(max);
        let hi = min.max(max);
        Ring::new(vec![
            Vec2::new(lo.x, lo.y),
            Vec2::new(hi.x, lo.y),
            Vec2::new(hi.x, hi.y),
            Vec2::new(lo.x, hi.y),
        ])
    }

    /// A regular polygon approximating a circle with `n` vertices.
    pub fn regular_polygon(center: Vec2, radius: f64, n: usize) -> Self {
        let n = n.max(3);
        let pts = (0..n)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                center + Vec2::new(a.cos(), a.sin()) * radius.max(0.0)
            })
            .collect();
        Ring::new(pts)
    }

    /// The vertices of the ring.
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the ring has fewer than 3 vertices (no interior).
    pub fn is_empty(&self) -> bool {
        self.points.len() < 3
    }

    /// Signed area (positive for counter-clockwise orientation), via the
    /// shoelace formula. Units: km².
    pub fn signed_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let n = self.points.len();
        let mut sum = 0.0;
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            sum += a.cross(b);
        }
        sum / 2.0
    }

    /// Absolute area in km².
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// `true` when the vertices wind counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// A copy of the ring with counter-clockwise orientation.
    pub fn oriented_ccw(&self) -> Ring {
        if self.is_ccw() || self.is_empty() {
            self.clone()
        } else {
            let mut pts = self.points.clone();
            pts.reverse();
            Ring::from_cleaned(pts)
        }
    }

    /// Perimeter length in km.
    pub fn perimeter(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let n = self.points.len();
        (0..n)
            .map(|i| self.points[i].distance(self.points[(i + 1) % n]))
            .sum()
    }

    /// Area centroid of the polygon. Falls back to the vertex average for
    /// degenerate (zero-area) rings, and `Vec2::ZERO` for empty rings.
    pub fn centroid(&self) -> Vec2 {
        if self.points.is_empty() {
            return Vec2::ZERO;
        }
        let a = self.signed_area();
        if a.abs() < 1e-12 {
            let sum = self.points.iter().fold(Vec2::ZERO, |acc, &p| acc + p);
            return sum / self.points.len() as f64;
        }
        let n = self.points.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.points[i];
            let q = self.points[(i + 1) % n];
            let cross = p.cross(q);
            cx += (p.x + q.x) * cross;
            cy += (p.y + q.y) * cross;
        }
        Vec2::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Axis-aligned bounding box `(min, max)`, cached at construction.
    /// Returns `None` for empty rings.
    pub fn bbox(&self) -> Option<(Vec2, Vec2)> {
        self.bbox
    }

    /// Even-odd (ray casting) point containment test. Points exactly on the
    /// boundary may be classified either way.
    ///
    /// Rejects through the cached bounding box first: a point outside the
    /// box crosses the boundary an even number of times by construction, so
    /// skipping the edge walk cannot change the answer — and multi-ring
    /// regions probe every ring for every query point, making the two
    /// comparisons the common case's entire cost.
    pub fn contains(&self, p: Vec2) -> bool {
        match self.bbox {
            None => return false,
            Some((lo, hi)) => {
                if p.x < lo.x || p.x > hi.x || p.y < lo.y || p.y > hi.y {
                    return false;
                }
            }
        }
        if self.is_empty() {
            return false;
        }
        let n = self.points.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[j];
            if ((a.y > p.y) != (b.y > p.y)) && (p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Distance from `p` to the ring boundary (0 is *not* returned for
    /// interior points; use [`Ring::contains`] to distinguish).
    pub fn distance_to_boundary(&self, p: Vec2) -> f64 {
        if self.points.is_empty() {
            return f64::INFINITY;
        }
        if self.points.len() == 1 {
            return p.distance(self.points[0]);
        }
        let n = self.points.len();
        (0..n)
            .map(|i| p.distance_to_segment(self.points[i], self.points[(i + 1) % n]))
            .fold(f64::INFINITY, f64::min)
    }

    /// `true` when every interior angle turns the same way (the ring is
    /// convex). Cached at construction; degenerate rings report `true`.
    pub fn is_convex(&self) -> bool {
        self.convex
    }

    /// Translates every vertex by `offset`.
    pub fn translated(&self, offset: Vec2) -> Ring {
        Ring::from_cleaned(self.points.iter().map(|&p| p + offset).collect())
    }

    /// Scales the ring about a centre point.
    pub fn scaled_about(&self, center: Vec2, factor: f64) -> Ring {
        Ring::from_cleaned(
            self.points
                .iter()
                .map(|&p| center + (p - center) * factor)
                .collect(),
        )
    }

    /// Removes vertices that are (nearly) collinear with their neighbours,
    /// reducing vertex count without changing the shape materially.
    ///
    /// **Shrink-only**: besides the distance tolerance, a vertex is only
    /// removed when the chord replacing it cuts *into* the ring (a convex
    /// corner relative to the ring's orientation) or the vertex is exactly
    /// collinear. Replacing a reflex corner would grow the ring outward by
    /// up to the tolerance, and a [`crate::Region`]'s interior-disjoint
    /// rings would then overlap at shared seams — breaking the even-odd
    /// containment rule. Shrink-only removals keep every ring inside its
    /// original footprint, so pairwise disjointness is preserved by
    /// construction.
    pub fn simplified(&self, tolerance: f64) -> Ring {
        let n = self.points.len();
        if n < 4 {
            return self.clone();
        }
        let orientation = self.signed_area().signum();
        let mut keep = Vec::with_capacity(n);
        // Adjacent non-collinear removals are disallowed within one pass:
        // the distance test uses the *original* neighbours, so removing a
        // whole run of vertices would compound into movement far beyond the
        // tolerance (e.g. a sampled arc collapsing to its chord). With the
        // guard, every replacement chord spans exactly one removed vertex —
        // except exactly-collinear runs, where chords coincide with the
        // boundary — keeping the per-call movement bound honest.
        let mut removed_prev = false;
        let mut removed_first_noncollinear = false;
        for i in 0..n {
            let prev = self.points[(i + n - 1) % n];
            let cur = self.points[i];
            let next = self.points[(i + 1) % n];
            let dist = cur.distance_to_segment(prev, next);
            let turn = (cur - prev).cross(next - cur);
            let exactly_collinear = dist <= 1e-9;
            let shrinks = orientation * turn >= 0.0 || exactly_collinear;
            // The adjacency guard must also span the ring wrap-around: the
            // last vertex is the first vertex's predecessor, so if vertex 0
            // was removed non-collinearly, vertex n−1 may not be.
            let wrap_blocked = i == n - 1 && removed_first_noncollinear;
            let removable = dist <= tolerance
                && shrinks
                && (exactly_collinear || (!removed_prev && !wrap_blocked));
            if removable {
                removed_prev = true;
                if i == 0 && !exactly_collinear {
                    removed_first_noncollinear = true;
                }
            } else {
                keep.push(cur);
                removed_prev = false;
            }
        }
        if keep.len() < 3 {
            return self.clone();
        }
        Ring::new(keep)
    }

    /// The edges of the ring as `(start, end)` pairs.
    pub fn edges(&self) -> Vec<(Vec2, Vec2)> {
        let n = self.points.len();
        if n < 2 {
            return Vec::new();
        }
        (0..n)
            .map(|i| (self.points[i], self.points[(i + 1) % n]))
            .collect()
    }
}

/// Convexity of a cleaned vertex list: every turn has the same sign.
/// Degenerate (sub-quadrilateral) lists report `true`.
fn convexity(points: &[Vec2]) -> bool {
    let n = points.len();
    if n < 4 {
        return true;
    }
    let mut sign = 0.0;
    for i in 0..n {
        let a = points[i];
        let b = points[(i + 1) % n];
        let c = points[(i + 2) % n];
        let cross = (b - a).cross(c - b);
        if cross.abs() < 1e-12 {
            continue;
        }
        if sign == 0.0 {
            sign = cross.signum();
        } else if cross.signum() != sign {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Ring {
        Ring::rectangle(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0))
    }

    #[test]
    fn square_properties() {
        let sq = unit_square();
        assert_eq!(sq.len(), 4);
        assert!((sq.area() - 1.0).abs() < 1e-12);
        assert!((sq.perimeter() - 4.0).abs() < 1e-12);
        assert!(sq.is_ccw());
        assert!(sq.is_convex());
        assert!((sq.centroid().x - 0.5).abs() < 1e-12);
        assert!((sq.centroid().y - 0.5).abs() < 1e-12);
        let (min, max) = sq.bbox().unwrap();
        assert_eq!(min, Vec2::new(0.0, 0.0));
        assert_eq!(max, Vec2::new(1.0, 1.0));
    }

    #[test]
    fn containment() {
        let sq = unit_square();
        assert!(sq.contains(Vec2::new(0.5, 0.5)));
        assert!(!sq.contains(Vec2::new(1.5, 0.5)));
        assert!(!sq.contains(Vec2::new(-0.1, 0.5)));
        assert!(!sq.contains(Vec2::new(0.5, 2.0)));
    }

    #[test]
    fn orientation_helpers() {
        let cw = Ring::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 0.0),
        ]);
        assert!(!cw.is_ccw());
        assert!(cw.signed_area() < 0.0);
        let ccw = cw.oriented_ccw();
        assert!(ccw.is_ccw());
        assert!((ccw.area() - cw.area()).abs() < 1e-12);
    }

    #[test]
    fn non_convex_ring_detected() {
        let l_shape = Ring::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 2.0),
            Vec2::new(0.0, 2.0),
        ]);
        assert!(!l_shape.is_convex());
        assert!((l_shape.area() - 3.0).abs() < 1e-12);
        assert!(l_shape.contains(Vec2::new(0.5, 1.5)));
        assert!(!l_shape.contains(Vec2::new(1.5, 1.5)));
    }

    #[test]
    fn regular_polygon_approximates_circle() {
        let r = Ring::regular_polygon(Vec2::new(10.0, -5.0), 100.0, 256);
        let truth = std::f64::consts::PI * 100.0 * 100.0;
        assert!((r.area() - truth).abs() / truth < 0.001);
        assert!(r.is_convex());
        assert!(r.contains(Vec2::new(10.0, -5.0)));
    }

    #[test]
    fn degenerate_rings() {
        let empty = Ring::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.area(), 0.0);
        assert_eq!(empty.perimeter(), 0.0);
        assert!(!empty.contains(Vec2::ZERO));
        assert!(empty.bbox().is_none());
        assert_eq!(empty.centroid(), Vec2::ZERO);

        let two = Ring::new(vec![Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)]);
        assert!(two.is_empty());
        assert_eq!(two.area(), 0.0);

        // Duplicate and closing vertices are removed.
        let dup = Ring::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 0.0),
        ]);
        assert_eq!(dup.len(), 3);
    }

    #[test]
    fn distance_to_boundary() {
        let sq = unit_square();
        assert!((sq.distance_to_boundary(Vec2::new(0.5, 0.5)) - 0.5).abs() < 1e-12);
        assert!((sq.distance_to_boundary(Vec2::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
        assert!(sq.distance_to_boundary(Vec2::new(1.0, 0.5)) < 1e-12);
    }

    #[test]
    fn transforms() {
        let sq = unit_square();
        let moved = sq.translated(Vec2::new(10.0, 20.0));
        assert!(moved.contains(Vec2::new(10.5, 20.5)));
        assert!((moved.area() - 1.0).abs() < 1e-12);
        let scaled = sq.scaled_about(Vec2::new(0.5, 0.5), 2.0);
        assert!((scaled.area() - 4.0).abs() < 1e-12);
        assert!((scaled.centroid().x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simplify_drops_collinear_points() {
        let r = Ring::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.5, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ]);
        let s = r.simplified(1e-9);
        assert_eq!(s.len(), 4);
        assert!((s.area() - r.area()).abs() < 1e-12);
    }

    #[test]
    fn edges_returns_closed_chain() {
        let sq = unit_square();
        let edges = sq.edges();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].1, edges[0].0);
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let r = Ring::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(f64::NAN, 1.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ]);
        assert_eq!(r.len(), 4);
        assert!(r.points().iter().all(|p| p.is_finite()));
    }
}
