//! Merged outer-contour extraction from a banded decomposition.
//!
//! A banded region is a stack of trapezoidal cells; its *boundary* is the
//! set of cell edges not shared with a neighbouring cell: every cell's two
//! sloped sides, plus the horizontal sub-spans of its bottom/top not
//! covered by the adjacent band. This module collects those edges —
//! directed so the region's interior lies to the **left** — and stitches
//! them into closed rings by walking endpoint-to-endpoint. The result is a
//! handful of clean boundary rings (counter-clockwise outers, clockwise
//! holes whose signed areas sum to the region's area) instead of one quad
//! per cell: exactly what edge-scaling consumers like dilation want to see.
//!
//! Robustness: endpoints of edges that meet at a shared sweep vertex can
//! differ by sub-tolerance amounts (different segments evaluated at the
//! same event height), so the walk matches endpoints through a quantized
//! key — original coordinates are kept in the output, only the *matching*
//! is fuzzy. Junctions where four cells meet are resolved by taking the
//! most-clockwise continuation, which traces each face separately instead
//! of producing self-crossing figure-eights. If any chain fails to close,
//! the extraction reports failure and the caller falls back to the
//! trapezoid rings, so contour extraction can never produce wrong geometry
//! — only decline to merge.

use crate::banded::{BandedRegion, Cell};
use crate::vec2::Vec2;
use crate::Ring;
use std::collections::HashMap;

/// Endpoint-matching quantum (km). Matches the vertical-merge key of the
/// trapezoid compactor: comfortably above float noise on evaluated
/// corners, far below any real geometric feature.
const QUANTUM: f64 = 1e-6;

/// A directed boundary edge (interior to the left).
#[derive(Debug, Clone, Copy)]
struct Edge {
    a: Vec2,
    b: Vec2,
}

fn key(p: Vec2) -> (i64, i64) {
    (
        (p.x / QUANTUM).round() as i64,
        (p.y / QUANTUM).round() as i64,
    )
}

/// Extracts the merged contours of `banded`, or `None` when the edge
/// complex cannot be stitched into closed rings.
pub(crate) fn extract_contours(banded: &BandedRegion) -> Option<Vec<Ring>> {
    let rows = banded.cell_rows();
    if rows.is_empty() {
        return Some(Vec::new());
    }

    let mut edges: Vec<Edge> = Vec::new();
    for (bi, (y0, y1, cells)) in rows.iter().enumerate() {
        for cell in cells {
            // Left side walks down, right side walks up: interior right of
            // a left boundary, left of a right boundary.
            edges.push(Edge {
                a: cell.tl,
                b: cell.bl,
            });
            edges.push(Edge {
                a: cell.br,
                b: cell.tr,
            });
        }
        // Exposed bottom spans (interior above → walk left-to-right).
        let below: &[Cell] = match bi.checked_sub(1) {
            // Bands produced by one sweep share event ys bit-for-bit when
            // adjacent; a skipped sliver window leaves a sub-tolerance gap,
            // in which case both sides are fully exposed.
            Some(pi) if rows[pi].1.to_bits() == y0.to_bits() => &rows[pi].2,
            _ => &[],
        };
        for cell in cells {
            for (x0, x1) in subtract_spans(
                (cell.bl.x, cell.br.x),
                below.iter().map(|c| (c.tl.x, c.tr.x)),
            ) {
                edges.push(Edge {
                    a: Vec2::new(x0, *y0),
                    b: Vec2::new(x1, *y0),
                });
            }
        }
        // Exposed top spans (interior below → walk right-to-left).
        let above: &[Cell] = match rows.get(bi + 1) {
            Some(next) if next.0.to_bits() == y1.to_bits() => &next.2,
            _ => &[],
        };
        for cell in cells {
            for (x0, x1) in subtract_spans(
                (cell.tl.x, cell.tr.x),
                above.iter().map(|c| (c.bl.x, c.br.x)),
            ) {
                edges.push(Edge {
                    a: Vec2::new(x1, *y1),
                    b: Vec2::new(x0, *y1),
                });
            }
        }
    }

    // Index edges by the quantized key of their start point.
    let mut by_start: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, e) in edges.iter().enumerate() {
        by_start.entry(key(e.a)).or_default().push(i);
    }

    let mut used = vec![false; edges.len()];
    let mut rings: Vec<Ring> = Vec::new();
    for start in 0..edges.len() {
        if used[start] {
            continue;
        }
        let start_key = key(edges[start].a);
        let mut pts: Vec<Vec2> = Vec::new();
        let mut current = start;
        loop {
            used[current] = true;
            pts.push(edges[current].a);
            if pts.len() > edges.len() + 1 {
                return None; // Walk failed to terminate.
            }
            let end_key = key(edges[current].b);
            if end_key == start_key {
                break; // Ring closed.
            }
            let candidates = by_start.get(&end_key)?;
            let dir_in = edges[current].b - edges[current].a;
            let mut next: Option<(f64, usize)> = None;
            for &c in candidates {
                if used[c] {
                    continue;
                }
                let turn = clockwise_turn(dir_in, edges[c].b - edges[c].a);
                if next.map(|(best, _)| turn < best).unwrap_or(true) {
                    next = Some((turn, c));
                }
            }
            current = next?.1;
        }
        let ring = Ring::new(pts);
        if ring.len() >= 3 {
            rings.push(ring);
        }
    }
    Some(rings)
}

/// The clockwise angle swept from the reverse of `dir_in` to `dir_out`, in
/// `(0, 2π]`: the candidate with the smallest value is the most-clockwise
/// continuation, i.e. the next edge of the face lying to the left of the
/// incoming edge. Doubling straight back (angle ≈ 0) is mapped to a full
/// turn so a degenerate spike is only taken as a last resort.
fn clockwise_turn(dir_in: Vec2, dir_out: Vec2) -> f64 {
    use std::f64::consts::TAU;
    let reverse = (-dir_in.y).atan2(-dir_in.x);
    let out = dir_out.y.atan2(dir_out.x);
    let turn = (reverse - out).rem_euclid(TAU);
    if turn < 1e-9 {
        TAU
    } else {
        turn
    }
}

/// Subtracts a sorted sequence of spans from one span, yielding the
/// surviving sub-spans (sub-`QUANTUM` slivers are dropped — the quantized
/// endpoint matching bridges them).
fn subtract_spans(
    span: (f64, f64),
    cover: impl Iterator<Item = (f64, f64)>,
) -> impl Iterator<Item = (f64, f64)> {
    let (lo, hi) = span;
    let mut cuts: Vec<(f64, f64)> = cover.filter(|&(c0, c1)| c1 > lo && c0 < hi).collect();
    cuts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut out: Vec<(f64, f64)> = Vec::new();
    let mut cursor = lo;
    for (c0, c1) in cuts {
        if c0 > cursor {
            out.push((cursor, c0));
        }
        cursor = cursor.max(c1);
        if cursor >= hi {
            break;
        }
    }
    if cursor < hi {
        out.push((cursor, hi));
    }
    out.into_iter().filter(|&(a, b)| b - a > QUANTUM)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;

    #[test]
    fn span_subtraction_handles_overlap_shapes() {
        let subs = |s: (f64, f64), c: Vec<(f64, f64)>| {
            subtract_spans(s, c.into_iter()).collect::<Vec<_>>()
        };
        assert_eq!(subs((0.0, 10.0), vec![]), vec![(0.0, 10.0)]);
        assert_eq!(subs((0.0, 10.0), vec![(0.0, 10.0)]), vec![]);
        assert_eq!(
            subs((0.0, 10.0), vec![(2.0, 3.0)]),
            vec![(0.0, 2.0), (3.0, 10.0)]
        );
        assert_eq!(
            subs((0.0, 10.0), vec![(-5.0, 4.0), (6.0, 20.0)]),
            vec![(4.0, 6.0)]
        );
        // Sub-quantum slivers disappear.
        assert_eq!(subs((0.0, 10.0), vec![(1e-9, 10.0)]), vec![]);
    }

    #[test]
    fn contours_of_a_disk_are_one_ring() {
        let disk = Region::disk(Vec2::new(10.0, -4.0), 200.0);
        let banded = BandedRegion::from_region(&disk);
        let contours = banded.extract_contours();
        assert_eq!(contours.len(), 1, "a disk has a single outer contour");
        let area = BandedRegion::contour_area(&contours);
        assert!(
            (area - banded.area()).abs() <= 1e-9 * banded.area(),
            "contour area {area} vs banded {}",
            banded.area()
        );
        assert!(contours[0].is_ccw(), "outer contour winds CCW");
        // The contour has far fewer rings than the trapezoid soup.
        assert!(banded.to_region().ring_count() > 1);
    }

    #[test]
    fn contours_preserve_holes_as_clockwise_rings() {
        let outer = Region::rectangle(Vec2::new(0.0, 0.0), Vec2::new(100.0, 100.0));
        let hole = Region::rectangle(Vec2::new(30.0, 30.0), Vec2::new(70.0, 70.0));
        let annulus = outer.subtract(&hole);
        let banded = BandedRegion::from_region(&annulus);
        let contours = banded.extract_contours();
        assert_eq!(contours.len(), 2, "outer boundary plus one hole");
        let ccw = contours.iter().filter(|r| r.is_ccw()).count();
        let cw = contours.len() - ccw;
        assert_eq!((ccw, cw), (1, 1), "one CCW outer, one CW hole");
        let area = BandedRegion::contour_area(&contours);
        assert!(
            (area - banded.area()).abs() <= 1e-9 * banded.area(),
            "signed contour area {area} vs banded {}",
            banded.area()
        );
        // Membership: even-odd over the contour rings matches the region.
        let inside_hole = Vec2::new(50.0, 50.0);
        let in_body = Vec2::new(10.0, 50.0);
        let even_odd = |p: Vec2| contours.iter().filter(|r| r.contains(p)).count() % 2 == 1;
        assert!(!even_odd(inside_hole));
        assert!(even_odd(in_body));
    }

    #[test]
    fn disconnected_components_get_separate_contours() {
        let a = Region::disk(Vec2::new(0.0, 0.0), 50.0);
        let b = Region::disk(Vec2::new(500.0, 0.0), 60.0);
        let both = a.union(&b);
        let banded = BandedRegion::from_region(&both);
        let contours = banded.extract_contours();
        assert_eq!(contours.len(), 2);
        let area = BandedRegion::contour_area(&contours);
        assert!((area - banded.area()).abs() <= 1e-9 * banded.area());
    }
}
