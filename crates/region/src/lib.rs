//! # octant-region
//!
//! The geometric engine behind Octant's location estimates.
//!
//! The Octant paper (Wong, Stoyanov, Sirer — NSDI 2007) represents the set of
//! points where a target host may be located as a *region bounded by Bézier
//! curves*: positive constraints ("within `R(d)` km of landmark L") carve the
//! estimate down via intersection, negative constraints ("farther than `r(d)`
//! km from L") carve holes out of it via subtraction, and geographic
//! constraints (oceans, uninhabited areas) are folded in the same way. The
//! resulting region may be non-convex and even disconnected.
//!
//! This crate provides that machinery:
//!
//! * [`Vec2`] — planar points/vectors in kilometre coordinates,
//! * [`bezier::CubicBezier`] and [`bezier::BezierLoop`] — the curve
//!   representation used to *construct* region boundaries (disks are
//!   four-segment cubic Bézier circles, exactly as in the paper),
//! * [`ring::Ring`] — flattened closed polygons with area / containment /
//!   centroid queries (bounding box and convexity cached at construction),
//! * [`scanline`] — a robust band-sweep boolean-operation engine producing
//!   interior-disjoint trapezoid decompositions, with binary
//!   ([`scanline::boolean_op`]) and n-ary single-sweep
//!   ([`scanline::boolean_op_many`]) entry points,
//! * [`Region`] — the public region type with union / intersection /
//!   difference / dilation / erosion, area, centroid, containment and
//!   sampling,
//! * [`georegion::GeoRegion`] — a [`Region`] anchored to the globe through an
//!   azimuthal-equidistant projection, with geodesic disk and annulus
//!   constructors,
//! * [`montecarlo`] — Monte-Carlo oracles used by the test-suite to validate
//!   the exact geometry.
//!
//! ## Representation notes
//!
//! Boolean operations flatten Bézier boundaries to polylines with a
//! configurable tolerance (default 1 km — far below the tens-of-miles
//! accuracy Octant achieves) and run a scanline decomposition that produces
//! interior-disjoint trapezoids. This keeps every operation robust — there is
//! no intersection-graph traversal to get wrong — while staying faithful to
//! the paper's representation: regions are constructed from Bézier curves,
//! may be non-convex and disconnected, and support cheap boolean algebra.
//!
//! ## Performance machinery
//!
//! The solver-facing hot paths are engineered around nine mechanisms
//! (pinned by `tests/region_algebra.rs` / `tests/region_fastpath_parity.rs`
//! and measured by `octant-bench`'s `region` binary):
//!
//! * **N-ary single sweeps** — [`Region::intersect_many`] /
//!   [`Region::union_many`] merge all operands' per-band interval lists in
//!   one scanline pass instead of re-decomposing an accumulator through
//!   N−1 chained pairwise sweeps.
//! * **Event-queue crossing enumeration** — every sweep needs the y-set of
//!   all pairwise segment crossings. Small operand sets use the forward
//!   rescan over `min_y`-sorted bboxes; at
//!   [`scanline::EVENTQ_MIN_SEGMENTS`] segments and beyond the sweep
//!   switches to a Bentley–Ottmann event queue (one priority queue of
//!   start / end / crossing events, an active set ordered by `(min_x,
//!   rank)` so a starting segment examines only the x-overlapping prefix)
//!   costing O((n+k)·log n) where the rescan degrades to O(n·m) on
//!   y-degenerate sets. Both enumerations visit the identical
//!   properly-crossing pair set with identical argument order, so the
//!   adaptive dispatch is **bit-invisible**; [`scanline::set_crossing_mode`]
//!   forces either mode for parity suites and perf guards, and the
//!   `region.sweep_mode.*` / `region.crossing_scan_ops` telemetry counters
//!   expose the dispatch decisions and the work each mode performed.
//! * **The banded core** — the sweep's native product is a
//!   [`banded::BandedRegion`]: a y-banded interval decomposition that
//!   answers area/bbox/containment without ring construction, participates
//!   in further n-ary combinations as bands
//!   ([`banded::BandedOperand::Banded`]), and converts at the edges —
//!   [`banded::BandedRegion::to_region`] stitches the exact historical
//!   trapezoid rings (bit-identical), and
//!   [`Region::intersect_many_banded`] lets callers gate on area (the
//!   solver's §2.4 size threshold) before paying for any stitching. Inside
//!   the n-ary band loop the active list keeps its `(x, entry-order)`
//!   sorted order **incrementally** across bands (adjacent midlines only
//!   swap segments that actually cross between them, so an adaptive
//!   insertion pass beats a from-scratch per-operand sort), which is
//!   bit-identical because that order is a history-independent total
//!   order.
//! * **Contour extraction** — [`banded::BandedRegion::extract_contours`]
//!   stitches adjacent bands' cells into a few **merged outer contours**
//!   (counter-clockwise outers, clockwise holes; signed areas sum to the
//!   banded area within 1e-9) instead of trapezoid soup, so edge-scaling
//!   consumers — dilation, the service's radius-class dilation cache,
//!   budgeted simplification — touch boundary edges only. Extraction that
//!   cannot stitch cleanly falls back to the trapezoid rings, never to
//!   wrong geometry.
//! * **Parallel per-band merge** — bands are mutually independent, so
//!   large sweeps inside [`scanline::boolean_op_many`] compute contiguous
//!   band chunks on rayon workers and concatenate in order;
//!   output is bit-identical to the sequential sweep for every worker
//!   count, and per-chunk band counts are merged into the calling thread's
//!   [`scanline::stats`] counter on join so perf guards measure true
//!   deltas.
//! * **Bbox pruning** — ring- and region-level bounding boxes are cached at
//!   construction; bbox-disjoint operands skip the sweep entirely (empty
//!   intersection, concatenated union), a convex operand covering the other
//!   operand's box absorbs the operation into a clone, point containment
//!   rejects through the cached boxes before any edge walk, and
//!   intersections restrict the sweep to the operands' common y-window,
//!   dropping segments that cannot affect it (output-identical by
//!   construction).
//! * **Fast dilation** — [`Region::dilate`] dispatches to a disk
//!   specialization (a dilated disk is a disk), a direct convex polygon
//!   offset, or the contour-fed general path: the region's merged contours
//!   are offset (exact convex offsets or per-edge capsules) and merged by
//!   the intersection walk below, falling back to a hierarchical n-ary
//!   sweep when the walk declines. The original Minkowski-by-capsules
//!   construction survives as [`Region::dilate_reference`], the exact
//!   reference the fast paths are validated against.
//! * **Intersection-walking union** — the offset-ring merge inside
//!   dilation computes ring-pair intersection points and walks the
//!   alternating boundary arcs that lie outside every other operand
//!   (hierarchical pairwise folds over clean oriented boundaries), so the
//!   Minkowski union of 100+ mutually-overlapping offset rings never
//!   re-sweeps the whole soup. The walk refuses degenerate configurations
//!   (coincident boundaries, unstitchable chains, out-of-bounds net area)
//!   and falls back to the band sweep — fast geometry or no geometry,
//!   never wrong geometry; `region.walk_unions` / `region.walk_fallbacks`
//!   count the outcomes.
//! * **Vertex budgets** — [`Region::simplify`] /
//!   [`Region::simplify_to_budget`] reclaim the boundary fragmentation
//!   chained operations accumulate at band seams, so representation size
//!   (and with it the cost of the next operation) stays bounded across a
//!   solve.
//!
//! ### Dilation float-stream policy
//!
//! Through PR 7 the default [`Region::dilate`] kept its historical
//! per-ring construction byte-for-byte because the serving goldens pinned
//! its exact float stream. That debt is now retired: the default general
//! path routes through [`Region::dilate_with_contours`] (boundary-only
//! offsets + intersection walk), the goldens were re-captured once against
//! the new stream, and `tests/pipeline_parity.rs` pins the new stream the
//! same way it pinned the old one. [`Region::dilate_reference`] remains
//! the slow exact-construction oracle, and the sampling-equivalence
//! envelope between the two is asserted in
//! `tests/region_fastpath_parity.rs`.
//!
//! ```
//! use octant_region::{Region, Vec2};
//!
//! // Positive information: the target is within 500 km of two landmarks.
//! let a = Region::disk(Vec2::new(0.0, 0.0), 500.0);
//! let b = Region::disk(Vec2::new(600.0, 0.0), 500.0);
//! let lens = a.intersect(&b);
//! assert!(!lens.is_empty());
//! // Negative information: it is farther than 150 km from a third landmark.
//! let hole = Region::disk(Vec2::new(300.0, 0.0), 150.0);
//! let estimate = lens.subtract(&hole);
//! assert!(estimate.area() < lens.area());
//! assert!(!estimate.contains(Vec2::new(300.0, 0.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banded;
pub mod bezier;
mod contour;
pub mod georegion;
pub mod montecarlo;
pub mod region;
pub mod ring;
pub mod scanline;
pub mod vec2;
mod walk;

pub use banded::{BandedOperand, BandedRegion};
pub use georegion::GeoRegion;
pub use region::Region;
pub use ring::Ring;
pub use vec2::Vec2;

/// Default flattening tolerance (kilometres) used when converting Bézier
/// boundaries to polylines for boolean operations.
pub const DEFAULT_FLATTEN_TOLERANCE_KM: f64 = 1.0;

/// Areas (km²) below this threshold are treated as empty; boolean operations
/// drop slivers smaller than this.
pub const AREA_EPSILON_KM2: f64 = 1e-6;
